"""Time-varying network conditions: drift curves, calibration aging, outages.

Every earlier layer of the network subsystem treats the environment as
*frozen*: each link's channel, each node's memory and the device calibration
behind them are fixed for the whole simulation.  A production-scale digital
twin has to answer the SLA question — what fidelity/latency can N users at
rate R expect from topology T, and *where does it break* — which requires
the environment itself to evolve during a run.  This module is that layer:

* :class:`DriftProfile` — a deterministic scalar function of simulated time
  (constant, linear ramp, sinusoid, staircase step, or piecewise-linear
  knots), clipped into physical bounds.  Profiles multiply channel error
  parameters, so ``value(t) == 1.0`` means "exactly today's channel".
* :class:`CalibrationAging` — drift profiles applied to device physics:
  T1/T2 shrink factors and a gate-error growth factor, usable both on link
  channels (:func:`evolve_channel`) and on a
  :class:`~repro.device.calibration.DeviceCalibration` record in place
  (:meth:`CalibrationAging.apply_to` — bumping the calibration's ``version``
  counter so memoised noise models invalidate).
* :class:`OutageWindow` / :class:`OutageSchedule` — link/node failure +
  recovery intervals, normalised so no two windows of the same element
  overlap; the scheduler re-routes around elements that would be inside a
  failure window at any point of a session's reservation.
* :class:`NetworkDynamics` — the bundle the scheduler consumes: per-link
  (or global) drift, optional aging, and the outage schedule, all evaluated
  at each session's *admission* time so the reservation pass stays a pure
  serial function of the seed and the execution pass stays parallelisable.

Determinism contract: every object here is a pure function of its
constructor arguments; seed-derived builders (:meth:`OutageSchedule.random`,
:func:`condition_profile`) consume an explicit seed.  ``to_dict`` /
``from_dict`` round-trip byte-identically (pinned by the Hypothesis suite in
``tests/network/test_dynamics_properties.py``).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.channel.quantum_channel import (
    DepolarizingChannel,
    FiberLossChannel,
    IdentityChainChannel,
    QuantumChannel,
)
from repro.exceptions import NetworkError
from repro.utils.rng import as_rng

__all__ = [
    "DRIFT_KINDS",
    "DriftProfile",
    "CalibrationAging",
    "OutageWindow",
    "OutageSchedule",
    "NetworkDynamics",
    "evolve_channel",
    "link_key",
    "CONDITION_PROFILES",
    "condition_profile",
]

#: Drift-curve shapes understood by :class:`DriftProfile`.
DRIFT_KINDS = ("constant", "linear", "sinusoid", "step", "piecewise")

#: Wildcard key selecting every link in :class:`NetworkDynamics` drift maps.
GLOBAL_KEY = "*"


def link_key(node_a: str, node_b: str) -> str:
    """Canonical string key of an undirected link (sorted endpoints)."""
    first, second = sorted((node_a, node_b))
    return f"{first}|{second}"


@dataclass(frozen=True)
class DriftProfile:
    """A deterministic scalar function of simulated time.

    ``value(t)`` is evaluated from the profile's shape and clipped into
    ``[floor, ceiling]`` — the physical-bounds guarantee the property suite
    pins.  The default profile is the constant ``1.0`` (no drift).

    Shapes
    ------
    ``constant``
        ``base`` everywhere.
    ``linear``
        ``base + rate * t`` (a monotone ramp — aging-style degradation).
    ``sinusoid``
        ``base + amplitude * sin(2π (t + phase) / period)`` (diurnal-style
        oscillation).
    ``step``
        ``base + amplitude * floor(t / period)`` (staircase recalibration
        epochs).
    ``piecewise``
        Linear interpolation through ``points`` (``(time, value)`` knots,
        strictly increasing in time); clamped to the first/last knot value
        outside the knot range.
    """

    kind: str = "constant"
    base: float = 1.0
    amplitude: float = 0.0
    rate: float = 0.0
    period: float = 1.0
    phase: float = 0.0
    points: tuple[tuple[float, float], ...] = ()
    floor: float = 0.0
    ceiling: float | None = None

    def __post_init__(self):
        if self.kind not in DRIFT_KINDS:
            raise NetworkError(
                f"unknown drift kind {self.kind!r}; known: {DRIFT_KINDS}"
            )
        if self.period <= 0:
            raise NetworkError("drift period must be positive")
        if self.ceiling is not None and self.ceiling < self.floor:
            raise NetworkError("drift ceiling must be >= floor")
        if self.kind == "piecewise":
            if len(self.points) < 1:
                raise NetworkError("a piecewise profile needs at least one knot")
            times = [float(time) for time, _ in self.points]
            if any(later <= earlier for earlier, later in zip(times, times[1:])):
                raise NetworkError("piecewise knots must be strictly increasing in time")
            # Canonicalise knots to float pairs so to_dict round-trips exactly.
            object.__setattr__(
                self,
                "points",
                tuple((float(time), float(value)) for time, value in self.points),
            )

    # -- evaluation --------------------------------------------------------------------
    def value(self, time: float) -> float:
        """The profile's value at *time*, clipped into ``[floor, ceiling]``."""
        time = float(time)
        if self.kind == "constant":
            raw = self.base
        elif self.kind == "linear":
            raw = self.base + self.rate * time
        elif self.kind == "sinusoid":
            raw = self.base + self.amplitude * math.sin(
                2.0 * math.pi * (time + self.phase) / self.period
            )
        elif self.kind == "step":
            raw = self.base + self.amplitude * math.floor(time / self.period)
        else:  # piecewise
            raw = self._piecewise_value(time)
        if raw < self.floor:
            return self.floor
        if self.ceiling is not None and raw > self.ceiling:
            return self.ceiling
        return raw

    def _piecewise_value(self, time: float) -> float:
        points = self.points
        if time <= points[0][0]:
            return points[0][1]
        if time >= points[-1][0]:
            return points[-1][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t0 <= time <= t1:
                fraction = (time - t0) / (t1 - t0)
                return v0 + fraction * (v1 - v0)
        raise AssertionError("unreachable: knots cover the interior")  # pragma: no cover

    @property
    def trivial(self) -> bool:
        """True if the profile is identically ``1.0`` (no drift at any time)."""
        if self.kind == "constant":
            raw = self.base
        elif self.kind == "linear":
            return self.base == 1.0 and self.rate == 0.0 and self._clip_is_noop()
        elif self.kind in ("sinusoid", "step"):
            return self.base == 1.0 and self.amplitude == 0.0 and self._clip_is_noop()
        else:  # piecewise
            return all(value == 1.0 for _, value in self.points) and self._clip_is_noop()
        return raw == 1.0 and self._clip_is_noop()

    def _clip_is_noop(self) -> bool:
        return self.floor <= 1.0 and (self.ceiling is None or self.ceiling >= 1.0)

    # -- constructors -----------------------------------------------------------------
    @classmethod
    def constant(cls, value: float = 1.0) -> "DriftProfile":
        return cls(kind="constant", base=value)

    @classmethod
    def linear(
        cls, base: float = 1.0, rate: float = 0.0, ceiling: float | None = None
    ) -> "DriftProfile":
        return cls(kind="linear", base=base, rate=rate, ceiling=ceiling)

    @classmethod
    def sinusoid(
        cls,
        base: float = 1.0,
        amplitude: float = 0.0,
        period: float = 1.0,
        phase: float = 0.0,
    ) -> "DriftProfile":
        return cls(
            kind="sinusoid", base=base, amplitude=amplitude, period=period, phase=phase
        )

    @classmethod
    def piecewise(
        cls, points: Sequence[tuple[float, float]], ceiling: float | None = None
    ) -> "DriftProfile":
        return cls(kind="piecewise", points=tuple(points), ceiling=ceiling)

    # -- serialisation ----------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly canonical form (byte-identical round trip)."""
        return {
            "kind": self.kind,
            "base": self.base,
            "amplitude": self.amplitude,
            "rate": self.rate,
            "period": self.period,
            "phase": self.phase,
            "points": [[time, value] for time, value in self.points],
            "floor": self.floor,
            "ceiling": self.ceiling,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DriftProfile":
        return cls(
            kind=data.get("kind", "constant"),
            base=float(data.get("base", 1.0)),
            amplitude=float(data.get("amplitude", 0.0)),
            rate=float(data.get("rate", 0.0)),
            period=float(data.get("period", 1.0)),
            phase=float(data.get("phase", 0.0)),
            points=tuple((float(t), float(v)) for t, v in data.get("points", ())),
            floor=float(data.get("floor", 0.0)),
            ceiling=None if data.get("ceiling") is None else float(data["ceiling"]),
        )


@dataclass(frozen=True)
class CalibrationAging:
    """Device-physics degradation over time, expressed as drift factors.

    ``t1_scale``/``t2_scale`` multiply relaxation times (values < 1 shrink
    coherence), ``error_scale`` multiplies gate error probabilities.  The
    factors drive two consumers:

    * link channels — :func:`evolve_channel` folds them into the per-hop
      channel a session actually runs over;
    * device records — :meth:`apply_to` rewrites a
      :class:`~repro.device.calibration.DeviceCalibration` in place through
      its mutation API, so its ``version`` counter bumps and every memoised
      noise model derived from it invalidates.
    """

    t1_scale: DriftProfile = field(default_factory=DriftProfile.constant)
    t2_scale: DriftProfile = field(default_factory=DriftProfile.constant)
    error_scale: DriftProfile = field(default_factory=DriftProfile.constant)

    @property
    def trivial(self) -> bool:
        return self.t1_scale.trivial and self.t2_scale.trivial and self.error_scale.trivial

    def factors(self, time: float) -> tuple[float, float, float]:
        """``(t1_scale, t2_scale, error_scale)`` at *time* (scales floored at 0)."""
        return (
            max(0.0, self.t1_scale.value(time)),
            max(0.0, self.t2_scale.value(time)),
            max(0.0, self.error_scale.value(time)),
        )

    def apply_to(self, calibration: Any, time: float) -> Any:
        """Age *calibration* (a :class:`DeviceCalibration`) in place at *time*.

        Gate errors scale by ``error_scale`` (clipped to [0, 1]) through
        ``add_gate`` and qubit records by ``t1_scale``/``t2_scale`` through
        ``set_qubit``/``set_qubit_defaults``, so every mutation bumps the
        calibration's ``version`` counter — the staleness signal memoised
        noise models key on.  T2 is re-clamped to the physical ``2·T1``
        bound after scaling.
        """
        from dataclasses import replace

        t1_scale, t2_scale, error_scale = self.factors(time)

        def aged_qubit(qubit):
            t1 = max(qubit.t1 * t1_scale, 1e-12)
            t2 = max(min(qubit.t2 * t2_scale, 2.0 * t1), 1e-12)
            return replace(qubit, t1=t1, t2=t2)

        for name in sorted(calibration.gates):
            gate = calibration.gates[name]
            calibration.add_gate(
                replace(gate, error=min(1.0, gate.error * error_scale))
            )
        for index in sorted(calibration.qubits):
            calibration.set_qubit(index, aged_qubit(calibration.qubits[index]))
        calibration.set_qubit_defaults(aged_qubit(calibration.qubit_defaults))
        return calibration

    def to_dict(self) -> dict[str, Any]:
        return {
            "t1_scale": self.t1_scale.to_dict(),
            "t2_scale": self.t2_scale.to_dict(),
            "error_scale": self.error_scale.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CalibrationAging":
        return cls(
            t1_scale=DriftProfile.from_dict(data["t1_scale"]),
            t2_scale=DriftProfile.from_dict(data["t2_scale"]),
            error_scale=DriftProfile.from_dict(data["error_scale"]),
        )


@dataclass(frozen=True)
class OutageWindow:
    """One failure + recovery interval of a link or node.

    The element is *down* on the half-open interval ``[start, end)``: it
    fails at ``start`` and is available again exactly at ``end`` (the
    recovery event the scheduler re-tries queued sessions on).
    """

    element: str  # "link" or "node"
    key: str  # node name, or the sorted "a|b" link key
    start: float
    end: float

    def __post_init__(self):
        if self.element not in ("link", "node"):
            raise NetworkError(f"outage element must be 'link' or 'node', got {self.element!r}")
        if not self.key:
            raise NetworkError("outage key must be non-empty")
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise NetworkError("outage window bounds must be finite")
        if self.start < 0:
            raise NetworkError("outage start must be non-negative")
        if self.end <= self.start:
            raise NetworkError("outage end must be strictly after start")

    def covers(self, time: float) -> bool:
        """True while the element is down (``start <= time < end``)."""
        return self.start <= time < self.end

    def overlaps(self, start: float, end: float) -> bool:
        """True if the window intersects the closed interval ``[start, end]``."""
        return self.start <= end and start < self.end

    def to_dict(self) -> dict[str, Any]:
        return {
            "element": self.element,
            "key": self.key,
            "start": self.start,
            "end": self.end,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OutageWindow":
        return cls(
            element=data["element"],
            key=data["key"],
            start=float(data["start"]),
            end=float(data["end"]),
        )


class OutageSchedule:
    """A normalised set of :class:`OutageWindow` entries.

    Normalisation merges overlapping (and exactly adjacent) windows of the
    same element, then sorts by ``(start, element, key, end)`` — so no two
    stored windows of one element ever overlap (the property suite pins
    this for arbitrary generated inputs) and iteration order is canonical.
    """

    def __init__(self, windows: Sequence[OutageWindow] = ()):
        self.windows: tuple[OutageWindow, ...] = self._normalize(windows)
        self._by_element: dict[tuple[str, str], list[OutageWindow]] = {}
        for window in self.windows:
            self._by_element.setdefault((window.element, window.key), []).append(window)

    @staticmethod
    def _normalize(windows: Sequence[OutageWindow]) -> tuple[OutageWindow, ...]:
        grouped: dict[tuple[str, str], list[OutageWindow]] = {}
        for window in windows:
            grouped.setdefault((window.element, window.key), []).append(window)
        merged: list[OutageWindow] = []
        for (element, key), group in grouped.items():
            group = sorted(group, key=lambda w: (w.start, w.end))
            current_start, current_end = group[0].start, group[0].end
            for window in group[1:]:
                if window.start <= current_end:  # overlap or adjacency: merge
                    current_end = max(current_end, window.end)
                else:
                    merged.append(OutageWindow(element, key, current_start, current_end))
                    current_start, current_end = window.start, window.end
            merged.append(OutageWindow(element, key, current_start, current_end))
        return tuple(
            sorted(merged, key=lambda w: (w.start, w.element, w.key, w.end))
        )

    def __len__(self) -> int:
        return len(self.windows)

    def __bool__(self) -> bool:
        return bool(self.windows)

    # -- queries -----------------------------------------------------------------------
    def _windows_for(self, element: str, key: str) -> list[OutageWindow]:
        return self._by_element.get((element, key), [])

    def link_down(self, node_a: str, node_b: str, time: float) -> bool:
        """True if the link is inside a failure window at *time*."""
        return any(w.covers(time) for w in self._windows_for("link", link_key(node_a, node_b)))

    def node_down(self, name: str, time: float) -> bool:
        """True if the node is inside a failure window at *time*."""
        return any(w.covers(time) for w in self._windows_for("node", name))

    def link_blocked(self, node_a: str, node_b: str, start: float, end: float) -> bool:
        """True if any failure window of the link intersects ``[start, end]``."""
        return any(
            w.overlaps(start, end) for w in self._windows_for("link", link_key(node_a, node_b))
        )

    def node_blocked(self, name: str, start: float, end: float) -> bool:
        """True if any failure window of the node intersects ``[start, end]``."""
        return any(w.overlaps(start, end) for w in self._windows_for("node", name))

    def recovery_times(self) -> list[float]:
        """Sorted distinct window-end times (the scheduler's retry events)."""
        return sorted({window.end for window in self.windows})

    # -- construction ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        topology: Any,
        *,
        seed: int,
        horizon: float,
        link_failure_rate: float = 0.0,
        node_failure_rate: float = 0.0,
        mean_downtime: float = 0.1,
    ) -> "OutageSchedule":
        """Seed-derived failure/recovery schedule over ``[0, horizon]``.

        Failures arrive per element as a Poisson process with the given
        rate (failures per unit time); each lasts an exponential downtime
        with the given mean, truncated at the horizon.  Deterministic for a
        given ``(topology, seed, horizon, rates)`` tuple: elements are
        visited in canonical sorted order with one derived stream each.
        """
        if horizon <= 0:
            raise NetworkError("outage horizon must be positive")
        if link_failure_rate < 0 or node_failure_rate < 0:
            raise NetworkError("failure rates must be non-negative")
        if mean_downtime <= 0:
            raise NetworkError("mean_downtime must be positive")
        windows: list[OutageWindow] = []
        elements: list[tuple[str, str, float]] = []
        if link_failure_rate > 0:
            elements.extend(
                ("link", link_key(link.node_a, link.node_b), link_failure_rate)
                for link in topology.links
            )
        if node_failure_rate > 0:
            elements.extend(
                ("node", name, node_failure_rate) for name in topology.node_names
            )
        for ordinal, (element, key, rate) in enumerate(
            sorted(elements, key=lambda item: (item[0], item[1]))
        ):
            generator = as_rng(int(seed) + 7919 * (ordinal + 1))
            clock = float(generator.exponential(1.0 / rate))
            while clock < horizon:
                downtime = float(generator.exponential(mean_downtime))
                end = min(clock + max(downtime, 1e-9), horizon)
                if end > clock:
                    windows.append(OutageWindow(element, key, clock, end))
                clock = end + float(generator.exponential(1.0 / rate))
        return cls(windows)

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"windows": [window.to_dict() for window in self.windows]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OutageSchedule":
        return cls([OutageWindow.from_dict(entry) for entry in data.get("windows", ())])

    def __repr__(self) -> str:
        return f"OutageSchedule(windows={len(self.windows)})"


def evolve_channel(
    channel: QuantumChannel,
    error_scale: float = 1.0,
    t1_scale: float = 1.0,
    t2_scale: float = 1.0,
) -> QuantumChannel:
    """The time-evolved copy of *channel* under the given degradation factors.

    Error probabilities multiply by ``error_scale`` (clipped into [0, 1]);
    relaxation times multiply by ``t1_scale``/``t2_scale`` with T2 re-clamped
    to the physical ``2·T1`` bound.  When every factor is exactly 1.0 the
    *original object* is returned — the identity the metamorphic tests rely
    on for bit-identical zero-drift runs.  Channel types without a drifting
    parameter (e.g. :class:`NoiselessChannel`) are returned unchanged.
    """
    if error_scale == 1.0 and t1_scale == 1.0 and t2_scale == 1.0:
        return channel
    if error_scale < 0 or t1_scale < 0 or t2_scale < 0:
        raise NetworkError("drift factors must be non-negative")

    def clip01(value: float) -> float:
        return min(1.0, max(0.0, value))

    if isinstance(channel, IdentityChainChannel):
        t1 = max(channel.t1 * t1_scale, 1e-12)
        t2 = max(min(channel.t2 * t2_scale, 2.0 * t1), 1e-12)
        return IdentityChainChannel(
            eta=channel.eta,
            gate_error=clip01(channel.gate_error * error_scale),
            gate_duration=channel.gate_duration,
            t1=t1,
            t2=t2,
            include_thermal_relaxation=channel.include_thermal_relaxation,
        )
    if isinstance(channel, DepolarizingChannel):
        return DepolarizingChannel(probability=clip01(channel.probability * error_scale))
    if isinstance(channel, FiberLossChannel):
        return FiberLossChannel(
            length_km=channel.length_km,
            attenuation_db_per_km=max(0.0, channel.attenuation_db_per_km * error_scale),
            dephasing_per_km=clip01(channel.dephasing_per_km * error_scale),
            speed_km_per_s=channel.speed_km_per_s,
        )
    return channel


class NetworkDynamics:
    """The scheduler-facing bundle of time-varying conditions.

    Parameters
    ----------
    channel_drift:
        Map from link key (``"a|b"`` sorted form, or the :data:`GLOBAL_KEY`
        wildcard ``"*"``) to the :class:`DriftProfile` multiplying that
        link's channel error over time.  A specific link key overrides the
        wildcard.
    aging:
        Optional :class:`CalibrationAging` applied on top of drift: its
        ``error_scale`` multiplies into the drift factor and its T1/T2
        scales degrade relaxation-based channels.
    outages:
        The :class:`OutageSchedule` of link/node failure windows.

    The scheduler evaluates everything at each session's admission time:
    :meth:`channel_at` snapshots the per-hop channels, and the
    availability/blocking queries steer admission-time re-routing.
    """

    def __init__(
        self,
        channel_drift: Mapping[str, DriftProfile] | None = None,
        aging: CalibrationAging | None = None,
        outages: OutageSchedule | None = None,
    ):
        self.channel_drift = dict(channel_drift or {})
        for key, profile in self.channel_drift.items():
            if not isinstance(profile, DriftProfile):
                raise NetworkError(
                    f"channel_drift[{key!r}] must be a DriftProfile, "
                    f"got {type(profile).__name__}"
                )
        self.aging = aging
        self.outages = outages if outages is not None else OutageSchedule()

    @classmethod
    def static(cls) -> "NetworkDynamics":
        """The trivial dynamics: no drift, no aging, no outages."""
        return cls()

    def is_static(self) -> bool:
        """True if every condition is time-invariant (bit-identical to no dynamics)."""
        return (
            all(profile.trivial for profile in self.channel_drift.values())
            and (self.aging is None or self.aging.trivial)
            and not self.outages
        )

    # -- channel evolution -------------------------------------------------------------
    def _drift_for(self, key: str) -> DriftProfile | None:
        return self.channel_drift.get(key) or self.channel_drift.get(GLOBAL_KEY)

    def factors_at(self, node_a: str, node_b: str, time: float) -> tuple[float, float, float]:
        """``(error_scale, t1_scale, t2_scale)`` for a link at *time*."""
        profile = self._drift_for(link_key(node_a, node_b))
        error_scale = 1.0 if profile is None else max(0.0, profile.value(time))
        t1_scale = t2_scale = 1.0
        if self.aging is not None:
            aged_t1, aged_t2, aged_error = self.aging.factors(time)
            error_scale *= aged_error
            t1_scale *= aged_t1
            t2_scale *= aged_t2
        return error_scale, t1_scale, t2_scale

    def channel_at(self, link: Any, time: float) -> QuantumChannel:
        """The link's channel as conditions stand at *time*.

        Returns the link's own channel object when every factor is 1.0, so
        zero-amplitude dynamics keep sessions byte-identical to static runs.
        """
        error_scale, t1_scale, t2_scale = self.factors_at(link.node_a, link.node_b, time)
        return evolve_channel(
            link.quantum_channel,
            error_scale=error_scale,
            t1_scale=t1_scale,
            t2_scale=t2_scale,
        )

    # -- availability ------------------------------------------------------------------
    def link_available(self, node_a: str, node_b: str, time: float) -> bool:
        return not self.outages.link_down(node_a, node_b, time)

    def node_available(self, name: str, time: float) -> bool:
        return not self.outages.node_down(name, time)

    def route_blocked(self, route: Any, start: float, end: float) -> list[tuple[str, str]]:
        """Blocking elements of *route* over ``[start, end]``.

        Returns ``("node", name)`` / ``("link", key)`` pairs for every route
        element with a failure window intersecting the interval — empty
        means the route is safe for the whole reservation (the scheduler
        invariant: no session is ever routed over a link inside its failure
        window).
        """
        blocked: list[tuple[str, str]] = []
        for name in route.nodes:
            if self.outages.node_blocked(name, start, end):
                blocked.append(("node", name))
        for sender, receiver in route.hops():
            if self.outages.link_blocked(sender, receiver, start, end):
                blocked.append(("link", link_key(sender, receiver)))
        return blocked

    def recovery_times(self) -> list[float]:
        return self.outages.recovery_times()

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "channel_drift": {
                key: self.channel_drift[key].to_dict()
                for key in sorted(self.channel_drift)
            },
            "aging": None if self.aging is None else self.aging.to_dict(),
            "outages": self.outages.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkDynamics":
        return cls(
            channel_drift={
                key: DriftProfile.from_dict(profile)
                for key, profile in data.get("channel_drift", {}).items()
            },
            aging=(
                None
                if data.get("aging") is None
                else CalibrationAging.from_dict(data["aging"])
            ),
            outages=OutageSchedule.from_dict(data.get("outages", {})),
        )

    def __repr__(self) -> str:
        return (
            f"NetworkDynamics(drift={len(self.channel_drift)}, "
            f"aging={self.aging is not None}, outages={len(self.outages)})"
        )


# -- named condition profiles ------------------------------------------------------------
def _profile_static(topology: Any, seed: int, horizon: float) -> NetworkDynamics:
    return NetworkDynamics.static()


def _profile_drift(topology: Any, seed: int, horizon: float) -> NetworkDynamics:
    # Diurnal-style oscillation around nominal plus a slow degradation ramp:
    # error rates swing ±60 % over the horizon and end ~50 % above nominal.
    return NetworkDynamics(
        channel_drift={
            GLOBAL_KEY: DriftProfile(
                kind="sinusoid",
                base=1.0,
                amplitude=0.6,
                period=max(horizon / 2.0, 1e-9),
                floor=0.0,
            )
        },
        aging=CalibrationAging(
            error_scale=DriftProfile.linear(base=1.0, rate=0.5 / max(horizon, 1e-9)),
            t1_scale=DriftProfile.linear(base=1.0, rate=-0.25 / max(horizon, 1e-9)),
            t2_scale=DriftProfile.linear(base=1.0, rate=-0.25 / max(horizon, 1e-9)),
        ),
    )


def _profile_outage(topology: Any, seed: int, horizon: float) -> NetworkDynamics:
    return NetworkDynamics(
        outages=OutageSchedule.random(
            topology,
            seed=seed,
            horizon=horizon,
            link_failure_rate=2.0 / max(horizon, 1e-9),
            node_failure_rate=0.5 / max(horizon, 1e-9),
            mean_downtime=horizon / 8.0,
        )
    )


def _profile_drift_outage(topology: Any, seed: int, horizon: float) -> NetworkDynamics:
    drift = _profile_drift(topology, seed, horizon)
    outage = _profile_outage(topology, seed, horizon)
    return NetworkDynamics(
        channel_drift=drift.channel_drift,
        aging=drift.aging,
        outages=outage.outages,
    )


#: Named condition-profile builders: ``name -> builder(topology, seed, horizon)``.
CONDITION_PROFILES = {
    "static": _profile_static,
    "drift": _profile_drift,
    "outage": _profile_outage,
    "drift_outage": _profile_drift_outage,
}


def condition_profile(name: str, topology: Any, seed: int, horizon: float) -> NetworkDynamics:
    """Build a named, seed-derived :class:`NetworkDynamics` (see :data:`CONDITION_PROFILES`)."""
    if name not in CONDITION_PROFILES:
        raise NetworkError(
            f"unknown condition profile {name!r}; known: {sorted(CONDITION_PROFILES)}"
        )
    return CONDITION_PROFILES[name](topology, int(seed), float(horizon))
