"""Deterministic discrete-event scheduling of network traffic.

The simulator runs in **two phases**, which is what makes large simulations
both reproducible and parallel:

1. **Reservation pass (serial, discrete-event).**  Traffic requests arrive
   from a generator (Poisson or trace-driven), each is routed, and admission
   control reserves EPR-pair capacity in every route node's
   :class:`~repro.channel.memory.QuantumMemory` (endpoints hold one qubit
   per pair, relays hold two — one per adjacent hop).  Sessions that do not
   fit wait in a FIFO queue and are retried whenever capacity frees; a
   session still queued after ``max_wait`` is rejected.  Admitted sessions
   occupy their reservation for a duration derived from route length, pair
   budget and per-link channel delay.  The event queue is a heap ordered by
   ``(time, kind, sequence)``, so the pass is fully deterministic.

2. **Execution pass (parallel).**  Every admitted session becomes one point
   of a :func:`repro.experiments.sweep.run_sweep` grid with a
   :func:`~repro.experiments.sweep.point_seed`-derived seed, and the
   hop-by-hop protocol runs (:func:`repro.network.sessions.run_session`)
   fan out across the worker pool.  Because each session's randomness
   derives only from its own seed, serial and threaded execution produce
   identical :class:`~repro.network.metrics.NetworkResult` objects — the
   subsystem's headline guarantee.

The reservation pass deliberately books resources for the session's *full*
scheduled duration whether or not a hop later aborts (circuit-switched
reservation, as in trusted-relay QKD networks), which keeps scheduling
independent of quantum outcomes — the property that allows phase 2 to run in
parallel at all.  Queueing delay is fed back into the quantum layer as
memory hold time on the session's first hop, so congestion physically
degrades stored qubits when node memories are non-ideal.

**Time-varying conditions and QoS.**  When the scheduler is given a
:class:`~repro.network.dynamics.NetworkDynamics` (drift curves, calibration
aging, failure/recovery windows) or a :class:`QoSPolicy` (weighted-fair
priority classes), the reservation pass switches to a superset discrete-event
loop that additionally (a) evaluates channel conditions at each session's
*admission* time and snapshots the drifted per-hop channels for the execution
pass, (b) re-routes sessions around elements whose failure windows intersect
the reservation interval (growing an exclusion set to a fixed point), and
(c) services the waiting queue by per-class virtual time instead of FIFO.
The static path is kept verbatim and is taken whenever neither feature is
configured, so existing simulations are bit-identical run to run; a dynamics
object whose conditions are all trivial reproduces the static schedule
exactly through the dynamic loop (the metamorphic tests pin this).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import NetworkError
from repro.network.dynamics import NetworkDynamics
from repro.network.metrics import NetworkResult, SessionRecord
from repro.network.routing import ROUTING_POLICIES, Route, RoutingTable
from repro.network.sessions import (
    SessionOutcome,
    SessionParameters,
    SessionRequest,
    run_session,
)
from repro.network.topology import NetworkTopology
from repro.runtime.admission import NodeCapacityLedger, WeightedFairSelector
from repro.telemetry import runtime as telemetry
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

_log = get_logger("network.scheduler")

__all__ = [
    "DEFAULT_QOS_WEIGHTS",
    "PoissonTraffic",
    "TraceTraffic",
    "QoSPolicy",
    "NetworkScheduler",
    "simulate_network",
]

#: Executors the scheduler accepts.  ``"process"`` is excluded: the session
#: worker closes over the live topology (channels, attack factories), which
#: is not generally picklable — and threads already parallelise the NumPy
#:-heavy protocol sessions well.
SCHEDULER_EXECUTORS = ("serial", "thread")

#: Default weighted-fair weights of the conventional priority classes.
DEFAULT_QOS_WEIGHTS = {"control": 4.0, "interactive": 2.0, "bulk": 1.0}

# Event-kind priorities at equal timestamps: completions free capacity before
# timeouts give up on queued sessions, and both precede new arrivals.
_COMPLETION, _TIMEOUT, _ARRIVAL = 0, 1, 2

# Dynamic-pass event kinds.  Recovery (an outage window ending) slots between
# completions and timeouts: freed elements are visible before any co-timed
# patience expiry.  Static runs have no recovery events, so the relative
# order completion < timeout < arrival — the one the static pass uses — is
# preserved, which the bit-identity contract relies on.
_DYN_COMPLETION, _DYN_RECOVERY, _DYN_TIMEOUT, _DYN_ARRIVAL = 0, 1, 2, 3


class PoissonTraffic:
    """Memoryless traffic: exponential inter-arrivals, uniform random pairs.

    Parameters
    ----------
    num_sessions:
        Total number of requests to generate.
    rate:
        Mean arrivals per unit time (λ of the Poisson process).
    message_length:
        Secret bits per session.
    priority_mix:
        Optional ``{class: weight}`` distribution of QoS classes over
        sessions (weights need not sum to 1).  ``None`` — the default, and
        the historical RNG stream — tags every request ``"bulk"`` without
        consuming generator state, so existing seeded traffic is unchanged.
    """

    def __init__(
        self,
        num_sessions: int,
        rate: float = 100.0,
        message_length: int = 8,
        priority_mix: Mapping[str, float] | None = None,
    ):
        if num_sessions < 1:
            raise NetworkError("num_sessions must be positive")
        if rate <= 0:
            raise NetworkError("rate must be positive")
        if message_length < 1:
            raise NetworkError("message_length must be positive")
        if priority_mix is not None:
            if not priority_mix:
                raise NetworkError("priority_mix must name at least one class")
            if any(weight <= 0 for weight in priority_mix.values()):
                raise NetworkError("priority_mix weights must be positive")
        self.num_sessions = num_sessions
        self.rate = rate
        self.message_length = message_length
        self.priority_mix = None if priority_mix is None else dict(priority_mix)

    def generate(self, topology: NetworkTopology, rng: Any = None) -> list[SessionRequest]:
        """Draw the request list (deterministic for a given generator state)."""
        generator = as_rng(rng)
        names = topology.node_names
        if len(names) < 2:
            raise NetworkError("traffic needs at least two nodes")
        classes: list[str] = []
        probabilities: list[float] = []
        if self.priority_mix is not None:
            classes = sorted(self.priority_mix)
            total = sum(self.priority_mix.values())
            probabilities = [self.priority_mix[name] / total for name in classes]
        requests = []
        clock = 0.0
        for session_id in range(self.num_sessions):
            clock += float(generator.exponential(1.0 / self.rate))
            source, target = (
                names[int(index)]
                for index in generator.choice(len(names), size=2, replace=False)
            )
            priority = "bulk"
            if classes:
                priority = classes[int(generator.choice(len(classes), p=probabilities))]
            requests.append(
                SessionRequest(
                    session_id=session_id,
                    source=source,
                    target=target,
                    message_length=self.message_length,
                    arrival_time=clock,
                    priority=priority,
                )
            )
        return requests


class TraceTraffic:
    """Trace-driven traffic: explicit ``(time, source, target, length)`` entries.

    Entries may carry a fifth element, the QoS class (default ``"bulk"``).
    Traces are normalised at construction: every entry becomes a canonical
    ``(time, source, target, length, priority)`` tuple and the list is
    sorted by the *full* tuple, not just the timestamp.  Sorting by time
    alone left session-id assignment (and therefore every derived session
    seed) sensitive to the input order of entries sharing a timestamp —
    two permutations of the same trace could simulate different networks.
    """

    def __init__(self, entries: Sequence[Sequence[Any]]):
        if not entries:
            raise NetworkError("a trace needs at least one entry")
        normalized: list[tuple[float, str, str, int, str]] = []
        for entry in entries:
            entry = tuple(entry)
            if len(entry) == 4:
                time, source, target, length = entry
                priority = "bulk"
            elif len(entry) == 5:
                time, source, target, length, priority = entry
            else:
                raise NetworkError(
                    "trace entries are (time, source, target, length[, priority]) "
                    f"tuples, got {entry!r}"
                )
            normalized.append(
                (float(time), str(source), str(target), int(length), str(priority))
            )
        self.entries = sorted(normalized)

    def generate(self, topology: NetworkTopology, rng: Any = None) -> list[SessionRequest]:
        """Materialise the trace (validates node names; ignores *rng*)."""
        requests = []
        for session_id, (time, source, target, message_length, priority) in enumerate(
            self.entries
        ):
            topology.node(source)
            topology.node(target)
            requests.append(
                SessionRequest(
                    session_id=session_id,
                    source=source,
                    target=target,
                    message_length=message_length,
                    arrival_time=time,
                    priority=priority,
                )
            )
        return requests


@dataclass(frozen=True)
class QoSPolicy:
    """Weighted-fair service of priority classes in the reservation pass.

    ``weights`` maps class names to positive service weights; classes absent
    from the map get weight 1.0.  The scheduler serves the waiting queue by
    per-class *virtual time* (work served divided by weight, implemented by
    :class:`~repro.runtime.admission.WeightedFairSelector`), so under
    saturation each backlogged class receives capacity proportional to its
    weight — and uniformly scaling every weight leaves the admission order
    unchanged (the metamorphic tests pin this).
    """

    weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_QOS_WEIGHTS)
    )

    def __post_init__(self):
        weights = dict(self.weights)
        if not weights:
            raise NetworkError("a QoS policy needs at least one class weight")
        for name, weight in weights.items():
            if not name:
                raise NetworkError("QoS class names must be non-empty")
            if not weight > 0:
                raise NetworkError(f"QoS weight for {name!r} must be positive")
        object.__setattr__(self, "weights", weights)

    def weight(self, priority: str) -> float:
        return self.weights.get(priority, 1.0)

    def selector(self) -> WeightedFairSelector:
        """A fresh virtual-time selector for one reservation pass."""
        return WeightedFairSelector(self.weights)

    def to_dict(self) -> dict[str, Any]:
        return {"weights": {name: self.weights[name] for name in sorted(self.weights)}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QoSPolicy":
        return cls(weights={k: float(v) for k, v in data.get("weights", {}).items()})


@dataclass
class _Pending:
    """Scheduling state of one request during the reservation pass.

    The dynamic pass additionally tracks admission-time channel snapshots
    (``channels`` — the drifted per-hop channels the execution pass runs
    over), whether the session left its originally prepared route
    (``rerouted``), and whether its latest failed admission attempt was
    blocked by an outage rather than capacity (``outage_blocked`` — which
    turns a patience expiry into an ``outage_timeout`` rejection).
    """

    request: SessionRequest
    record: SessionRecord
    route: Route | None
    qubits_needed: dict[str, int]
    duration: float
    admitted: bool = False
    resolved: bool = False
    channels: tuple[Any, ...] | None = None
    rerouted: bool = False
    outage_blocked: bool = False


class NetworkScheduler:
    """Admission control + discrete-event timing + parallel session execution.

    Parameters
    ----------
    topology:
        The network to simulate (treated as read-only during execution).
    routing_policy:
        ``"hops"`` or ``"loss"`` (see :mod:`repro.network.routing`).
    session_params:
        Fleet-wide protocol parameters (defaults:
        :class:`~repro.network.sessions.SessionParameters`).
    hop_overhead:
        Classical coordination time added per hop (seconds); dominates hop
        duration since per-pair channel delays are microseconds.
    hold_time_unit:
        Seconds of queueing delay per quantum-memory time unit — the
        conversion between scheduler waiting time and storage-decoherence
        applications on the first hop.
    max_wait:
        Patience window: a session still queued this long after arrival is
        rejected (``None`` = wait indefinitely).
    seed:
        Master seed; traffic and every per-session seed derive from it.
    executor:
        ``"serial"`` or ``"thread"`` — both produce identical results.
    max_workers:
        Worker-pool size for the ``"thread"`` executor.
    dynamics:
        Optional :class:`~repro.network.dynamics.NetworkDynamics` — drift,
        aging and outage conditions evaluated at each session's admission
        time.  ``None`` (default) keeps the environment frozen and takes
        the original reservation pass verbatim.
    qos:
        Optional :class:`QoSPolicy` — weighted-fair service of priority
        classes in the waiting queue.  ``None`` (default) serves FIFO.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        *,
        routing_policy: str = "hops",
        session_params: SessionParameters | None = None,
        hop_overhead: float = 1e-3,
        hold_time_unit: float = 1e-3,
        max_wait: float | None = None,
        seed: int = 0,
        executor: str = "serial",
        max_workers: int | None = None,
        dynamics: NetworkDynamics | None = None,
        qos: QoSPolicy | None = None,
    ):
        if routing_policy not in ROUTING_POLICIES:
            raise NetworkError(
                f"unknown routing policy {routing_policy!r}; known: {ROUTING_POLICIES}"
            )
        if executor not in SCHEDULER_EXECUTORS:
            raise NetworkError(
                f"unknown executor {executor!r}; the scheduler supports "
                f"{SCHEDULER_EXECUTORS} (session workers close over the live "
                "topology and cannot be pickled for process pools)"
            )
        if hop_overhead < 0:
            raise NetworkError("hop_overhead must be non-negative")
        if hold_time_unit <= 0:
            raise NetworkError("hold_time_unit must be positive")
        if max_wait is not None and max_wait < 0:
            raise NetworkError("max_wait must be non-negative or None")
        if dynamics is not None and not isinstance(dynamics, NetworkDynamics):
            raise NetworkError(
                f"dynamics must be a NetworkDynamics, got {type(dynamics).__name__}"
            )
        if qos is not None and not isinstance(qos, QoSPolicy):
            raise NetworkError(f"qos must be a QoSPolicy, got {type(qos).__name__}")
        self.topology = topology
        self.routing = RoutingTable(topology, policy=routing_policy)
        self.session_params = session_params or SessionParameters()
        self.hop_overhead = hop_overhead
        self.hold_time_unit = hold_time_unit
        self.max_wait = max_wait
        self.seed = int(seed)
        self.executor = executor
        self.max_workers = max_workers
        self.dynamics = dynamics
        self.qos = qos

    # -- public API --------------------------------------------------------------------
    def run(self, traffic: Any) -> NetworkResult:
        """Simulate the given traffic and return the aggregated result."""
        # Imported here (not at module level): the experiments package pulls
        # in the network-scale experiment, which imports this module — a
        # top-level import of the sweep substrate would close that cycle.
        from repro.experiments.sweep import point_seed

        traffic_rng = as_rng(point_seed(self.seed, {"stream": "traffic"}))
        with telemetry.span(
            "network.simulate",
            "network",
            {"topology": self.topology.name, "executor": self.executor},
        ):
            requests = traffic.generate(self.topology, traffic_rng)
            requests = sorted(requests, key=lambda r: (r.arrival_time, r.session_id))
            pendings = [self._prepare(request) for request in requests]
            with telemetry.span("network.reservation", "network"):
                # The original pass is kept verbatim for the frozen
                # configuration (bit-identical to every earlier release);
                # any dynamics/QoS — even trivial ones — take the superset
                # loop, which the metamorphic tests hold to the same output.
                if self.dynamics is None and self.qos is None:
                    sim_time = self._reservation_pass(pendings)
                else:
                    sim_time = self._dynamic_reservation_pass(pendings)
            with telemetry.span(
                "network.execution",
                "network",
                {"admitted": sum(1 for p in pendings if p.admitted)},
            ):
                self._execution_pass(pendings)
        return NetworkResult(
            topology_name=self.topology.name,
            num_nodes=self.topology.num_nodes,
            num_links=self.topology.num_links,
            routing_policy=self.routing.policy,
            sim_time=sim_time,
            records=[pending.record for pending in pendings],
        )

    # -- phase 1: reservation ------------------------------------------------------------
    def _route_needs(self, route: Route, message_length: int) -> tuple[dict[str, int], float]:
        """Capacity map and reservation duration of one route."""
        pairs = self.session_params.pairs_per_hop(message_length)
        qubits_needed: dict[str, int] = {}
        for sender, receiver in route.hops():
            qubits_needed[sender] = qubits_needed.get(sender, 0) + pairs
            qubits_needed[receiver] = qubits_needed.get(receiver, 0) + pairs
        duration = sum(
            pairs * self.topology.link(sender, receiver).quantum_channel.duration()
            + self.hop_overhead
            for sender, receiver in route.hops()
        )
        return qubits_needed, duration

    def _prepare(self, request: SessionRequest) -> _Pending:
        """Route one request and precompute its capacity and duration needs."""
        record = SessionRecord(
            session_id=request.session_id,
            source=request.source,
            target=request.target,
            message_length=request.message_length,
            arrival_time=request.arrival_time,
            priority=request.priority,
        )
        try:
            route = self.routing.route(request.source, request.target)
        except NetworkError:
            record.abort_reason = "no_route"
            telemetry.counter_inc("scheduler.rejections", reason="no_route")
            _log.debug(
                "session %d rejected: no route %s -> %s",
                request.session_id,
                request.source,
                request.target,
            )
            return _Pending(request, record, None, {}, 0.0)
        record.route_nodes = route.nodes

        qubits_needed, duration = self._route_needs(route, request.message_length)
        return _Pending(request, record, route, qubits_needed, duration)

    def _reservation_pass(self, pendings: list[_Pending]) -> float:
        """Discrete-event admission/timing; fills scheduling fields of records.

        Capacity accounting lives in
        :class:`~repro.runtime.admission.NodeCapacityLedger` — the same
        ledger the delivery runtime uses — so both layers share one
        definition of "this node can hold the session's pairs".
        """
        ledger = NodeCapacityLedger(self.topology)
        events: list[tuple[float, int, int, _Pending]] = []
        sequence = 0

        def push(time: float, kind: int, pending: _Pending) -> None:
            nonlocal sequence
            heapq.heappush(events, (time, kind, sequence, pending))
            sequence += 1

        for pending in pendings:
            if pending.route is None:
                pending.resolved = True  # rejected outright: no route
                continue
            push(pending.request.arrival_time, _ARRIVAL, pending)
            if self.max_wait is not None:
                push(pending.request.arrival_time + self.max_wait, _TIMEOUT, pending)

        queue: list[_Pending] = []
        sim_time = max((p.request.arrival_time for p in pendings), default=0.0)

        def admit(pending: _Pending, now: float) -> None:
            record = pending.record
            session_id = pending.request.session_id
            telemetry.counter_inc("scheduler.admitted")
            telemetry.counter_inc(
                "scheduler.qubits_reserved", sum(pending.qubits_needed.values())
            )
            _log.debug(
                "session %d admitted at t=%g (queued %g, %d qubits)",
                session_id,
                now,
                now - pending.request.arrival_time,
                sum(pending.qubits_needed.values()),
            )
            ledger.reserve(session_id, pending.qubits_needed)
            record.start_time = now
            record.finish_time = now + pending.duration
            record.hold_time = (now - pending.request.arrival_time) / self.hold_time_unit
            pending.admitted = True
            pending.resolved = True
            for sender, receiver in pending.route.hops():
                self.topology.link(sender, receiver).classical_channel.broadcast(
                    "scheduler",
                    "route_reserved",
                    {"session": session_id, "start": now, "finish": record.finish_time},
                )
            push(record.finish_time, _COMPLETION, pending)

        while events:
            now, kind, _, pending = heapq.heappop(events)
            if kind == _TIMEOUT and pending.resolved:
                # Stale timeout of an already-scheduled session: must not
                # advance sim_time, or every run with max_wait set would have
                # its horizon padded to last_arrival + max_wait and all
                # throughput figures silently deflated.
                continue
            sim_time = max(sim_time, now)
            if kind == _ARRIVAL:
                if not ledger.viable(pending.qubits_needed):
                    pending.resolved = True
                    pending.record.abort_reason = "insufficient_capacity"
                    telemetry.counter_inc(
                        "scheduler.rejections", reason="insufficient_capacity"
                    )
                    _log.debug(
                        "session %d rejected: needs more qubits than any node has",
                        pending.request.session_id,
                    )
                elif ledger.fits(pending.qubits_needed):
                    admit(pending, now)
                else:
                    queue.append(pending)
                    telemetry.observe("scheduler.queue_depth", len(queue))
            elif kind == _COMPLETION:
                session_id = pending.request.session_id
                ledger.release(session_id, pending.qubits_needed)
                for sender, receiver in pending.route.hops():
                    self.topology.link(sender, receiver).classical_channel.broadcast(
                        "scheduler", "route_released", {"session": session_id}
                    )
                still_waiting = []
                for waiting in queue:
                    if not waiting.resolved and ledger.fits(waiting.qubits_needed):
                        admit(waiting, now)
                    elif not waiting.resolved:
                        still_waiting.append(waiting)
                queue = still_waiting
            elif kind == _TIMEOUT:
                pending.resolved = True
                pending.record.abort_reason = "capacity_timeout"
                telemetry.counter_inc(
                    "scheduler.rejections", reason="capacity_timeout"
                )
                _log.debug(
                    "session %d rejected: queued past max_wait=%g",
                    pending.request.session_id,
                    self.max_wait,
                )
                queue = [waiting for waiting in queue if waiting is not pending]

        # With max_wait=None a queued session is always admitted eventually
        # (reservations drain, and unviable requests were rejected on
        # arrival); this is a defensive sweep, not an expected path.
        for pending in queue:
            if not pending.resolved:
                pending.resolved = True
                pending.record.abort_reason = "capacity_timeout"
        return sim_time

    def _dynamic_reservation_pass(self, pendings: list[_Pending]) -> float:
        """Reservation under time-varying conditions and/or priority QoS.

        A superset of :meth:`_reservation_pass` — same heap discipline, same
        ledger, same admission bookkeeping — plus three condition-aware
        behaviours, each evaluated at the session's admission time ``now``
        so the pass stays a pure serial function of the seed:

        * **re-routing**: a session whose route has a failure window
          intersecting ``[now, now + duration]`` is re-routed around the
          blocked elements, growing an exclusion set to a fixed point
          (exclusions only grow, so the loop terminates); if no feasible
          route remains the session waits for a recovery event;
        * **channel snapshots**: the drifted per-hop channels at ``now``
          are captured on the pending (``NetworkDynamics.channel_at``
          returns the link's own object when every factor is 1.0, keeping
          trivial dynamics bit-identical) and handed to the execution pass;
        * **weighted-fair service**: with a :class:`QoSPolicy`, the waiting
          queue is served by per-class virtual time instead of FIFO; every
          admission charges its capacity footprint to its class.

        Invariant (pinned by the scheduler test battery): no admitted
        session's route crosses a link or node inside a failure window at
        any point of its reservation interval.
        """
        dynamics = self.dynamics if self.dynamics is not None else NetworkDynamics.static()
        selector = None if self.qos is None else self.qos.selector()
        ledger = NodeCapacityLedger(self.topology)
        events: list[tuple[float, int, int, _Pending | None]] = []
        sequence = 0

        def push(time: float, kind: int, pending: "_Pending | None") -> None:
            nonlocal sequence
            heapq.heappush(events, (time, kind, sequence, pending))
            sequence += 1

        for pending in pendings:
            if pending.route is None:
                pending.resolved = True  # rejected outright: no route
                continue
            push(pending.request.arrival_time, _DYN_ARRIVAL, pending)
            if self.max_wait is not None:
                push(pending.request.arrival_time + self.max_wait, _DYN_TIMEOUT, pending)
        for recovery_time in dynamics.recovery_times():
            push(recovery_time, _DYN_RECOVERY, None)

        queue: list[_Pending] = []
        sim_time = max((p.request.arrival_time for p in pendings), default=0.0)

        def reroute(pending: _Pending, now: float) -> bool:
            """Settle a feasible route for *pending* at *now* (False = outage-blocked)."""
            request = pending.request
            if not dynamics.node_available(request.source, now) or not (
                dynamics.node_available(request.target, now)
            ):
                pending.outage_blocked = True
                return False
            route = pending.route
            qubits_needed, duration = pending.qubits_needed, pending.duration
            exclude_nodes: set[str] = set()
            exclude_links: set[tuple[str, str]] = set()
            while True:
                blocked = dynamics.route_blocked(route, now, now + duration)
                if not blocked:
                    break
                for element, key in blocked:
                    if element == "node":
                        if key in (request.source, request.target):
                            pending.outage_blocked = True
                            return False
                        exclude_nodes.add(key)
                    else:
                        # link keys are already sorted "a|b" strings — the
                        # tuple form find_route excludes on.
                        exclude_links.add(tuple(key.split("|")))
                try:
                    route = self.routing.route(
                        request.source,
                        request.target,
                        exclude_nodes=frozenset(exclude_nodes),
                        exclude_links=frozenset(exclude_links),
                    )
                except NetworkError:
                    pending.outage_blocked = True
                    return False
                qubits_needed, duration = self._route_needs(
                    route, request.message_length
                )
            if route is not pending.route:
                pending.rerouted = True
                pending.route = route
                pending.qubits_needed = qubits_needed
                pending.duration = duration
                pending.record.route_nodes = route.nodes
                pending.record.rerouted = True
            pending.outage_blocked = False
            return True

        def reject(pending: _Pending, reason: str) -> None:
            pending.resolved = True
            pending.record.abort_reason = reason
            telemetry.counter_inc("scheduler.rejections", reason=reason)
            _log.debug(
                "session %d rejected: %s", pending.request.session_id, reason
            )

        def admit(pending: _Pending, now: float) -> None:
            record = pending.record
            request = pending.request
            session_id = request.session_id
            telemetry.counter_inc("scheduler.admitted")
            telemetry.counter_inc("scheduler.admitted_by_class", priority=request.priority)
            telemetry.counter_inc(
                "scheduler.qubits_reserved", sum(pending.qubits_needed.values())
            )
            if pending.rerouted:
                telemetry.counter_inc("scheduler.reroutes")
            _log.debug(
                "session %d (%s) admitted at t=%g (queued %g, %d qubits)",
                session_id,
                request.priority,
                now,
                now - request.arrival_time,
                sum(pending.qubits_needed.values()),
            )
            ledger.reserve(session_id, pending.qubits_needed)
            record.start_time = now
            record.finish_time = now + pending.duration
            record.hold_time = (now - request.arrival_time) / self.hold_time_unit
            pending.admitted = True
            pending.resolved = True
            pending.channels = tuple(
                dynamics.channel_at(self.topology.link(sender, receiver), now)
                for sender, receiver in pending.route.hops()
            )
            if selector is not None:
                selector.charge(
                    request.priority, cost=float(sum(pending.qubits_needed.values()))
                )
            for sender, receiver in pending.route.hops():
                self.topology.link(sender, receiver).classical_channel.broadcast(
                    "scheduler",
                    "route_reserved",
                    {"session": session_id, "start": now, "finish": record.finish_time},
                )
            push(record.finish_time, _DYN_COMPLETION, pending)

        def service_queue(now: float) -> None:
            nonlocal queue
            if selector is None:
                # FIFO — the static pass's discipline, with outage checks.
                still_waiting = []
                for waiting in queue:
                    if waiting.resolved:
                        continue
                    if not reroute(waiting, now):
                        still_waiting.append(waiting)
                    elif not ledger.viable(waiting.qubits_needed):
                        # Only reachable when re-routing grew the capacity
                        # footprint past every node (static runs never hit
                        # this: queued sessions were viable on arrival).
                        reject(waiting, "insufficient_capacity")
                    elif ledger.fits(waiting.qubits_needed):
                        admit(waiting, now)
                    else:
                        still_waiting.append(waiting)
                queue = still_waiting
                return
            # Weighted-fair: serve one admissible head-of-class at a time,
            # lowest virtual time first, until no class can start.
            while True:
                candidates: dict[str, _Pending] = {}
                for waiting in queue:
                    if waiting.resolved or waiting.request.priority in candidates:
                        continue
                    if not reroute(waiting, now):
                        continue
                    if not ledger.viable(waiting.qubits_needed):
                        reject(waiting, "insufficient_capacity")
                        continue
                    if ledger.fits(waiting.qubits_needed):
                        candidates[waiting.request.priority] = waiting
                choice = selector.pick(candidates)
                if choice is None:
                    queue = [w for w in queue if not w.resolved]
                    return
                admit(candidates[choice], now)
                queue = [w for w in queue if not w.resolved]

        while events:
            now, kind, _, pending = heapq.heappop(events)
            if kind == _DYN_RECOVERY:
                # An outage window ended: retry the queue.  Advances
                # sim_time only when there is work to retry, so recovery
                # events on an idle network don't pad the horizon.
                if any(not w.resolved for w in queue):
                    sim_time = max(sim_time, now)
                    service_queue(now)
                continue
            assert pending is not None
            if kind == _DYN_TIMEOUT and pending.resolved:
                # Stale timeout of an already-scheduled session (see the
                # static pass for why it must not advance sim_time).
                continue
            sim_time = max(sim_time, now)
            if kind == _DYN_ARRIVAL:
                if not reroute(pending, now):
                    queue.append(pending)
                    telemetry.observe("scheduler.queue_depth", len(queue))
                elif not ledger.viable(pending.qubits_needed):
                    reject(pending, "insufficient_capacity")
                elif ledger.fits(pending.qubits_needed):
                    admit(pending, now)
                else:
                    queue.append(pending)
                    telemetry.observe("scheduler.queue_depth", len(queue))
            elif kind == _DYN_COMPLETION:
                session_id = pending.request.session_id
                ledger.release(session_id, pending.qubits_needed)
                for sender, receiver in pending.route.hops():
                    self.topology.link(sender, receiver).classical_channel.broadcast(
                        "scheduler", "route_released", {"session": session_id}
                    )
                service_queue(now)
            elif kind == _DYN_TIMEOUT:
                reject(
                    pending,
                    "outage_timeout" if pending.outage_blocked else "capacity_timeout",
                )
                queue = [waiting for waiting in queue if waiting is not pending]

        # Defensive sweep (see the static pass); outage-blocked stragglers
        # are labelled as such so the SLA decomposition attributes them.
        for pending in queue:
            if not pending.resolved:
                pending.resolved = True
                pending.record.abort_reason = (
                    "outage_timeout" if pending.outage_blocked else "capacity_timeout"
                )
        return sim_time

    # -- phase 2: execution ----------------------------------------------------------------
    def _execution_pass(self, pendings: list[_Pending]) -> None:
        """Run every admitted session through the sweep worker pool."""
        from repro.experiments.sweep import run_sweep  # see run(): cycle guard

        admitted = [pending for pending in pendings if pending.admitted]
        if not admitted:
            return
        by_id = {pending.request.session_id: pending for pending in admitted}

        def worker(params: dict[str, Any], seed: int) -> SessionOutcome:
            pending = by_id[params["session"]]
            # A request may pin its own seed (the messaging facade does, so
            # fragment retransmissions stay deterministic); otherwise the
            # sweep-derived per-session seed applies.
            if pending.request.seed is not None:
                seed = int(pending.request.seed)
            return run_session(
                self.topology,
                pending.route,
                pending.request,
                self.session_params,
                seed=seed,
                hold_time=pending.record.hold_time,
                # Admission-time condition snapshots (None for static runs;
                # the links' own channel objects under trivial dynamics).
                channel_overrides=pending.channels,
            )

        grid = [{"session": pending.request.session_id} for pending in admitted]
        sweep = run_sweep(
            worker,
            grid,
            base_seed=self.seed,
            executor=self.executor,
            max_workers=self.max_workers,
        )
        for pending, outcome in zip(admitted, sweep.values):
            record = pending.record
            record.status = outcome.status
            record.failed_hop = outcome.failed_hop
            record.abort_reason = outcome.abort_reason
            record.end_to_end_error_rate = outcome.end_to_end_error_rate
            record.hop_reports = outcome.hop_reports
            record.sent_message = outcome.sent_message
            record.delivered_message = outcome.delivered_message


def simulate_network(
    topology: NetworkTopology,
    traffic: Any,
    *,
    routing_policy: str = "hops",
    session_params: SessionParameters | None = None,
    hop_overhead: float = 1e-3,
    hold_time_unit: float = 1e-3,
    max_wait: float | None = None,
    seed: int = 0,
    executor: str = "serial",
    max_workers: int | None = None,
    dynamics: NetworkDynamics | None = None,
    qos: QoSPolicy | None = None,
) -> NetworkResult:
    """One-call wrapper around :class:`NetworkScheduler` (see its docs)."""
    scheduler = NetworkScheduler(
        topology,
        routing_policy=routing_policy,
        session_params=session_params,
        hop_overhead=hop_overhead,
        hold_time_unit=hold_time_unit,
        max_wait=max_wait,
        seed=seed,
        executor=executor,
        max_workers=max_workers,
        dynamics=dynamics,
        qos=qos,
    )
    return scheduler.run(traffic)
