"""Deterministic discrete-event scheduling of network traffic.

The simulator runs in **two phases**, which is what makes large simulations
both reproducible and parallel:

1. **Reservation pass (serial, discrete-event).**  Traffic requests arrive
   from a generator (Poisson or trace-driven), each is routed, and admission
   control reserves EPR-pair capacity in every route node's
   :class:`~repro.channel.memory.QuantumMemory` (endpoints hold one qubit
   per pair, relays hold two — one per adjacent hop).  Sessions that do not
   fit wait in a FIFO queue and are retried whenever capacity frees; a
   session still queued after ``max_wait`` is rejected.  Admitted sessions
   occupy their reservation for a duration derived from route length, pair
   budget and per-link channel delay.  The event queue is a heap ordered by
   ``(time, kind, sequence)``, so the pass is fully deterministic.

2. **Execution pass (parallel).**  Every admitted session becomes one point
   of a :func:`repro.experiments.sweep.run_sweep` grid with a
   :func:`~repro.experiments.sweep.point_seed`-derived seed, and the
   hop-by-hop protocol runs (:func:`repro.network.sessions.run_session`)
   fan out across the worker pool.  Because each session's randomness
   derives only from its own seed, serial and threaded execution produce
   identical :class:`~repro.network.metrics.NetworkResult` objects — the
   subsystem's headline guarantee.

The reservation pass deliberately books resources for the session's *full*
scheduled duration whether or not a hop later aborts (circuit-switched
reservation, as in trusted-relay QKD networks), which keeps scheduling
independent of quantum outcomes — the property that allows phase 2 to run in
parallel at all.  Queueing delay is fed back into the quantum layer as
memory hold time on the session's first hop, so congestion physically
degrades stored qubits when node memories are non-ideal.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.exceptions import NetworkError
from repro.network.metrics import NetworkResult, SessionRecord
from repro.network.routing import ROUTING_POLICIES, Route, RoutingTable
from repro.network.sessions import (
    SessionOutcome,
    SessionParameters,
    SessionRequest,
    run_session,
)
from repro.network.topology import NetworkTopology
from repro.runtime.admission import NodeCapacityLedger
from repro.telemetry import runtime as telemetry
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

_log = get_logger("network.scheduler")

__all__ = [
    "PoissonTraffic",
    "TraceTraffic",
    "NetworkScheduler",
    "simulate_network",
]

#: Executors the scheduler accepts.  ``"process"`` is excluded: the session
#: worker closes over the live topology (channels, attack factories), which
#: is not generally picklable — and threads already parallelise the NumPy
#:-heavy protocol sessions well.
SCHEDULER_EXECUTORS = ("serial", "thread")

# Event-kind priorities at equal timestamps: completions free capacity before
# timeouts give up on queued sessions, and both precede new arrivals.
_COMPLETION, _TIMEOUT, _ARRIVAL = 0, 1, 2


class PoissonTraffic:
    """Memoryless traffic: exponential inter-arrivals, uniform random pairs.

    Parameters
    ----------
    num_sessions:
        Total number of requests to generate.
    rate:
        Mean arrivals per unit time (λ of the Poisson process).
    message_length:
        Secret bits per session.
    """

    def __init__(self, num_sessions: int, rate: float = 100.0, message_length: int = 8):
        if num_sessions < 1:
            raise NetworkError("num_sessions must be positive")
        if rate <= 0:
            raise NetworkError("rate must be positive")
        if message_length < 1:
            raise NetworkError("message_length must be positive")
        self.num_sessions = num_sessions
        self.rate = rate
        self.message_length = message_length

    def generate(self, topology: NetworkTopology, rng: Any = None) -> list[SessionRequest]:
        """Draw the request list (deterministic for a given generator state)."""
        generator = as_rng(rng)
        names = topology.node_names
        if len(names) < 2:
            raise NetworkError("traffic needs at least two nodes")
        requests = []
        clock = 0.0
        for session_id in range(self.num_sessions):
            clock += float(generator.exponential(1.0 / self.rate))
            source, target = (
                names[int(index)]
                for index in generator.choice(len(names), size=2, replace=False)
            )
            requests.append(
                SessionRequest(
                    session_id=session_id,
                    source=source,
                    target=target,
                    message_length=self.message_length,
                    arrival_time=clock,
                )
            )
        return requests


class TraceTraffic:
    """Trace-driven traffic: explicit ``(time, source, target, length)`` entries."""

    def __init__(self, entries: Sequence[tuple[float, str, str, int]]):
        if not entries:
            raise NetworkError("a trace needs at least one entry")
        self.entries = [tuple(entry) for entry in entries]

    def generate(self, topology: NetworkTopology, rng: Any = None) -> list[SessionRequest]:
        """Materialise the trace (validates node names; ignores *rng*)."""
        ordered = sorted(self.entries, key=lambda entry: entry[0])
        requests = []
        for session_id, (time, source, target, message_length) in enumerate(ordered):
            topology.node(source)
            topology.node(target)
            requests.append(
                SessionRequest(
                    session_id=session_id,
                    source=source,
                    target=target,
                    message_length=int(message_length),
                    arrival_time=float(time),
                )
            )
        return requests


@dataclass
class _Pending:
    """Scheduling state of one request during the reservation pass."""

    request: SessionRequest
    record: SessionRecord
    route: Route | None
    qubits_needed: dict[str, int]
    duration: float
    admitted: bool = False
    resolved: bool = False


class NetworkScheduler:
    """Admission control + discrete-event timing + parallel session execution.

    Parameters
    ----------
    topology:
        The network to simulate (treated as read-only during execution).
    routing_policy:
        ``"hops"`` or ``"loss"`` (see :mod:`repro.network.routing`).
    session_params:
        Fleet-wide protocol parameters (defaults:
        :class:`~repro.network.sessions.SessionParameters`).
    hop_overhead:
        Classical coordination time added per hop (seconds); dominates hop
        duration since per-pair channel delays are microseconds.
    hold_time_unit:
        Seconds of queueing delay per quantum-memory time unit — the
        conversion between scheduler waiting time and storage-decoherence
        applications on the first hop.
    max_wait:
        Patience window: a session still queued this long after arrival is
        rejected (``None`` = wait indefinitely).
    seed:
        Master seed; traffic and every per-session seed derive from it.
    executor:
        ``"serial"`` or ``"thread"`` — both produce identical results.
    max_workers:
        Worker-pool size for the ``"thread"`` executor.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        *,
        routing_policy: str = "hops",
        session_params: SessionParameters | None = None,
        hop_overhead: float = 1e-3,
        hold_time_unit: float = 1e-3,
        max_wait: float | None = None,
        seed: int = 0,
        executor: str = "serial",
        max_workers: int | None = None,
    ):
        if routing_policy not in ROUTING_POLICIES:
            raise NetworkError(
                f"unknown routing policy {routing_policy!r}; known: {ROUTING_POLICIES}"
            )
        if executor not in SCHEDULER_EXECUTORS:
            raise NetworkError(
                f"unknown executor {executor!r}; the scheduler supports "
                f"{SCHEDULER_EXECUTORS} (session workers close over the live "
                "topology and cannot be pickled for process pools)"
            )
        if hop_overhead < 0:
            raise NetworkError("hop_overhead must be non-negative")
        if hold_time_unit <= 0:
            raise NetworkError("hold_time_unit must be positive")
        if max_wait is not None and max_wait < 0:
            raise NetworkError("max_wait must be non-negative or None")
        self.topology = topology
        self.routing = RoutingTable(topology, policy=routing_policy)
        self.session_params = session_params or SessionParameters()
        self.hop_overhead = hop_overhead
        self.hold_time_unit = hold_time_unit
        self.max_wait = max_wait
        self.seed = int(seed)
        self.executor = executor
        self.max_workers = max_workers

    # -- public API --------------------------------------------------------------------
    def run(self, traffic: Any) -> NetworkResult:
        """Simulate the given traffic and return the aggregated result."""
        # Imported here (not at module level): the experiments package pulls
        # in the network-scale experiment, which imports this module — a
        # top-level import of the sweep substrate would close that cycle.
        from repro.experiments.sweep import point_seed

        traffic_rng = as_rng(point_seed(self.seed, {"stream": "traffic"}))
        with telemetry.span(
            "network.simulate",
            "network",
            {"topology": self.topology.name, "executor": self.executor},
        ):
            requests = traffic.generate(self.topology, traffic_rng)
            requests = sorted(requests, key=lambda r: (r.arrival_time, r.session_id))
            pendings = [self._prepare(request) for request in requests]
            with telemetry.span("network.reservation", "network"):
                sim_time = self._reservation_pass(pendings)
            with telemetry.span(
                "network.execution",
                "network",
                {"admitted": sum(1 for p in pendings if p.admitted)},
            ):
                self._execution_pass(pendings)
        return NetworkResult(
            topology_name=self.topology.name,
            num_nodes=self.topology.num_nodes,
            num_links=self.topology.num_links,
            routing_policy=self.routing.policy,
            sim_time=sim_time,
            records=[pending.record for pending in pendings],
        )

    # -- phase 1: reservation ------------------------------------------------------------
    def _prepare(self, request: SessionRequest) -> _Pending:
        """Route one request and precompute its capacity and duration needs."""
        record = SessionRecord(
            session_id=request.session_id,
            source=request.source,
            target=request.target,
            message_length=request.message_length,
            arrival_time=request.arrival_time,
        )
        try:
            route = self.routing.route(request.source, request.target)
        except NetworkError:
            record.abort_reason = "no_route"
            telemetry.counter_inc("scheduler.rejections", reason="no_route")
            _log.debug(
                "session %d rejected: no route %s -> %s",
                request.session_id,
                request.source,
                request.target,
            )
            return _Pending(request, record, None, {}, 0.0)
        record.route_nodes = route.nodes

        pairs = self.session_params.pairs_per_hop(request.message_length)
        qubits_needed: dict[str, int] = {}
        for sender, receiver in route.hops():
            qubits_needed[sender] = qubits_needed.get(sender, 0) + pairs
            qubits_needed[receiver] = qubits_needed.get(receiver, 0) + pairs
        duration = sum(
            pairs * self.topology.link(sender, receiver).quantum_channel.duration()
            + self.hop_overhead
            for sender, receiver in route.hops()
        )
        return _Pending(request, record, route, qubits_needed, duration)

    def _reservation_pass(self, pendings: list[_Pending]) -> float:
        """Discrete-event admission/timing; fills scheduling fields of records.

        Capacity accounting lives in
        :class:`~repro.runtime.admission.NodeCapacityLedger` — the same
        ledger the delivery runtime uses — so both layers share one
        definition of "this node can hold the session's pairs".
        """
        ledger = NodeCapacityLedger(self.topology)
        events: list[tuple[float, int, int, _Pending]] = []
        sequence = 0

        def push(time: float, kind: int, pending: _Pending) -> None:
            nonlocal sequence
            heapq.heappush(events, (time, kind, sequence, pending))
            sequence += 1

        for pending in pendings:
            if pending.route is None:
                pending.resolved = True  # rejected outright: no route
                continue
            push(pending.request.arrival_time, _ARRIVAL, pending)
            if self.max_wait is not None:
                push(pending.request.arrival_time + self.max_wait, _TIMEOUT, pending)

        queue: list[_Pending] = []
        sim_time = max((p.request.arrival_time for p in pendings), default=0.0)

        def admit(pending: _Pending, now: float) -> None:
            record = pending.record
            session_id = pending.request.session_id
            telemetry.counter_inc("scheduler.admitted")
            telemetry.counter_inc(
                "scheduler.qubits_reserved", sum(pending.qubits_needed.values())
            )
            _log.debug(
                "session %d admitted at t=%g (queued %g, %d qubits)",
                session_id,
                now,
                now - pending.request.arrival_time,
                sum(pending.qubits_needed.values()),
            )
            ledger.reserve(session_id, pending.qubits_needed)
            record.start_time = now
            record.finish_time = now + pending.duration
            record.hold_time = (now - pending.request.arrival_time) / self.hold_time_unit
            pending.admitted = True
            pending.resolved = True
            for sender, receiver in pending.route.hops():
                self.topology.link(sender, receiver).classical_channel.broadcast(
                    "scheduler",
                    "route_reserved",
                    {"session": session_id, "start": now, "finish": record.finish_time},
                )
            push(record.finish_time, _COMPLETION, pending)

        while events:
            now, kind, _, pending = heapq.heappop(events)
            if kind == _TIMEOUT and pending.resolved:
                # Stale timeout of an already-scheduled session: must not
                # advance sim_time, or every run with max_wait set would have
                # its horizon padded to last_arrival + max_wait and all
                # throughput figures silently deflated.
                continue
            sim_time = max(sim_time, now)
            if kind == _ARRIVAL:
                if not ledger.viable(pending.qubits_needed):
                    pending.resolved = True
                    pending.record.abort_reason = "insufficient_capacity"
                    telemetry.counter_inc(
                        "scheduler.rejections", reason="insufficient_capacity"
                    )
                    _log.debug(
                        "session %d rejected: needs more qubits than any node has",
                        pending.request.session_id,
                    )
                elif ledger.fits(pending.qubits_needed):
                    admit(pending, now)
                else:
                    queue.append(pending)
                    telemetry.observe("scheduler.queue_depth", len(queue))
            elif kind == _COMPLETION:
                session_id = pending.request.session_id
                ledger.release(session_id, pending.qubits_needed)
                for sender, receiver in pending.route.hops():
                    self.topology.link(sender, receiver).classical_channel.broadcast(
                        "scheduler", "route_released", {"session": session_id}
                    )
                still_waiting = []
                for waiting in queue:
                    if not waiting.resolved and ledger.fits(waiting.qubits_needed):
                        admit(waiting, now)
                    elif not waiting.resolved:
                        still_waiting.append(waiting)
                queue = still_waiting
            elif kind == _TIMEOUT:
                pending.resolved = True
                pending.record.abort_reason = "capacity_timeout"
                telemetry.counter_inc(
                    "scheduler.rejections", reason="capacity_timeout"
                )
                _log.debug(
                    "session %d rejected: queued past max_wait=%g",
                    pending.request.session_id,
                    self.max_wait,
                )
                queue = [waiting for waiting in queue if waiting is not pending]

        # With max_wait=None a queued session is always admitted eventually
        # (reservations drain, and unviable requests were rejected on
        # arrival); this is a defensive sweep, not an expected path.
        for pending in queue:
            if not pending.resolved:
                pending.resolved = True
                pending.record.abort_reason = "capacity_timeout"
        return sim_time

    # -- phase 2: execution ----------------------------------------------------------------
    def _execution_pass(self, pendings: list[_Pending]) -> None:
        """Run every admitted session through the sweep worker pool."""
        from repro.experiments.sweep import run_sweep  # see run(): cycle guard

        admitted = [pending for pending in pendings if pending.admitted]
        if not admitted:
            return
        by_id = {pending.request.session_id: pending for pending in admitted}

        def worker(params: dict[str, Any], seed: int) -> SessionOutcome:
            pending = by_id[params["session"]]
            # A request may pin its own seed (the messaging facade does, so
            # fragment retransmissions stay deterministic); otherwise the
            # sweep-derived per-session seed applies.
            if pending.request.seed is not None:
                seed = int(pending.request.seed)
            return run_session(
                self.topology,
                pending.route,
                pending.request,
                self.session_params,
                seed=seed,
                hold_time=pending.record.hold_time,
            )

        grid = [{"session": pending.request.session_id} for pending in admitted]
        sweep = run_sweep(
            worker,
            grid,
            base_seed=self.seed,
            executor=self.executor,
            max_workers=self.max_workers,
        )
        for pending, outcome in zip(admitted, sweep.values):
            record = pending.record
            record.status = outcome.status
            record.failed_hop = outcome.failed_hop
            record.abort_reason = outcome.abort_reason
            record.end_to_end_error_rate = outcome.end_to_end_error_rate
            record.hop_reports = outcome.hop_reports
            record.sent_message = outcome.sent_message
            record.delivered_message = outcome.delivered_message


def simulate_network(
    topology: NetworkTopology,
    traffic: Any,
    *,
    routing_policy: str = "hops",
    session_params: SessionParameters | None = None,
    hop_overhead: float = 1e-3,
    hold_time_unit: float = 1e-3,
    max_wait: float | None = None,
    seed: int = 0,
    executor: str = "serial",
    max_workers: int | None = None,
) -> NetworkResult:
    """One-call wrapper around :class:`NetworkScheduler` (see its docs)."""
    scheduler = NetworkScheduler(
        topology,
        routing_policy=routing_policy,
        session_params=session_params,
        hop_overhead=hop_overhead,
        hold_time_unit=hold_time_unit,
        max_wait=max_wait,
        seed=seed,
        executor=executor,
        max_workers=max_workers,
    )
    return scheduler.run(traffic)
