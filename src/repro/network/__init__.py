"""Multi-node QSDC network simulation.

The paper proves and emulates one Alice–Bob UA-DI-QSDC session; this package
scales that link into a *network*: many users and trusted relays joined by
per-edge quantum + classical channels, concurrent sessions admitted under
per-node qubit-capacity constraints, and hop-by-hop authenticated forwarding
where every hop runs the full protocol.

Layers (bottom up):

* :mod:`repro.network.topology` — the graph: nodes (capacity, memory model,
  optional compromise), links (quantum + classical channel per edge) and the
  standard generators (line, star, ring, grid, random geometric).
* :mod:`repro.network.routing` — deterministic shortest-hop / lowest-loss
  path selection (with element exclusion for outage re-routing).
* :mod:`repro.network.dynamics` — time-varying conditions: drift curves,
  calibration aging, link/node failure + recovery windows, and the
  :class:`~repro.network.dynamics.NetworkDynamics` bundle the scheduler
  evaluates at each session's admission time.
* :mod:`repro.network.sessions` — trusted-relay session execution: one full
  UA-DI-QSDC run per hop, relays re-encoding the decoded bits; compromised
  relays mount attacks through the existing :mod:`repro.attacks` hooks.
* :mod:`repro.network.scheduler` — deterministic discrete-event admission
  and timing plus parallel execution of admitted sessions through the
  :func:`repro.experiments.sweep.run_sweep` worker pool; optional
  time-varying conditions (``dynamics=``) and weighted-fair priority
  classes (``qos=``).
* :mod:`repro.network.metrics` — per-session records aggregated into a
  :class:`~repro.network.metrics.NetworkResult` (throughput, latency, abort
  and rejection rates, QBER).

Quickstart::

    from repro.network import grid_topology, PoissonTraffic, simulate_network

    topology = grid_topology(3, 3, qubit_capacity=128)
    traffic = PoissonTraffic(num_sessions=50, rate=400.0, message_length=8)
    result = simulate_network(topology, traffic, seed=7, executor="thread")
    print(result.throughput_sessions, result.abort_rate)

See ``docs/network.md`` for the architecture and event model.
"""

from repro.network.dynamics import (
    CONDITION_PROFILES,
    CalibrationAging,
    DriftProfile,
    NetworkDynamics,
    OutageSchedule,
    OutageWindow,
    condition_profile,
    evolve_channel,
    link_key,
)
from repro.network.metrics import NetworkResult, SessionRecord
from repro.network.routing import ROUTING_POLICIES, Route, RoutingTable, find_route
from repro.network.scheduler import (
    DEFAULT_QOS_WEIGHTS,
    NetworkScheduler,
    PoissonTraffic,
    QoSPolicy,
    TraceTraffic,
    simulate_network,
)
from repro.network.sessions import (
    STATUS_ABORTED,
    STATUS_DELIVERED,
    STATUS_DELIVERED_WITH_ERRORS,
    STATUS_REJECTED,
    HopReport,
    SessionOutcome,
    SessionParameters,
    SessionRequest,
    run_session,
)
from repro.network.topology import (
    NetworkLink,
    NetworkNode,
    NetworkTopology,
    build_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    ring_topology,
    star_topology,
)

__all__ = [
    "CONDITION_PROFILES",
    "CalibrationAging",
    "DriftProfile",
    "NetworkDynamics",
    "OutageSchedule",
    "OutageWindow",
    "condition_profile",
    "evolve_channel",
    "link_key",
    "NetworkResult",
    "SessionRecord",
    "ROUTING_POLICIES",
    "Route",
    "RoutingTable",
    "find_route",
    "DEFAULT_QOS_WEIGHTS",
    "NetworkScheduler",
    "PoissonTraffic",
    "QoSPolicy",
    "TraceTraffic",
    "simulate_network",
    "STATUS_ABORTED",
    "STATUS_DELIVERED",
    "STATUS_DELIVERED_WITH_ERRORS",
    "STATUS_REJECTED",
    "HopReport",
    "SessionOutcome",
    "SessionParameters",
    "SessionRequest",
    "run_session",
    "NetworkLink",
    "NetworkNode",
    "NetworkTopology",
    "build_topology",
    "grid_topology",
    "line_topology",
    "random_geometric_topology",
    "ring_topology",
    "star_topology",
]
