"""Route selection over a network topology.

Trusted-relay QSDC forwards a message hop by hop: each hop runs a full
authenticated protocol session and the relay re-encodes the decoded bits for
the next hop (see :mod:`repro.network.sessions`).  Which hops to use is this
module's job:

* ``"hops"`` — fewest relays (every relay adds protocol overhead and a
  trust assumption);
* ``"loss"`` — lowest accumulated channel loss, weighting each link by
  ``-log(survival_probability)`` of its quantum channel so path loss is
  additive.

Both policies run Dijkstra with a *deterministic* tie-break (lexicographic on
the path's node names), which the scheduler's reproducibility guarantee
relies on: the same topology and endpoints always yield the same route,
regardless of dict iteration quirks or insertion order.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.exceptions import NetworkError
from repro.network.topology import NetworkLink, NetworkTopology

__all__ = ["ROUTING_POLICIES", "Route", "link_loss_weight", "find_route", "RoutingTable"]

#: Routing policies understood by :func:`find_route`.
ROUTING_POLICIES = ("hops", "loss")

#: Numerical floor applied to per-link survival probabilities so that a fully
#: lossy link gets a very large (but finite) weight instead of breaking the
#: comparison with an infinity.
_MIN_SURVIVAL = 1e-12


@dataclass(frozen=True)
class Route:
    """A loop-free path through the network.

    Attributes
    ----------
    nodes:
        The path's node names, source first, target last.
    cost:
        Accumulated Dijkstra cost under the policy that produced the route
        (hop count for ``"hops"``, additive loss for ``"loss"``).
    """

    nodes: tuple[str, ...]
    cost: float = 0.0

    def __post_init__(self):
        if len(self.nodes) < 2:
            raise NetworkError("a route needs at least two nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise NetworkError(f"route {self.nodes} visits a node twice")

    @property
    def source(self) -> str:
        return self.nodes[0]

    @property
    def target(self) -> str:
        return self.nodes[-1]

    @property
    def num_hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def relays(self) -> tuple[str, ...]:
        """The intermediate (trusted-relay) nodes."""
        return self.nodes[1:-1]

    def hops(self) -> list[tuple[str, str]]:
        """Consecutive ``(sender, receiver)`` pairs along the path."""
        return list(zip(self.nodes[:-1], self.nodes[1:]))


def link_loss_weight(link: NetworkLink) -> float:
    """Additive loss weight of one link: ``-log(survival_probability)``."""
    survival = max(link.quantum_channel.survival_probability(), _MIN_SURVIVAL)
    return -math.log(survival)


def find_route(
    topology: NetworkTopology,
    source: str,
    target: str,
    policy: str = "hops",
    *,
    exclude_nodes: "frozenset[str] | set[str]" = frozenset(),
    exclude_links: "frozenset[tuple[str, str]] | set[tuple[str, str]]" = frozenset(),
) -> Route:
    """Best route from *source* to *target* under the given policy.

    ``exclude_nodes``/``exclude_links`` remove elements from consideration
    (link keys are sorted endpoint pairs) — the re-routing hook the
    scheduler uses to steer sessions around failure windows.  Raises
    :class:`NetworkError` for unknown nodes, unknown policies, or when no
    path exists through the remaining elements.
    """
    if policy not in ROUTING_POLICIES:
        raise NetworkError(f"unknown routing policy {policy!r}; known: {ROUTING_POLICIES}")
    topology.node(source)
    topology.node(target)
    if source == target:
        raise NetworkError("source and target must differ")
    if source in exclude_nodes or target in exclude_nodes:
        raise NetworkError(
            f"no route from {source!r} to {target!r}: an endpoint is unavailable"
        )

    def weight(link: NetworkLink) -> float:
        return 1.0 if policy == "hops" else link_loss_weight(link)

    # Heap entries are (cost, path); comparing the path tuple on equal cost
    # gives the deterministic lexicographic tie-break.
    frontier: list[tuple[float, tuple[str, ...]]] = [(0.0, (source,))]
    settled: set[str] = set()
    while frontier:
        cost, path = heapq.heappop(frontier)
        current = path[-1]
        if current == target:
            return Route(nodes=path, cost=cost)
        if current in settled:
            continue
        settled.add(current)
        for neighbor in topology.neighbors(current):
            if neighbor in settled or neighbor in exclude_nodes:
                continue
            if tuple(sorted((current, neighbor))) in exclude_links:
                continue
            link = topology.link(current, neighbor)
            heapq.heappush(frontier, (cost + weight(link), path + (neighbor,)))
    raise NetworkError(f"no route from {source!r} to {target!r}")


class RoutingTable:
    """Memoised route lookup for one topology (the scheduler's view).

    Routes are computed lazily and cached per ``(source, target)`` pair; the
    topology is assumed static for the lifetime of the table (the scheduler
    builds a fresh table per simulation).
    """

    def __init__(self, topology: NetworkTopology, policy: str = "hops"):
        if policy not in ROUTING_POLICIES:
            raise NetworkError(
                f"unknown routing policy {policy!r}; known: {ROUTING_POLICIES}"
            )
        self.topology = topology
        self.policy = policy
        self._routes: dict[tuple[str, str], Route] = {}

    def route(
        self,
        source: str,
        target: str,
        *,
        exclude_nodes: "frozenset[str]" = frozenset(),
        exclude_links: "frozenset[tuple[str, str]]" = frozenset(),
    ) -> Route:
        """The (cached) route between two endpoints.

        Exclusion sets participate in the cache key, so availability-aware
        lookups (the dynamics scheduler re-routing around outages) memoise
        per distinct failure pattern.
        """
        key = (
            source,
            target,
            tuple(sorted(exclude_nodes)),
            tuple(sorted(exclude_links)),
        )
        if key not in self._routes:
            self._routes[key] = find_route(
                self.topology,
                source,
                target,
                policy=self.policy,
                exclude_nodes=frozenset(exclude_nodes),
                exclude_links=frozenset(exclude_links),
            )
        return self._routes[key]

    def __len__(self) -> int:
        return len(self._routes)
