"""Network-wide metrics: per-session records and the :class:`NetworkResult`.

The scheduler produces one :class:`SessionRecord` per traffic request —
covering both the *scheduling* view (arrival, admission wait, start/finish
times, capacity rejections) and the *quantum* view (per-hop protocol
reports, aborts, end-to-end error rate).  :class:`NetworkResult` aggregates
them into the quantities a network operator tracks:

* **throughput** — delivered sessions (and delivered message bits) per unit
  of simulated time;
* **latency** — arrival-to-finish time of delivered sessions (waiting time
  included);
* **abort rate** — fraction of *admitted* sessions whose security machinery
  fired on some hop (eavesdropping, compromised relays, decohered memories
  and plain noise all land here);
* **rejection rate** — fraction of all requests dropped by admission control
  (capacity exhausted for longer than the patience window);
* **QBER** — mean check-bit error rate observed across successful hops, the
  network-wide quality-of-service figure.

Every aggregate is computed in session-id order from the records alone, so
two simulations with identical records produce identical results — the
property the determinism tests (serial vs. threaded execution) assert via
:meth:`NetworkResult.summary`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.network.sessions import (
    STATUS_ABORTED,
    STATUS_DELIVERED,
    STATUS_DELIVERED_WITH_ERRORS,
    STATUS_REJECTED,
    HopReport,
)

__all__ = ["SessionRecord", "NetworkResult"]


@dataclass
class SessionRecord:
    """Everything the network learned about one traffic request.

    ``start_time``/``finish_time`` are None for rejected sessions;
    quantum-execution fields are filled only for admitted sessions.
    """

    session_id: int
    source: str
    target: str
    message_length: int
    arrival_time: float
    status: str = STATUS_REJECTED
    route_nodes: tuple[str, ...] | None = None
    start_time: float | None = None
    finish_time: float | None = None
    hold_time: float = 0.0
    failed_hop: int | None = None
    abort_reason: str | None = None
    end_to_end_error_rate: float | None = None
    sent_message: str | None = None
    delivered_message: str | None = None
    hop_reports: list[HopReport] = field(default_factory=list)
    priority: str = "bulk"
    rerouted: bool = False

    @property
    def admitted(self) -> bool:
        """True if the session was scheduled (i.e. not rejected)."""
        return self.start_time is not None

    @property
    def delivered(self) -> bool:
        """True if the message reached the target (bit errors allowed)."""
        return self.status in (STATUS_DELIVERED, STATUS_DELIVERED_WITH_ERRORS)

    @property
    def wait_time(self) -> float | None:
        """Admission queueing delay (None for rejected sessions)."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time

    @property
    def latency(self) -> float | None:
        """Arrival-to-finish time (None unless the session finished)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def summary(self) -> dict[str, Any]:
        """Canonical JSON-friendly view (the determinism-comparison unit)."""
        return {
            "session_id": self.session_id,
            "source": self.source,
            "target": self.target,
            "message_length": self.message_length,
            "arrival_time": self.arrival_time,
            "status": self.status,
            "route": None if self.route_nodes is None else list(self.route_nodes),
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "hold_time": self.hold_time,
            "failed_hop": self.failed_hop,
            "abort_reason": self.abort_reason,
            "end_to_end_error_rate": self.end_to_end_error_rate,
            "sent_message": self.sent_message,
            "delivered_message": self.delivered_message,
            "hops": [report.summary() for report in self.hop_reports],
            "priority": self.priority,
            "rerouted": self.rerouted,
        }


def _mean(values: list[float]) -> float | None:
    if not values:
        return None
    return sum(values) / len(values)


def _percentile(sorted_values: list[float], pct: float) -> float | None:
    """Nearest-rank percentile of an ascending-sorted sample (None if empty)."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class NetworkResult:
    """Aggregate outcome of one network simulation."""

    topology_name: str
    num_nodes: int
    num_links: int
    routing_policy: str
    sim_time: float
    records: list[SessionRecord] = field(default_factory=list)

    # -- per-status counts ------------------------------------------------------------
    def count(self, status: str) -> int:
        """Number of sessions that finished with the given status."""
        return sum(1 for record in self.records if record.status == status)

    @property
    def num_sessions(self) -> int:
        return len(self.records)

    @property
    def admitted_count(self) -> int:
        return sum(1 for record in self.records if record.admitted)

    @property
    def delivered_count(self) -> int:
        """Sessions whose message reached its target (bit errors allowed)."""
        return sum(1 for record in self.records if record.delivered)

    @property
    def aborted_count(self) -> int:
        return self.count(STATUS_ABORTED)

    @property
    def rejected_count(self) -> int:
        return self.count(STATUS_REJECTED)

    # -- rates ------------------------------------------------------------------------
    @property
    def abort_rate(self) -> float:
        """Aborted fraction of *admitted* sessions (the security-fired rate)."""
        admitted = self.admitted_count
        return self.aborted_count / admitted if admitted else 0.0

    @property
    def rejection_rate(self) -> float:
        """Capacity-rejected fraction of all requests."""
        return self.rejected_count / self.num_sessions if self.records else 0.0

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of all requests (exact + with-errors)."""
        return self.delivered_count / self.num_sessions if self.records else 0.0

    # -- throughput and latency ---------------------------------------------------------
    @property
    def throughput_sessions(self) -> float:
        """Delivered sessions per unit of simulated time."""
        return self.delivered_count / self.sim_time if self.sim_time > 0 else 0.0

    @property
    def throughput_bits(self) -> float:
        """Delivered message bits per unit of simulated time."""
        bits = sum(
            record.message_length for record in self.records if record.delivered
        )
        return bits / self.sim_time if self.sim_time > 0 else 0.0

    @property
    def mean_latency(self) -> float | None:
        """Mean arrival-to-finish time of delivered sessions."""
        return _mean([r.latency for r in self.records if r.delivered])

    @property
    def mean_wait(self) -> float | None:
        """Mean admission queueing delay of admitted sessions."""
        return _mean([r.wait_time for r in self.records if r.admitted])

    # -- quality ----------------------------------------------------------------------
    @property
    def mean_qber(self) -> float | None:
        """Mean check-bit error rate over every *successful* hop session."""
        rates = [
            report.check_bit_error_rate
            for record in self.records
            for report in record.hop_reports
            if report.success and report.check_bit_error_rate is not None
        ]
        return _mean(rates)

    @property
    def mean_chsh(self) -> float | None:
        """Mean round-1 CHSH value over every hop that reached the check."""
        values = [
            report.chsh_round1
            for record in self.records
            for report in record.hop_reports
            if report.chsh_round1 is not None
        ]
        return _mean(values)

    @property
    def mean_hops(self) -> float | None:
        """Mean route length (hops) of admitted sessions."""
        return _mean(
            [
                float(len(record.route_nodes) - 1)
                for record in self.records
                if record.admitted and record.route_nodes is not None
            ]
        )

    # -- breakdowns -------------------------------------------------------------------
    def route_stats(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Per-(source, target) delivery/abort/QBER statistics."""
        stats: dict[tuple[str, str], dict[str, Any]] = {}
        for record in self.records:
            entry = stats.setdefault(
                (record.source, record.target),
                {"sessions": 0, "delivered": 0, "aborted": 0, "rejected": 0,
                 "qber_samples": []},
            )
            entry["sessions"] += 1
            if record.delivered:
                entry["delivered"] += 1
            elif record.status == STATUS_ABORTED:
                entry["aborted"] += 1
            elif record.status == STATUS_REJECTED:
                entry["rejected"] += 1
            entry["qber_samples"].extend(
                report.check_bit_error_rate
                for report in record.hop_reports
                if report.success and report.check_bit_error_rate is not None
            )
        for entry in stats.values():
            samples = entry.pop("qber_samples")
            entry["mean_qber"] = _mean(samples)
        return stats

    def link_utilisation(self) -> dict[tuple[str, str], int]:
        """Number of hop sessions each link carried."""
        usage: dict[tuple[str, str], int] = {}
        for record in self.records:
            for report in record.hop_reports:
                key = tuple(sorted((report.sender, report.receiver)))
                usage[key] = usage.get(key, 0) + 1
        return usage

    def abort_reasons(self) -> dict[str, int]:
        """Histogram of abort reasons across aborted sessions."""
        histogram: dict[str, int] = {}
        for record in self.records:
            if record.status == STATUS_ABORTED and record.abort_reason:
                histogram[record.abort_reason] = histogram.get(record.abort_reason, 0) + 1
        return histogram

    # -- QoS breakdowns ----------------------------------------------------------------
    def priority_classes(self) -> list[str]:
        """Sorted distinct priority classes present in the traffic."""
        return sorted({record.priority for record in self.records})

    def class_counts(self) -> dict[str, dict[str, int]]:
        """Per-class session/admitted/delivered/aborted/rejected counts."""
        counts: dict[str, dict[str, int]] = {}
        for record in self.records:
            entry = counts.setdefault(
                record.priority,
                {"sessions": 0, "admitted": 0, "delivered": 0, "aborted": 0, "rejected": 0},
            )
            entry["sessions"] += 1
            if record.admitted:
                entry["admitted"] += 1
            if record.delivered:
                entry["delivered"] += 1
            elif record.status == STATUS_ABORTED:
                entry["aborted"] += 1
            elif record.status == STATUS_REJECTED:
                entry["rejected"] += 1
        return {name: counts[name] for name in sorted(counts)}

    def class_shares(self) -> dict[str, float]:
        """Each class's share of admitted capacity-time (the fairness figure).

        Work is measured as ``message_length × reservation duration`` per
        admitted session — the quantity weighted-fair queueing divides under
        saturation, so under sustained backlog the shares approach the QoS
        weight ratios (the invariant battery asserts this with tolerance).
        """
        work: dict[str, float] = {}
        for record in self.records:
            if not record.admitted or record.finish_time is None:
                continue
            span = record.finish_time - record.start_time
            work[record.priority] = work.get(record.priority, 0.0) + (
                record.message_length * span
            )
        total = sum(work.values())
        if total <= 0:
            return {}
        return {name: work[name] / total for name in sorted(work)}

    def class_latency_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> dict[str, dict[str, float]]:
        """Nearest-rank latency percentiles of delivered sessions, per class."""
        samples: dict[str, list[float]] = {}
        for record in self.records:
            if record.delivered and record.latency is not None:
                samples.setdefault(record.priority, []).append(record.latency)
        result: dict[str, dict[str, float]] = {}
        for name in sorted(samples):
            values = sorted(samples[name])
            result[name] = {
                f"p{pct:g}": _percentile(values, pct) for pct in percentiles
            }
        return result

    def outage_decomposition(self) -> dict[str, int]:
        """Why sessions did not deliver, as a ``status:reason`` histogram.

        Splits the non-delivered tail into scheduling losses (``rejected:*``
        — no route, capacity exhaustion, patience expiry, outage-blocked
        patience expiry) and quantum losses (``aborted:*`` — per abort
        reason), the decomposition the SLA experiment reports.
        """
        histogram: dict[str, int] = {}
        for record in self.records:
            if record.delivered:
                continue
            reason = record.abort_reason or "unknown"
            key = f"{record.status}:{reason}"
            histogram[key] = histogram.get(key, 0) + 1
        return {key: histogram[key] for key in sorted(histogram)}

    @property
    def reroute_count(self) -> int:
        """Sessions that left their originally prepared route (outage re-routing)."""
        return sum(1 for record in self.records if record.rerouted)

    def summary(self) -> dict[str, Any]:
        """Canonical JSON-friendly view of the whole simulation.

        Two runs with the same seed must produce *equal* summaries whatever
        executor ran the sessions — the determinism contract the tests pin.
        """
        return {
            "topology": self.topology_name,
            "num_nodes": self.num_nodes,
            "num_links": self.num_links,
            "routing_policy": self.routing_policy,
            "sim_time": self.sim_time,
            "num_sessions": self.num_sessions,
            "delivered": self.delivered_count,
            "delivered_exact": self.count(STATUS_DELIVERED),
            "delivered_with_errors": self.count(STATUS_DELIVERED_WITH_ERRORS),
            "aborted": self.aborted_count,
            "rejected": self.rejected_count,
            "abort_rate": self.abort_rate,
            "rejection_rate": self.rejection_rate,
            "throughput_sessions": self.throughput_sessions,
            "throughput_bits": self.throughput_bits,
            "mean_latency": self.mean_latency,
            "mean_wait": self.mean_wait,
            "mean_qber": self.mean_qber,
            "mean_chsh": self.mean_chsh,
            "abort_reasons": self.abort_reasons(),
            "class_counts": self.class_counts(),
            "class_latency_percentiles": self.class_latency_percentiles(),
            "outage_decomposition": self.outage_decomposition(),
            "reroutes": self.reroute_count,
            "records": [record.summary() for record in self.records],
        }
