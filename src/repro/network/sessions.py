"""Multi-hop QSDC sessions: trusted-relay forwarding over a route.

A network session delivers one message from a source user to a target user
along a :class:`~repro.network.routing.Route`.  QSDC has no entanglement
swapping in this architecture — the paper's protocol is point to point — so
forwarding is *trusted relay*: every hop runs a complete UA-DI-QSDC session
(entanglement sharing, both DI checks, mutual authentication, decoding)
between its two endpoint nodes, and the relay re-encodes the bits it decoded
as the message of the next hop.  Consequences modelled here:

* a hop abort (CHSH failure, authentication failure, integrity failure)
  aborts the whole session at that hop;
* channel bit errors *accumulate* across hops (each relay forwards exactly
  the bits it decoded, errors included);
* a compromised relay attacks every hop it terminates — and is caught by
  that hop's DI check / authentication exactly like a man-in-the-middle,
  which is the relay-compromise scenario the network experiments study;
* the source's queueing delay (from the scheduler) becomes quantum-memory
  hold time on the first hop, applying storage decoherence if the source
  node's memory is non-ideal.

Everything is deterministic given the session seed: per-hop seeds, the
message bits and any attack randomness derive from it via
:mod:`repro.utils.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import NetworkError
from repro.network.routing import Route
from repro.network.topology import NetworkTopology
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol
from repro.telemetry import runtime as telemetry
from repro.utils.bits import (
    Bits,
    bits_to_str,
    bitstring_to_bits,
    hamming_distance,
    random_bits,
)
from repro.utils.rng import as_rng, derive_rng

__all__ = [
    "STATUS_DELIVERED",
    "STATUS_DELIVERED_WITH_ERRORS",
    "STATUS_ABORTED",
    "STATUS_REJECTED",
    "SessionRequest",
    "SessionParameters",
    "HopReport",
    "SessionOutcome",
    "run_session",
]

#: Terminal session statuses.
STATUS_DELIVERED = "delivered"
STATUS_DELIVERED_WITH_ERRORS = "delivered_with_errors"
STATUS_ABORTED = "aborted"
STATUS_REJECTED = "rejected"


@dataclass(frozen=True)
class SessionRequest:
    """One user's request to send a message across the network.

    Attributes
    ----------
    session_id:
        Unique id assigned by the traffic generator (grid order = id order).
    source, target:
        Endpoint node names.
    message_length:
        Number of secret bits to deliver (the bits themselves are drawn
        deterministically from the session seed at execution time unless an
        explicit ``message`` is supplied).
    arrival_time:
        Simulation time at which the request enters the network.
    message:
        Optional explicit message bitstring to deliver.  ``None`` (the
        historical behaviour) draws random bits from the session seed; the
        messaging-service facade sets this to carry real payload fragments
        across the network.
    seed:
        Optional explicit per-session seed.  ``None`` (the historical
        behaviour) lets the scheduler derive one from its own seed; the
        facade sets it so retransmission seeds stay deterministic per
        fragment and attempt.
    scenario:
        Optional declarative adversary
        (:class:`~repro.attacks.scenarios.AttackScenario`,
        :class:`~repro.attacks.scenarios.ScenarioSchedule`, a serialised
        dict, or a registered preset name) attacking *this* session.  Each
        hop runs under the sub-schedule whose target layers select it
        (``source`` → first hop, ``channel``/``classical`` → every hop,
        ``relay`` → only hops of multi-hop routes); a compromised node's
        own ``attack_factory`` takes precedence on the hops it touches.
        ``None`` (default) leaves the session honest.
    priority:
        QoS class of the request (conventionally ``control`` /
        ``interactive`` / ``bulk``, but any non-empty label works).  The
        scheduler's weighted-fair admission uses it only when a
        :class:`~repro.network.scheduler.QoSPolicy` is configured; without
        one every class is served FIFO exactly as before.
    """

    session_id: int
    source: str
    target: str
    message_length: int
    arrival_time: float
    message: "str | None" = None
    seed: "int | None" = None
    scenario: Any = None
    priority: str = "bulk"

    def __post_init__(self):
        if self.source == self.target:
            raise NetworkError("session source and target must differ")
        if not self.priority:
            raise NetworkError("priority must be a non-empty class name")
        if self.message_length < 1:
            raise NetworkError("message_length must be positive")
        if self.arrival_time < 0:
            raise NetworkError("arrival_time must be non-negative")
        if self.message is not None:
            if not all(ch in "01" for ch in self.message):
                raise NetworkError("message must be a '0'/'1' bitstring")
            if len(self.message) != self.message_length:
                raise NetworkError(
                    f"message holds {len(self.message)} bits but message_length "
                    f"is {self.message_length}"
                )
        if self.scenario is not None:
            from repro.attacks.scenarios import as_schedule

            try:
                as_schedule(self.scenario)
            except Exception as error:
                raise NetworkError(f"invalid session scenario: {error}") from error


@dataclass(frozen=True)
class SessionParameters:
    """Protocol-level parameters shared by every hop of every session.

    The per-hop quantum channel always comes from the link; these are the
    remaining :class:`~repro.protocol.config.ProtocolConfig` tunables a
    network operator would fix fleet-wide.  ``simulator_backend`` selects
    every hop's pair-state engine (``"auto"`` fast paths by default — the
    dominant lever behind network-throughput performance; ``"dense"``
    reference; ``"stabilizer"`` statically verified Pauli physics per hop).
    """

    identity_pairs: int = 2
    check_pairs_per_round: int = 32
    num_check_bits: int | None = None
    authentication_tolerance: float = 0.25
    check_bit_tolerance: float = 0.15
    simulator_backend: str = "auto"

    def check_bits_for(self, message_length: int) -> int:
        """Check-bit count for a message (auto: the `ProtocolConfig.default` rule)."""
        return ProtocolConfig.default_check_bits(message_length, self.num_check_bits)

    def pairs_per_hop(self, message_length: int) -> int:
        """EPR pairs one hop consumes: ``N + 2l + 2d`` (qubits held per endpoint)."""
        message_pairs = (message_length + self.check_bits_for(message_length)) // 2
        return (
            message_pairs
            + 2 * self.identity_pairs
            + 2 * self.check_pairs_per_round
        )

    def hop_config(
        self,
        message_length: int,
        channel: Any,
        seed: int,
        memory_decoherence: Any = None,
        memory_hold_time: float = 0.0,
    ) -> ProtocolConfig:
        """Build the :class:`ProtocolConfig` for one hop."""
        return ProtocolConfig(
            message_length=message_length,
            num_check_bits=self.check_bits_for(message_length),
            identity_pairs=self.identity_pairs,
            check_pairs_per_round=self.check_pairs_per_round,
            authentication_tolerance=self.authentication_tolerance,
            check_bit_tolerance=self.check_bit_tolerance,
            channel=channel,
            memory_decoherence=memory_decoherence,
            memory_hold_time=memory_hold_time,
            seed=seed,
            simulator_backend=self.simulator_backend,
        )


@dataclass
class HopReport:
    """Compact, JSON-friendly record of one hop's protocol session."""

    sender: str
    receiver: str
    success: bool
    abort_reason: str
    chsh_round1: float | None = None
    chsh_round2: float | None = None
    check_bit_error_rate: float | None = None
    message_bit_error_rate: float | None = None
    attack: str | None = None

    def summary(self) -> dict[str, Any]:
        return {
            "sender": self.sender,
            "receiver": self.receiver,
            "success": self.success,
            "abort_reason": self.abort_reason,
            "chsh_round1": self.chsh_round1,
            "chsh_round2": self.chsh_round2,
            "check_bit_error_rate": self.check_bit_error_rate,
            "message_bit_error_rate": self.message_bit_error_rate,
            "attack": self.attack,
        }


@dataclass
class SessionOutcome:
    """The quantum-execution result of one admitted session.

    Attributes
    ----------
    session_id:
        The request's id.
    status:
        ``"delivered"`` (exact), ``"delivered_with_errors"`` (all hops
        succeeded but relayed bit errors corrupted the message), or
        ``"aborted"`` (a hop's security machinery fired).
    failed_hop:
        Index of the aborting hop (None unless aborted).
    abort_reason:
        The aborting hop's :class:`~repro.protocol.results.AbortReason` value.
    hop_reports:
        One :class:`HopReport` per executed hop, in route order.
    end_to_end_error_rate:
        Fraction of delivered bits differing from the sent message (None if
        aborted before delivery).
    sent_message, delivered_message:
        Bitstrings for auditing (delivered is None on abort).
    """

    session_id: int
    status: str
    failed_hop: int | None = None
    abort_reason: str | None = None
    hop_reports: list[HopReport] = field(default_factory=list)
    end_to_end_error_rate: float | None = None
    sent_message: str = ""
    delivered_message: str | None = None

    @property
    def delivered(self) -> bool:
        """True if the message reached the target (possibly with bit errors)."""
        return self.status in (STATUS_DELIVERED, STATUS_DELIVERED_WITH_ERRORS)

    def summary(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "status": self.status,
            "failed_hop": self.failed_hop,
            "abort_reason": self.abort_reason,
            "hops": [report.summary() for report in self.hop_reports],
            "end_to_end_error_rate": self.end_to_end_error_rate,
            "sent_message": self.sent_message,
            "delivered_message": self.delivered_message,
        }


def run_session(
    topology: NetworkTopology,
    route: Route,
    request: SessionRequest,
    params: SessionParameters,
    seed: int,
    hold_time: float = 0.0,
    channel_overrides: "tuple[Any, ...] | None" = None,
) -> SessionOutcome:
    """Execute one session hop by hop along *route* (trusted-relay forwarding).

    Parameters
    ----------
    topology:
        The network (read-only during execution; safe to share across
        threads).
    route:
        The path selected by the scheduler.
    request:
        The traffic request being served.
    params:
        Fleet-wide protocol parameters.
    seed:
        Deterministic session seed (the scheduler derives it with
        :func:`repro.experiments.sweep.point_seed`); message bits, per-hop
        protocol randomness and attack randomness all flow from it.
    hold_time:
        Memory time units the source held its qubits while the session was
        queued; applied as storage hold on the first hop.
    channel_overrides:
        Optional per-hop quantum channels (route order), replacing each
        link's static channel.  The dynamics scheduler snapshots drifted
        channel conditions at admission time and passes them here, which
        keeps the topology itself immutable during (possibly threaded)
        execution.  ``None`` uses the links' own channels.
    """
    if route.source != request.source or route.target != request.target:
        raise NetworkError(
            f"route {route.nodes} does not serve request "
            f"{request.source!r} -> {request.target!r}"
        )
    if channel_overrides is not None and len(channel_overrides) != route.num_hops:
        raise NetworkError(
            f"channel_overrides holds {len(channel_overrides)} channels for a "
            f"{route.num_hops}-hop route"
        )
    with telemetry.span(
        "network.session",
        "network",
        {
            "session_id": request.session_id,
            "source": request.source,
            "target": request.target,
            "hops": len(route.nodes) - 1,
        },
    ) as span:
        outcome = _run_hops(
            topology, route, request, params, seed, hold_time, channel_overrides
        )
        span.attributes["status"] = outcome.status
    return outcome


def _run_hops(
    topology: NetworkTopology,
    route: Route,
    request: SessionRequest,
    params: SessionParameters,
    seed: int,
    hold_time: float,
    channel_overrides: "tuple[Any, ...] | None" = None,
) -> SessionOutcome:
    rng = as_rng(int(seed))
    if request.message is not None:
        message: Bits = bitstring_to_bits(request.message)
        # Keep the derivation sequence identical to the random-message path
        # so every downstream per-hop seed is unchanged by supplying a
        # message explicitly.
        derive_rng(rng, "message")
    else:
        message = random_bits(request.message_length, rng=derive_rng(rng, "message"))

    outcome = SessionOutcome(
        session_id=request.session_id,
        status=STATUS_DELIVERED,
        sent_message=bits_to_str(message),
    )
    schedule = None
    if request.scenario is not None:
        from repro.attacks.scenarios import as_schedule

        schedule = as_schedule(request.scenario)

    current = message
    hops = list(route.hops())
    for index, (sender, receiver) in enumerate(hops):
        link = topology.link(sender, receiver)
        hop_seed = int(derive_rng(rng, "hop", index).integers(0, 2**31 - 1))

        attack = None
        for endpoint in (sender, receiver):
            node = topology.node(endpoint)
            if node.compromised:
                attack = node.attack_factory(derive_rng(rng, "attack", index))
                break
        if attack is None and schedule is not None:
            # The request-level adversary attacks the hops its target layers
            # select.  The derivation tag differs from the compromised-node
            # path so the two adversary sources stay independent streams.
            hop_schedule = schedule.subschedule_for_hop(index, len(hops))
            if hop_schedule is not None:
                attack = hop_schedule.build(derive_rng(rng, "scenario", index))

        channel = (
            channel_overrides[index]
            if channel_overrides is not None
            else link.quantum_channel
        )
        config = params.hop_config(
            message_length=len(current),
            channel=channel,
            seed=hop_seed,
            memory_decoherence=topology.node(sender).memory_decoherence,
            memory_hold_time=hold_time if index == 0 else 0.0,
        )
        with telemetry.span(
            "network.hop",
            "network",
            {"hop": index, "sender": sender, "receiver": receiver},
        ) as hop_span:
            result = UADIQSDCProtocol(config, attack=attack).run(current)
            hop_span.attributes["success"] = result.success

        outcome.hop_reports.append(
            HopReport(
                sender=sender,
                receiver=receiver,
                success=result.success,
                abort_reason=result.abort_reason.value,
                chsh_round1=None if result.chsh_round1 is None else result.chsh_round1.value,
                chsh_round2=None if result.chsh_round2 is None else result.chsh_round2.value,
                check_bit_error_rate=result.check_bit_error_rate,
                message_bit_error_rate=result.message_bit_error_rate,
                attack=None if attack is None else getattr(attack, "name", "attack"),
            )
        )
        if not result.success:
            outcome.status = STATUS_ABORTED
            outcome.failed_hop = index
            outcome.abort_reason = result.abort_reason.value
            return outcome
        current = result.delivered_message

    errors = hamming_distance(current, message) / len(message)
    outcome.end_to_end_error_rate = errors
    outcome.delivered_message = bits_to_str(current)
    if errors > 0:
        outcome.status = STATUS_DELIVERED_WITH_ERRORS
    return outcome
