"""Network topology: named nodes joined by quantum + classical links.

The paper evaluates one Alice–Bob session over a single emulated channel; a
deployed QSDC service is a *network* — many users, relays and links, each
link with its own length and noise.  :class:`NetworkTopology` is the static
description layer of the network subsystem: an undirected graph of
:class:`NetworkNode` objects joined by :class:`NetworkLink` objects, where
every link carries a private :class:`~repro.channel.quantum_channel.QuantumChannel`
(the hop's noise model) and a logged
:class:`~repro.channel.classical_channel.ClassicalChannel` (the hop's control
plane).

Nodes model the *resources* of a network site: a qubit capacity (how many
EPR-pair halves the site can hold at once), an optional storage-decoherence
channel for its quantum memory, and an optional attack factory marking the
node as compromised (see :mod:`repro.network.sessions`).

Standard generators build the usual evaluation shapes — line, star, ring,
grid and random geometric graphs — with a pluggable ``channel_factory`` so
every edge's channel can depend on its length.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.channel.classical_channel import ClassicalChannel
from repro.channel.memory import QuantumMemory
from repro.channel.quantum_channel import IdentityChainChannel, QuantumChannel
from repro.exceptions import NetworkError
from repro.quantum.channels import KrausChannel
from repro.utils.rng import as_rng

__all__ = [
    "NetworkNode",
    "NetworkLink",
    "NetworkTopology",
    "line_topology",
    "ring_topology",
    "star_topology",
    "grid_topology",
    "random_geometric_topology",
    "build_topology",
]

#: Signature of per-edge channel factories: ``factory(length) -> QuantumChannel``.
ChannelFactory = Callable[[float], QuantumChannel]


def _default_channel_factory(length: float) -> QuantumChannel:
    """The paper's η=10 identity-gate channel, independent of edge length."""
    return IdentityChainChannel(eta=10)


@dataclass
class NetworkNode:
    """One network site (user terminal or trusted relay).

    Attributes
    ----------
    name:
        Unique node identifier.
    qubit_capacity:
        Maximum number of EPR-pair halves the node can hold simultaneously
        (``None`` = unlimited).  The scheduler enforces this during admission.
    memory_decoherence:
        Optional single-qubit Kraus channel its quantum memory applies per
        stored time unit (``None`` = ideal memory, the paper's assumption).
    attack_factory:
        When set, the node is *compromised*: sessions traversing it run
        under ``attack_factory(rng)`` — any :class:`repro.attacks.base.Attack`
        builder (e.g. a malicious relay mounting intercept-resend on the
        pairs it forwards).
    position:
        Optional 2-D coordinates (set by the geometric generator).
    """

    name: str
    qubit_capacity: int | None = None
    memory_decoherence: KrausChannel | None = None
    attack_factory: Callable[..., Any] | None = None
    position: tuple[float, float] | None = None

    def __post_init__(self):
        if not self.name:
            raise NetworkError("nodes need a non-empty name")
        if self.qubit_capacity is not None and self.qubit_capacity < 1:
            raise NetworkError(
                f"node {self.name!r}: qubit_capacity must be positive or None"
            )
        if self.memory_decoherence is not None and self.memory_decoherence.num_qubits != 1:
            raise NetworkError(
                f"node {self.name!r}: memory decoherence must be a single-qubit channel"
            )

    @property
    def compromised(self) -> bool:
        """True if the node mounts an attack on sessions traversing it."""
        return self.attack_factory is not None

    def spawn_memory(self) -> QuantumMemory:
        """A fresh quantum memory with this node's storage-decoherence model."""
        return QuantumMemory(self.memory_decoherence)


@dataclass
class NetworkLink:
    """An undirected edge: one quantum channel plus one classical channel.

    Attributes
    ----------
    node_a, node_b:
        Endpoint names (stored in sorted order so ``(u, v)`` and ``(v, u)``
        address the same link).
    quantum_channel:
        The hop's transmission noise model.
    classical_channel:
        The hop's authenticated control plane; the scheduler logs
        reservation/release announcements here, so the control traffic of a
        simulation can be audited per link.
    length:
        Edge length in arbitrary distance units (euclidean distance for the
        geometric generator, 1.0 elsewhere).
    """

    node_a: str
    node_b: str
    quantum_channel: QuantumChannel
    classical_channel: ClassicalChannel = field(default_factory=ClassicalChannel)
    length: float = 1.0

    def __post_init__(self):
        if self.node_a == self.node_b:
            raise NetworkError(f"self-loop on node {self.node_a!r}")
        if self.length < 0:
            raise NetworkError("link length must be non-negative")
        if self.node_b < self.node_a:
            self.node_a, self.node_b = self.node_b, self.node_a

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying the link."""
        return (self.node_a, self.node_b)

    def other(self, name: str) -> str:
        """The endpoint opposite *name*."""
        if name == self.node_a:
            return self.node_b
        if name == self.node_b:
            return self.node_a
        raise NetworkError(f"node {name!r} is not an endpoint of link {self.key}")


class NetworkTopology:
    """An undirected multi-user network graph (no parallel edges)."""

    def __init__(self, name: str = "network"):
        self.name = name
        self._nodes: dict[str, NetworkNode] = {}
        self._links: dict[tuple[str, str], NetworkLink] = {}

    # -- construction ----------------------------------------------------------------
    def add_node(self, node: "NetworkNode | str", **attributes: Any) -> NetworkNode:
        """Add a node (by object or by name plus :class:`NetworkNode` kwargs)."""
        if isinstance(node, str):
            node = NetworkNode(name=node, **attributes)
        elif attributes:
            raise NetworkError("pass attributes only when adding a node by name")
        if node.name in self._nodes:
            raise NetworkError(f"node {node.name!r} already exists")
        self._nodes[node.name] = node
        return node

    def add_link(
        self,
        node_a: str,
        node_b: str,
        quantum_channel: QuantumChannel | None = None,
        length: float = 1.0,
    ) -> NetworkLink:
        """Join two existing nodes (default channel: the paper's η=10 chain)."""
        for name in (node_a, node_b):
            if name not in self._nodes:
                raise NetworkError(f"cannot link unknown node {name!r}")
        link = NetworkLink(
            node_a=node_a,
            node_b=node_b,
            quantum_channel=quantum_channel or _default_channel_factory(length),
            length=length,
        )
        if link.key in self._links:
            raise NetworkError(f"link {link.key} already exists")
        self._links[link.key] = link
        return link

    def compromise(
        self, name: str, attack_factory: Callable[..., Any]
    ) -> NetworkNode:
        """Mark *name* as compromised: sessions through it run under the attack."""
        node = self.node(name)
        if not callable(attack_factory):
            raise NetworkError("attack_factory must be callable (rng -> Attack)")
        node.attack_factory = attack_factory
        return node

    # -- lookup ----------------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        """All node names in insertion order."""
        return list(self._nodes)

    @property
    def links(self) -> list[NetworkLink]:
        """All links in insertion order."""
        return list(self._links.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def node(self, name: str) -> NetworkNode:
        """Look up a node by name."""
        if name not in self._nodes:
            raise NetworkError(f"unknown node {name!r}; known: {sorted(self._nodes)}")
        return self._nodes[name]

    def has_link(self, node_a: str, node_b: str) -> bool:
        """True if an edge joins the two nodes."""
        return tuple(sorted((node_a, node_b))) in self._links

    def link(self, node_a: str, node_b: str) -> NetworkLink:
        """Look up the link joining two nodes."""
        key = tuple(sorted((node_a, node_b)))
        if key not in self._links:
            raise NetworkError(f"no link between {node_a!r} and {node_b!r}")
        return self._links[key]

    def neighbors(self, name: str) -> list[str]:
        """Sorted neighbour names of *name*."""
        self.node(name)
        return sorted(
            link.other(name) for link in self._links.values() if name in link.key
        )

    def compromised_nodes(self) -> list[str]:
        """Names of every compromised node, in insertion order."""
        return [name for name, node in self._nodes.items() if node.compromised]

    # -- analysis --------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True if every node is reachable from every other node."""
        if not self._nodes:
            return True
        seen = {next(iter(self._nodes))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"NetworkTopology(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )


# -- generators ------------------------------------------------------------------------
def _new_topology(
    name: str, num_nodes: int, node_kwargs: dict[str, Any]
) -> NetworkTopology:
    if num_nodes < 2:
        raise NetworkError("a network needs at least two nodes")
    topology = NetworkTopology(name=name)
    for index in range(num_nodes):
        topology.add_node(f"n{index}", **node_kwargs)
    return topology


def line_topology(
    num_nodes: int,
    channel_factory: ChannelFactory | None = None,
    **node_kwargs: Any,
) -> NetworkTopology:
    """A chain ``n0 — n1 — … — n{k-1}`` (every interior node is a relay)."""
    factory = channel_factory or _default_channel_factory
    topology = _new_topology(f"line{num_nodes}", num_nodes, node_kwargs)
    for index in range(num_nodes - 1):
        topology.add_link(f"n{index}", f"n{index + 1}", factory(1.0))
    return topology


def ring_topology(
    num_nodes: int,
    channel_factory: ChannelFactory | None = None,
    **node_kwargs: Any,
) -> NetworkTopology:
    """A cycle: the line topology plus the closing ``n{k-1} — n0`` edge."""
    if num_nodes < 3:
        raise NetworkError("a ring needs at least three nodes")
    factory = channel_factory or _default_channel_factory
    topology = _new_topology(f"ring{num_nodes}", num_nodes, node_kwargs)
    for index in range(num_nodes):
        topology.add_link(f"n{index}", f"n{(index + 1) % num_nodes}", factory(1.0))
    return topology


def star_topology(
    num_nodes: int,
    channel_factory: ChannelFactory | None = None,
    **node_kwargs: Any,
) -> NetworkTopology:
    """A hub-and-spoke graph: ``n0`` is the hub relay, all others are leaves."""
    factory = channel_factory or _default_channel_factory
    topology = _new_topology(f"star{num_nodes}", num_nodes, node_kwargs)
    for index in range(1, num_nodes):
        topology.add_link("n0", f"n{index}", factory(1.0))
    return topology


def grid_topology(
    rows: int,
    cols: int,
    channel_factory: ChannelFactory | None = None,
    **node_kwargs: Any,
) -> NetworkTopology:
    """A ``rows × cols`` lattice with 4-neighbour connectivity.

    Nodes are named ``n{r}_{c}``; this is the workhorse shape of the
    ``network_scale`` experiment (metro-network-like path diversity).
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise NetworkError("a grid needs at least two nodes")
    factory = channel_factory or _default_channel_factory
    topology = NetworkTopology(name=f"grid{rows}x{cols}")
    for row in range(rows):
        for col in range(cols):
            topology.add_node(f"n{row}_{col}", **node_kwargs)
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                topology.add_link(f"n{row}_{col}", f"n{row}_{col + 1}", factory(1.0))
            if row + 1 < rows:
                topology.add_link(f"n{row}_{col}", f"n{row + 1}_{col}", factory(1.0))
    return topology


def random_geometric_topology(
    num_nodes: int,
    radius: float = 0.4,
    rng: Any = None,
    channel_factory: ChannelFactory | None = None,
    **node_kwargs: Any,
) -> NetworkTopology:
    """Nodes scattered uniformly in the unit square, linked when within *radius*.

    Link lengths are euclidean distances, so a length-aware
    ``channel_factory`` makes edge noise grow with distance.  The graph is
    deterministic for a given seed.  If the radius graph comes out
    disconnected, the closest pair of nodes across components is linked until
    the graph is connected (deterministic augmentation), so the generator
    always returns a usable network.
    """
    if num_nodes < 2:
        raise NetworkError("a network needs at least two nodes")
    if radius <= 0:
        raise NetworkError("radius must be positive")
    factory = channel_factory or _default_channel_factory
    generator = as_rng(rng)
    topology = NetworkTopology(name=f"geometric{num_nodes}")
    positions: dict[str, tuple[float, float]] = {}
    for index in range(num_nodes):
        position = (float(generator.random()), float(generator.random()))
        positions[f"n{index}"] = position
        topology.add_node(f"n{index}", position=position, **node_kwargs)

    def distance(a: str, b: str) -> float:
        (ax, ay), (bx, by) = positions[a], positions[b]
        return math.hypot(ax - bx, ay - by)

    names = list(positions)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            separation = distance(a, b)
            if separation <= radius:
                topology.add_link(a, b, factory(separation), length=separation)

    while not topology.is_connected():
        component = {names[0]}
        frontier = [names[0]]
        while frontier:
            for neighbor in topology.neighbors(frontier.pop()):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        candidates = [
            (distance(a, b), a, b)
            for a in sorted(component)
            for b in names
            if b not in component
        ]
        separation, a, b = min(candidates)
        topology.add_link(a, b, factory(separation), length=separation)
    return topology


def build_topology(kind: str, **kwargs: Any) -> NetworkTopology:
    """Build a topology by generator name (used by the experiment CLI)."""
    generators: dict[str, Callable[..., NetworkTopology]] = {
        "line": line_topology,
        "ring": ring_topology,
        "star": star_topology,
        "grid": grid_topology,
        "geometric": random_geometric_topology,
    }
    if kind not in generators:
        raise NetworkError(f"unknown topology kind {kind!r}; known: {sorted(generators)}")
    return generators[kind](**kwargs)
