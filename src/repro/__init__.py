"""repro — reproduction of the UA-DI-QSDC protocol (Das, Basu, Paul, Rao, 2024).

The package is organised in layers:

* :mod:`repro.quantum` — from-scratch quantum simulation substrate
  (statevectors, density matrices, circuits, noise channels, CHSH).
* :mod:`repro.device` — NISQ device model emulating ``ibm_brisbane``.
* :mod:`repro.channel` — quantum (η-identity-gate) and classical channels.
* :mod:`repro.protocol` — the paper's contribution: the user-authenticated
  device-independent QSDC protocol.
* :mod:`repro.attacks` — the paper's five attack models plus the
  adversarial scenario engine (declarative strategy × strength ×
  schedule × layer specs, composable multi-adversary schedules).
* :mod:`repro.baselines` — prior DI-QSDC protocols compared in Table I.
* :mod:`repro.network` — multi-node QSDC network simulation (topologies,
  routing, trusted-relay sessions, discrete-event scheduling, metrics).
* :mod:`repro.api` — the service-level public API: the
  :class:`~repro.api.service.MessagingService` facade, payload codecs,
  fragmentation and the pluggable local/batch/network backends.
* :mod:`repro.runtime` — the concurrent delivery runtime: worker-pool and
  asyncio engines over the service facade, admission control with
  block/reject/shed backpressure, deterministic replay, and the
  sustained-load harness.
* :mod:`repro.analysis` — fidelity, QBER, CHSH statistics.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.

Stable public surface
---------------------
The names below are re-exported lazily at package level (importing
:mod:`repro` stays cheap; heavy submodules load on first attribute access)
and constitute the supported API:

* ``MessagingService``, ``ServiceConfig``, ``DeliveryReport`` — the
  service facade (see :mod:`repro.api`);
* ``ProtocolConfig``, ``UADIQSDCProtocol``, ``ProtocolResult`` — the
  single-session research surface (see :mod:`repro.protocol`);
* ``AttackScenario``, ``ScenarioSchedule`` — the declarative adversarial
  scenario engine (see :mod:`repro.attacks.scenarios`);
* ``DeliveryEngine``, ``AsyncDeliveryEngine`` — the concurrent delivery
  runtime (see :mod:`repro.runtime`);
* ``RunArtifact``, ``Trajectory``, ``compare_trajectories`` — the
  run-artifact pipeline and benchmark-trajectory regression gate (see
  :mod:`repro.artifacts` and :mod:`repro.analysis.regression`);
* the exception hierarchy rooted at ``ReproError``.

Quickstart::

    from repro import MessagingService, ServiceConfig

    service = MessagingService(ServiceConfig.paper_default(seed=7))
    report = service.send("any payload — text, bytes or bits")
    assert report.success and report.delivered_payload is not None

The lower-level entry point remains available and unchanged::

    from repro.protocol import ProtocolConfig, UADIQSDCProtocol

    config = ProtocolConfig.default(message_length=16, seed=7)
    result = UADIQSDCProtocol(config).run("1011001110001111")
    assert result.delivered_message_string == "1011001110001111"
"""

from repro.exceptions import (
    AuthenticationFailure,
    ProtocolAbort,
    ReproError,
    SecurityCheckFailure,
)

__version__ = "1.0.0"

#: Lazily re-exported public names -> defining module.  Keeping these lazy
#: means ``import repro`` does not pull in numpy-heavy protocol/simulation
#: modules until they are actually used.
_LAZY_EXPORTS = {
    "MessagingService": "repro.api.service",
    "ServiceConfig": "repro.api.config",
    "DeliveryReport": "repro.api.report",
    "ProtocolConfig": "repro.protocol.config",
    "UADIQSDCProtocol": "repro.protocol.runner",
    "ProtocolResult": "repro.protocol.results",
    "AttackScenario": "repro.attacks.scenarios",
    "ScenarioSchedule": "repro.attacks.scenarios",
    "DeliveryEngine": "repro.runtime.engine",
    "AsyncDeliveryEngine": "repro.runtime.engine",
    "RunArtifact": "repro.artifacts.schema",
    "Trajectory": "repro.artifacts.trajectory",
    "compare_trajectories": "repro.analysis.regression",
}

__all__ = [
    "AuthenticationFailure",
    "ProtocolAbort",
    "ReproError",
    "SecurityCheckFailure",
    "__version__",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    """Resolve the lazy re-exports on first access (PEP 562)."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so subsequent accesses skip this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
