"""repro — reproduction of the UA-DI-QSDC protocol (Das, Basu, Paul, Rao, 2024).

The package is organised in layers:

* :mod:`repro.quantum` — from-scratch quantum simulation substrate
  (statevectors, density matrices, circuits, noise channels, CHSH).
* :mod:`repro.device` — NISQ device model emulating ``ibm_brisbane``.
* :mod:`repro.channel` — quantum (η-identity-gate) and classical channels.
* :mod:`repro.protocol` — the paper's contribution: the user-authenticated
  device-independent QSDC protocol.
* :mod:`repro.attacks` — the five attack models analysed in the paper.
* :mod:`repro.baselines` — prior DI-QSDC protocols compared in Table I.
* :mod:`repro.network` — multi-node QSDC network simulation (topologies,
  routing, trusted-relay sessions, discrete-event scheduling, metrics).
* :mod:`repro.analysis` — fidelity, QBER, CHSH statistics.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.

Quickstart::

    from repro.protocol import ProtocolConfig, UADIQSDCProtocol

    config = ProtocolConfig.default(message_length=16, seed=7)
    result = UADIQSDCProtocol(config).run("1011001110001111")
    assert result.delivered_message == "1011001110001111"
"""

from repro.exceptions import (
    AuthenticationFailure,
    ProtocolAbort,
    ReproError,
    SecurityCheckFailure,
)

__version__ = "1.0.0"

__all__ = [
    "AuthenticationFailure",
    "ProtocolAbort",
    "ReproError",
    "SecurityCheckFailure",
    "__version__",
]
