"""Experiment ``mitigation``: error mitigation on the Fig. 3 channel (paper §IV-B).

The paper closes its evaluation by pointing to quantum error mitigation as the
way to keep the protocol reliable over longer noisy channels without the qubit
overhead of error-correcting codes.  This experiment implements that outlook:
for a set of channel lengths it measures the raw accuracy of Bob's Bell
measurement, the accuracy after readout-error mitigation, and the accuracy
estimated by zero-noise extrapolation (channel folding), quantifying how far
each technique pushes the usable channel length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.artifacts.metrics import register_metrics
from repro.device.backend import NoisyBackend
from repro.device.device_model import DeviceModel
from repro.exceptions import ExperimentError
from repro.experiments.emulation import (
    MESSAGE_SYMBOLS,
    decode_distribution_to_messages,
    run_message_transfer_raw,
)
from repro.mitigation.readout import ReadoutMitigator
from repro.mitigation.zne import ZeroNoiseExtrapolator, fold_channel_length

__all__ = ["MitigationPoint", "MitigationStudyResult", "run_mitigation_study"]


@dataclass(frozen=True)
class MitigationPoint:
    """Accuracy at one channel length, raw and under each mitigation technique."""

    eta: int
    raw_accuracy: float
    readout_mitigated_accuracy: float
    zne_accuracy: float
    zne_model: str


@dataclass
class MitigationStudyResult:
    """Full mitigation study: one :class:`MitigationPoint` per channel length."""

    shots: int
    messages: tuple[str, ...]
    noise_scales: tuple[float, ...]
    backend_name: str
    points: list[MitigationPoint] = field(default_factory=list)

    def improvement(self, technique: str = "readout") -> float:
        """Mean accuracy gain of a technique over the raw measurement."""
        if not self.points:
            raise ExperimentError("the study produced no points")
        if technique == "readout":
            gains = [p.readout_mitigated_accuracy - p.raw_accuracy for p in self.points]
        elif technique == "zne":
            gains = [p.zne_accuracy - p.raw_accuracy for p in self.points]
        else:
            raise ExperimentError(f"unknown technique {technique!r}")
        return sum(gains) / len(gains)


def run_mitigation_study(
    etas: Sequence[int] = (100, 300, 500, 700),
    shots: int = 1024,
    messages: Sequence[str] = MESSAGE_SYMBOLS,
    noise_scales: Sequence[float] = (1.0, 1.5, 2.0, 3.0),
    device: DeviceModel | None = None,
    zne_model: str = "exponential",
    seed: int | None = 2025,
) -> MitigationStudyResult:
    """Measure raw, readout-mitigated and zero-noise-extrapolated accuracies.

    Parameters
    ----------
    etas:
        Channel lengths to study.
    shots:
        Shots per (η, message, noise scale) combination.
    messages:
        Message symbols averaged at each point.
    noise_scales:
        Channel-folding factors used for the zero-noise extrapolation
        (must include 1.0, the unfolded channel).
    device:
        Device model; defaults to ``ibm_brisbane``.
    zne_model:
        Extrapolation model (``linear``, ``quadratic`` or ``exponential``).
    """
    if shots < 1:
        raise ExperimentError("shots must be positive")
    if not messages:
        raise ExperimentError("at least one message symbol is required")
    scales = tuple(float(s) for s in noise_scales)
    if 1.0 not in scales:
        raise ExperimentError("noise_scales must include the unfolded scale 1.0")

    backend = NoisyBackend(device or DeviceModel.ibm_brisbane(), seed=seed)
    mitigator = ReadoutMitigator.from_noise_model(backend.noise_model, qubits=[0, 1])
    extrapolator = ZeroNoiseExtrapolator(model=zne_model)

    result = MitigationStudyResult(
        shots=shots,
        messages=tuple(messages),
        noise_scales=scales,
        backend_name=backend.name,
    )
    for eta in etas:
        raw_correct = 0.0
        mitigated_correct = 0.0
        scale_accuracies = {scale: 0.0 for scale in scales}
        for message in messages:
            for scale in scales:
                folded_eta = fold_channel_length(int(eta), scale)
                counts = run_message_transfer_raw(message, folded_eta, backend, shots=shots)
                decoded = decode_distribution_to_messages(
                    {outcome: count / shots for outcome, count in counts.items()}
                )
                accuracy = decoded.get(message, 0.0)
                scale_accuracies[scale] += accuracy / len(messages)
                if scale == 1.0:
                    raw_correct += accuracy / len(messages)
                    mitigated = decode_distribution_to_messages(mitigator.apply(counts))
                    mitigated_correct += mitigated.get(message, 0.0) / len(messages)
        extrapolation = extrapolator.extrapolate(
            list(scale_accuracies), list(scale_accuracies.values())
        )
        result.points.append(
            MitigationPoint(
                eta=int(eta),
                raw_accuracy=raw_correct,
                readout_mitigated_accuracy=mitigated_correct,
                zne_accuracy=extrapolation.zero_noise_value,
                zne_model=extrapolation.model,
            )
        )
    return result


@register_metrics(MitigationStudyResult)
def mitigation_artifact_metrics(result: MitigationStudyResult) -> dict:
    """Artifact metrics for the mitigation study: per-η accuracies + gains."""
    metrics = {
        "readout_gain": result.improvement("readout"),
        "zne_gain": result.improvement("zne"),
    }
    for point in result.points:
        metrics[f"raw_accuracy_eta{point.eta}"] = point.raw_accuracy
        metrics[f"readout_accuracy_eta{point.eta}"] = point.readout_mitigated_accuracy
        metrics[f"zne_accuracy_eta{point.eta}"] = point.zne_accuracy
    return metrics
