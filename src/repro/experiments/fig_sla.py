"""Experiment ``fig_sla``: service-level objectives under evolving conditions.

``network_scale`` asks how a frozen network behaves under one load;
``fig_load`` stresses the delivery runtime's queues.  This experiment asks
the operator's *SLA* question: what can N users at offered load L expect
from topology T when the environment itself is moving — channels drifting,
devices aging, links and nodes failing and recovering — and where does the
service break?  It sweeps offered load × condition profile on one topology
with three QoS classes (``control``/``interactive``/``bulk``, weighted-fair
admission) and reports, per profile:

* the **goodput curve** (delivered bits per second versus offered load) and
  its **knee** — the first load whose goodput efficiency falls below half
  the light-load efficiency, i.e. where adding traffic stops buying
  delivery;
* **per-class latency percentiles** (p50/p95/p99 of arrival-to-finish of
  delivered sessions), showing what the weighted-fair scheduler protects as
  the network saturates;
* the **outage-tail decomposition** — why the non-delivered sessions were
  lost, split into scheduling losses (no route, capacity exhaustion,
  patience expiry, outage-blocked expiry) and quantum losses (per abort
  reason), plus how many sessions were re-routed around failure windows.

Conditions come from the named profiles in
:mod:`repro.network.dynamics` (``static`` / ``drift`` / ``outage`` /
``drift_outage``), built deterministically from the experiment seed over the
sweep's own time horizon.  Every number is a pure function of ``seed``:
byte-identical across reruns and across serial/threaded execution (the
determinism tests run the quick configuration both ways over several seeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.artifacts.metrics import register_metrics
from repro.exceptions import ExperimentError
from repro.network.dynamics import CONDITION_PROFILES, condition_profile
from repro.network.metrics import NetworkResult
from repro.network.routing import RoutingTable
from repro.network.scheduler import (
    DEFAULT_QOS_WEIGHTS,
    PoissonTraffic,
    QoSPolicy,
    simulate_network,
)
from repro.network.sessions import SessionParameters
from repro.network.topology import NetworkTopology

__all__ = ["SLAPoint", "SLAStudyResult", "run_fig_sla"]

#: Default QoS class mix of the offered traffic (weights, not probabilities).
DEFAULT_PRIORITY_MIX = {"control": 1.0, "interactive": 1.0, "bulk": 2.0}

#: Goodput-efficiency fraction below which a load point is past the knee.
_KNEE_EFFICIENCY = 0.5


@dataclass
class SLAPoint:
    """One (condition profile, offered load) cell of the sweep."""

    profile: str
    load: float
    rate: float
    horizon: float
    result: NetworkResult

    @property
    def goodput_bits(self) -> float:
        """Delivered message bits per second of simulated time."""
        return self.result.throughput_bits

    @property
    def efficiency(self) -> float:
        """Goodput per unit of offered bit rate (1.0 = everything delivered)."""
        offered = self.rate * self.result.records[0].message_length if (
            self.result.records
        ) else 0.0
        return self.goodput_bits / offered if offered > 0 else 0.0


@dataclass
class SLAStudyResult:
    """Everything one ``fig_sla`` run produced."""

    topology_name: str
    num_nodes: int
    num_links: int
    message_length: int
    num_sessions: int
    loads: tuple[float, ...]
    profiles: tuple[str, ...]
    qos_weights: dict[str, float]
    priority_mix: dict[str, float]
    base_rate: float
    points: list[SLAPoint] = field(default_factory=list)

    def point(self, profile: str, load: float) -> SLAPoint:
        for point in self.points:
            if point.profile == profile and point.load == load:
                return point
        raise ExperimentError(f"no sweep point ({profile!r}, {load})")

    def goodput_curve(self, profile: str) -> list[tuple[float, float]]:
        """``(load, goodput_bits)`` pairs of one profile, in load order."""
        return [
            (point.load, point.goodput_bits)
            for point in self.points
            if point.profile == profile
        ]

    def goodput_knee(self, profile: str) -> float:
        """The profile's knee load: first load past half light-load efficiency.

        Falls back to the largest swept load when the curve never collapses
        (the service scaled through the whole sweep).
        """
        curve = [point for point in self.points if point.profile == profile]
        if not curve:
            raise ExperimentError(f"no sweep points for profile {profile!r}")
        reference = curve[0].efficiency
        if reference <= 0:
            return curve[0].load
        for point in curve:
            if point.efficiency < _KNEE_EFFICIENCY * reference:
                return point.load
        return curve[-1].load


def _mean_route_hops(topology: NetworkTopology) -> float:
    """Exact mean shortest-hop route length over all ordered node pairs."""
    names = list(topology.node_names)
    table = RoutingTable(topology)
    total = count = 0
    for source in names:
        for target in names:
            if source == target:
                continue
            total += max(1, len(table.route(source, target).nodes) - 1)
            count += 1
    return total / count if count else 1.0


def _capacity_rate(
    topology: NetworkTopology,
    params: SessionParameters,
    message_length: int,
    hop_overhead: float,
) -> float:
    """Rough sessions/second the network can serve (the load=1.0 anchor).

    A session reserves ``pairs`` qubits at each endpoint of each of its hops
    (≈ ``2 × pairs × hops`` total) for ``hops × (pairs × channel_delay +
    hop_overhead)`` seconds, so the sustainable concurrency is the total
    qubit capacity divided by the per-session footprint.  This is an
    estimate — the sweep's whole point is finding the *empirical* knee —
    but anchoring loads to it keeps one sweep meaningful across topologies.
    """
    pairs = params.pairs_per_hop(message_length)
    mean_hops = _mean_route_hops(topology)
    link = next(iter(topology.links))
    hop_time = pairs * link.quantum_channel.duration() + hop_overhead
    duration = max(mean_hops * hop_time, 1e-12)
    total_qubits = sum(
        topology.node(name).qubit_capacity or 0 for name in topology.node_names
    )
    if total_qubits <= 0:
        # Uncapped nodes: concurrency is unbounded, anchor on service time.
        return 8.0 / duration
    concurrency = max(1.0, total_qubits / (2.0 * pairs * mean_hops))
    return concurrency / duration


def run_fig_sla(
    rows: int = 3,
    cols: int = 3,
    num_sessions: int = 60,
    message_length: int = 8,
    identity_pairs: int = 1,
    check_pairs: int = 8,
    qubit_capacity: int = 192,
    loads: tuple[float, ...] = (0.5, 1.5, 3.0),
    profiles: tuple[str, ...] = ("static", "drift", "drift_outage"),
    priority_mix: dict[str, float] | None = None,
    qos_weights: dict[str, float] | None = None,
    hop_overhead: float = 1e-3,
    max_wait_factor: float = 8.0,
    executor: str = "thread",
    max_workers: int | None = None,
    seed: int = 13,
) -> SLAStudyResult:
    """Sweep offered load × condition profile on a ``rows×cols`` grid.

    ``loads`` are relative to the estimated service capacity (1.0 ≈ the
    network's sustainable session rate); ``max_wait_factor`` sets each
    point's patience window as a multiple of the mean session duration so
    rejection behaviour scales with the sweep.  ``profiles`` name entries of
    :data:`~repro.network.dynamics.CONDITION_PROFILES`.  All results are
    deterministic in *seed* whatever ``executor`` runs the sessions.
    """
    if num_sessions < 1:
        raise ExperimentError("num_sessions must be positive")
    if not loads or any(load <= 0 for load in loads):
        raise ExperimentError("loads must be positive")
    for profile in profiles:
        if profile not in CONDITION_PROFILES:
            raise ExperimentError(
                f"unknown condition profile {profile!r}; known: "
                f"{sorted(CONDITION_PROFILES)}"
            )
    from repro.experiments.network_scale import build_network

    params = SessionParameters(
        identity_pairs=identity_pairs, check_pairs_per_round=check_pairs
    )
    mix = dict(DEFAULT_PRIORITY_MIX if priority_mix is None else priority_mix)
    qos = QoSPolicy(weights=dict(DEFAULT_QOS_WEIGHTS if qos_weights is None else qos_weights))

    topology = build_network(
        topology="grid", rows=rows, cols=cols, qubit_capacity=qubit_capacity
    )
    base_rate = _capacity_rate(topology, params, message_length, hop_overhead)
    pairs = params.pairs_per_hop(message_length)
    link = next(iter(topology.links))
    mean_duration = _mean_route_hops(topology) * (
        pairs * link.quantum_channel.duration() + hop_overhead
    )

    points: list[SLAPoint] = []
    for profile_index, profile in enumerate(profiles):
        for load_index, load in enumerate(loads):
            rate = load * base_rate
            # Horizon covering arrivals plus a service tail, so condition
            # schedules span the whole run.
            horizon = 1.5 * num_sessions / rate + 4.0 * mean_duration
            point_seed = seed + 1009 * profile_index + 101 * load_index
            dynamics = condition_profile(profile, topology, seed=point_seed, horizon=horizon)
            traffic = PoissonTraffic(
                num_sessions=num_sessions,
                rate=rate,
                message_length=message_length,
                priority_mix=mix,
            )
            result = simulate_network(
                topology,
                traffic,
                session_params=params,
                hop_overhead=hop_overhead,
                max_wait=max_wait_factor * mean_duration,
                seed=point_seed,
                executor=executor,
                max_workers=max_workers,
                dynamics=dynamics,
                qos=qos,
            )
            points.append(
                SLAPoint(
                    profile=profile,
                    load=load,
                    rate=rate,
                    horizon=horizon,
                    result=result,
                )
            )

    return SLAStudyResult(
        topology_name=topology.name,
        num_nodes=topology.num_nodes,
        num_links=topology.num_links,
        message_length=message_length,
        num_sessions=num_sessions,
        loads=tuple(loads),
        profiles=tuple(profiles),
        qos_weights=dict(qos.weights),
        priority_mix=mix,
        base_rate=base_rate,
        points=points,
    )


@register_metrics(SLAStudyResult)
def sla_artifact_metrics(result: SLAStudyResult) -> dict:
    """Gated metrics: knees, per-point delivery and per-class percentiles.

    Every value is a deterministic function of the experiment seed (no
    wall-clock quantities), so the artifact pipeline can pin them.
    """
    metrics: dict[str, Any] = {
        "num_sessions": result.num_sessions,
        "base_rate_sessions_per_s": result.base_rate,
    }
    for profile in result.profiles:
        metrics[f"{profile}_knee_load"] = result.goodput_knee(profile)
    for point in result.points:
        prefix = f"{point.profile}_load{point.load:g}"
        network = point.result
        metrics[f"{prefix}_delivered"] = network.delivered_count
        metrics[f"{prefix}_aborted"] = network.aborted_count
        metrics[f"{prefix}_rejected"] = network.rejected_count
        metrics[f"{prefix}_goodput_bits_per_s"] = point.goodput_bits
        metrics[f"{prefix}_reroutes"] = network.reroute_count
        for reason, count in network.outage_decomposition().items():
            metrics[f"{prefix}_lost_{reason.replace(':', '_')}"] = count
        for class_name, percentiles in network.class_latency_percentiles().items():
            for label, value in percentiles.items():
                metrics[f"{prefix}_{class_name}_{label}"] = value
    return metrics
