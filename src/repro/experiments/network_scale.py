"""Experiment ``network_scale``: many users, many relays, concurrent traffic.

The paper evaluates one Alice–Bob session over one emulated channel; this
experiment exercises the :mod:`repro.network` subsystem at system scale: a
multi-node topology (grid by default), Poisson traffic between uniformly
random user pairs, per-node qubit-capacity admission control, hop-by-hop
trusted-relay forwarding (a full UA-DI-QSDC session per hop), and optional
compromised relays mounting intercept-resend attacks on the traffic they
forward.

The run is deterministic for a given seed — including across serial and
threaded execution — and reports the operator-facing aggregates defined in
:mod:`repro.network.metrics` (throughput, latency, abort/rejection rates,
QBER).  Quick kwargs simulate 50 sessions on a 3×3 grid in a few seconds;
the full-size defaults run 200 sessions on a 4×4 grid with a larger DI-check
budget per hop.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.artifacts.metrics import register_metrics
from repro.attacks.intercept_resend import InterceptResendAttack
from repro.exceptions import ExperimentError
from repro.network.metrics import NetworkResult
from repro.network.scheduler import PoissonTraffic, simulate_network
from repro.network.sessions import SessionParameters
from repro.network.topology import NetworkTopology, build_topology
from repro.quantum.channels import depolarizing_channel

__all__ = ["build_network", "run_network_scale"]


def build_network(
    topology: str = "grid",
    rows: int = 4,
    cols: int = 4,
    num_nodes: int | None = None,
    qubit_capacity: int | None = 256,
    memory_dephasing: float = 0.0,
    compromised: Sequence[str] = (),
    geometric_radius: float = 0.45,
    topology_seed: int = 0,
) -> NetworkTopology:
    """Build the experiment's topology (grid by default, others by name).

    ``num_nodes`` sizes the non-grid shapes; ``rows``/``cols`` size the grid.
    ``memory_dephasing`` > 0 gives every node a depolarizing storage memory,
    so queueing delay physically degrades held qubits.  ``compromised``
    names nodes that mount intercept-resend attacks on traversing sessions.
    """
    node_kwargs = {
        "qubit_capacity": qubit_capacity,
        "memory_decoherence": (
            depolarizing_channel(memory_dephasing) if memory_dephasing > 0 else None
        ),
    }
    if topology == "grid":
        network = build_topology("grid", rows=rows, cols=cols, **node_kwargs)
    elif topology == "geometric":
        network = build_topology(
            "geometric",
            num_nodes=num_nodes or rows * cols,
            radius=geometric_radius,
            rng=topology_seed,
            **node_kwargs,
        )
    else:
        network = build_topology(topology, num_nodes=num_nodes or rows * cols, **node_kwargs)
    for name in compromised:
        network.compromise(
            name, lambda rng: InterceptResendAttack(rng=rng)
        )
    return network


def run_network_scale(
    topology: str = "grid",
    rows: int = 4,
    cols: int = 4,
    num_nodes: int | None = None,
    num_sessions: int = 200,
    rate: float = 400.0,
    message_length: int = 16,
    identity_pairs: int = 2,
    check_pairs: int = 32,
    qubit_capacity: int | None = 256,
    memory_dephasing: float = 0.0,
    compromised: Sequence[str] = (),
    geometric_radius: float = 0.45,
    routing: str = "hops",
    max_wait: float | None = 0.25,
    executor: str = "thread",
    max_workers: int | None = None,
    seed: int = 7,
) -> NetworkResult:
    """Simulate concurrent QSDC traffic on a multi-node network.

    Parameters mirror the two layers: topology shape and node resources
    (``topology``/``rows``/``cols``/``qubit_capacity``/``memory_dephasing``/
    ``compromised``), traffic (``num_sessions``/``rate``/``message_length``),
    per-hop protocol budget (``identity_pairs``/``check_pairs`` — note the
    paper's d=256 DI-check budget is cut down here, which raises the
    statistical abort rate in exchange for CI-friendly runtimes), and
    scheduling (``routing``/``max_wait``/``executor``/``seed``).
    """
    if num_sessions < 1:
        raise ExperimentError("num_sessions must be positive")
    network = build_network(
        topology=topology,
        rows=rows,
        cols=cols,
        num_nodes=num_nodes,
        qubit_capacity=qubit_capacity,
        memory_dephasing=memory_dephasing,
        compromised=compromised,
        geometric_radius=geometric_radius,
        topology_seed=seed,
    )
    params = SessionParameters(
        identity_pairs=identity_pairs, check_pairs_per_round=check_pairs
    )
    traffic = PoissonTraffic(
        num_sessions=num_sessions, rate=rate, message_length=message_length
    )
    return simulate_network(
        network,
        traffic,
        routing_policy=routing,
        session_params=params,
        max_wait=max_wait,
        seed=seed,
        executor=executor,
        max_workers=max_workers,
    )


@register_metrics(NetworkResult)
def network_artifact_metrics(result: NetworkResult) -> dict:
    """Artifact metrics for network simulations: traffic, latency, quality."""
    return {
        "num_sessions": result.num_sessions,
        "delivered": result.delivered_count,
        "delivered_with_errors": result.count("delivered_with_errors"),
        "aborted": result.aborted_count,
        "rejected": result.rejected_count,
        "throughput_sessions_per_s": result.throughput_sessions,
        "throughput_bits_per_s": result.throughput_bits,
        "sim_time_s": result.sim_time,
        "mean_latency_s": result.mean_latency,
        "mean_wait_s": result.mean_wait,
        "abort_rate": result.abort_rate,
        "rejection_rate": result.rejection_rate,
        "mean_qber": result.mean_qber,
        "mean_chsh": result.mean_chsh,
        "mean_hops": result.mean_hops,
    }
