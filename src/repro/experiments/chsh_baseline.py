"""Experiment ``sec-chsh``: the DI security check on honest (noisy) channels.

Section II of the paper requires both security-check rounds to estimate
``S = 2√2 − ε > 2`` and notes that several hundred to a few thousand pairs are
needed for a statistically significant estimate.  This experiment quantifies
both statements on the implemented substrate:

* the sampled CHSH estimate and its spread as a function of the number of
  check pairs ``d`` (convergence study);
* the analytic and sampled CHSH value as a function of channel length η,
  including the channel length at which the honest protocol can no longer
  certify ``S > 2`` (the DI operating range of the protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.analysis.chsh_analysis import chsh_threshold_eta, chsh_vs_channel_length
from repro.analysis.statistics import chsh_standard_error, mean_and_confidence_interval
from repro.artifacts.metrics import register_metrics
from repro.channel.quantum_channel import IdentityChainChannel
from repro.exceptions import ExperimentError
from repro.protocol.chsh import CHSHSettings, DISecurityCheck
from repro.quantum.bell import BellState, bell_state, TSIRELSON_BOUND
from repro.utils.rng import as_rng

__all__ = ["CHSHConvergencePoint", "CHSHExperimentResult", "run_chsh_experiment"]


@dataclass
class CHSHConvergencePoint:
    """Sampled CHSH statistics for one check-pair budget ``d``."""

    num_pairs: int
    mean_value: float
    ci_low: float
    ci_high: float
    predicted_standard_error: float
    empirical_standard_deviation: float
    pass_rate: float


@dataclass
class CHSHExperimentResult:
    """Results of the DI-security-check characterisation."""

    eta: int
    convergence: list[CHSHConvergencePoint] = field(default_factory=list)
    chsh_vs_eta: list[tuple[int, float]] = field(default_factory=list)
    max_di_channel_length: int | None = None
    ideal_value: float = TSIRELSON_BOUND


def run_chsh_experiment(
    pair_budgets: Sequence[int] = (64, 128, 256, 512, 1024),
    repetitions: int = 20,
    eta: int = 10,
    eta_sweep: Sequence[int] = (0, 100, 200, 400, 700, 1000, 2000, 4000),
    settings: CHSHSettings | None = None,
    seed: int = 11,
) -> CHSHExperimentResult:
    """Characterise the sampled CHSH estimator used by both DI security checks."""
    if repetitions < 2:
        raise ExperimentError("repetitions must be at least 2")
    settings = settings or CHSHSettings()
    generator = as_rng(seed)
    channel = IdentityChainChannel(eta=eta)
    transmitted_pair = channel.transmit(
        bell_state(BellState.PHI_PLUS).density_matrix(), 0
    )
    check = DISecurityCheck(settings)

    result = CHSHExperimentResult(eta=eta)
    for budget in pair_budgets:
        if budget < 1:
            raise ExperimentError("every pair budget must be positive")
        values = []
        passes = 0
        for _ in range(repetitions):
            estimate = check.estimate([transmitted_pair] * budget, rng=generator)
            values.append(estimate.value)
            passes += int(estimate.passed())
        mean, low, high = mean_and_confidence_interval(values)
        result.convergence.append(
            CHSHConvergencePoint(
                num_pairs=budget,
                mean_value=mean,
                ci_low=low,
                ci_high=high,
                predicted_standard_error=chsh_standard_error(budget),
                empirical_standard_deviation=float(np.std(values, ddof=1)),
                pass_rate=passes / repetitions,
            )
        )

    result.chsh_vs_eta = chsh_vs_channel_length(eta_sweep)
    result.max_di_channel_length = chsh_threshold_eta(max_eta=20000, step=100)
    return result


@register_metrics(CHSHExperimentResult)
def chsh_artifact_metrics(result: CHSHExperimentResult) -> dict:
    """Artifact metrics for the CHSH study: convergence table + DI range."""
    metrics: dict = {"max_di_channel_length": result.max_di_channel_length}
    for point in result.convergence:
        metrics[f"mean_S_d{point.num_pairs}"] = point.mean_value
        metrics[f"pass_rate_d{point.num_pairs}"] = point.pass_rate
    metrics["chsh_vs_eta"] = [[eta, value] for eta, value in result.chsh_vs_eta]
    return metrics
