"""Experiment ``e2e``: full UA-DI-QSDC sessions on ideal and noisy channels.

The paper's §II describes the protocol end to end; this experiment exercises
the complete implementation (all six steps, both security checks, both
authentications) for several independent sessions on a noiseless channel and
on the paper's η-identity-gate channel, and reports delivery and error
statistics.  It is the reproduction's sanity anchor: every other experiment
studies one slice of this pipeline.

Sessions run through the :class:`~repro.api.service.MessagingService` facade
(local backend, framing disabled, no retransmission), so the experiment also
exercises the service layer end to end; with framing off each send is exactly
one :class:`~repro.protocol.runner.UADIQSDCProtocol` session, and the raw
:class:`~repro.protocol.results.ProtocolResult` objects are collected for the
statistics below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.config import ServiceConfig
from repro.api.service import MessagingService
from repro.artifacts.metrics import register_metrics
from repro.channel.quantum_channel import IdentityChainChannel, NoiselessChannel
from repro.exceptions import ExperimentError
from repro.protocol.results import ProtocolResult
from repro.utils.bits import bits_to_str, random_bits
from repro.utils.rng import as_rng

__all__ = ["EndToEndResult", "run_end_to_end"]


@dataclass
class EndToEndResult:
    """Aggregated statistics of repeated full protocol sessions."""

    message_length: int
    num_sessions: int
    ideal_results: list[ProtocolResult] = field(default_factory=list)
    noisy_results: list[ProtocolResult] = field(default_factory=list)
    eta: int = 10

    def _delivery_rate(self, results: list[ProtocolResult]) -> float:
        return sum(1 for r in results if r.message_delivered_correctly()) / len(results)

    @property
    def ideal_delivery_rate(self) -> float:
        """Fraction of ideal-channel sessions delivering the exact message."""
        return self._delivery_rate(self.ideal_results)

    @property
    def noisy_delivery_rate(self) -> float:
        """Fraction of η-channel sessions delivering the exact message."""
        return self._delivery_rate(self.noisy_results)

    @property
    def mean_chsh_round1(self) -> float:
        """Average first-round CHSH value across all sessions."""
        values = [
            r.chsh_round1.value
            for r in self.ideal_results + self.noisy_results
            if r.chsh_round1 is not None
        ]
        return float(np.mean(values))

    @property
    def mean_noisy_message_error(self) -> float:
        """Average residual message bit-error rate on the noisy channel."""
        values = [
            r.message_bit_error_rate
            for r in self.noisy_results
            if r.message_bit_error_rate is not None
        ]
        return float(np.mean(values)) if values else 0.0


def run_end_to_end(
    num_sessions: int = 5,
    message_length: int = 16,
    eta: int = 10,
    identity_pairs: int = 8,
    check_pairs: int = 128,
    seed: int = 42,
) -> EndToEndResult:
    """Run full protocol sessions on a noiseless channel and on the η-channel."""
    if num_sessions < 1:
        raise ExperimentError("num_sessions must be at least 1")
    generator = as_rng(seed)
    result = EndToEndResult(
        message_length=message_length, num_sessions=num_sessions, eta=eta
    )
    base_config = (
        ServiceConfig.paper_default()
        .with_framing(False)
        .with_retries(0)
        .with_identity_pairs(identity_pairs)
        .with_check_pairs(check_pairs)
    )
    for channel, bucket in (
        (NoiselessChannel(), result.ideal_results),
        (IdentityChainChannel(eta=eta), result.noisy_results),
    ):
        service = MessagingService(base_config.with_channel(channel))
        for _ in range(num_sessions):
            message = bits_to_str(random_bits(message_length, rng=generator))
            report = service.send(
                message, kind="bits", seed=int(generator.integers(0, 2**31 - 1))
            )
            bucket.append(report.fragments[0].attempts[0].raw)
    return result


@register_metrics(EndToEndResult)
def e2e_artifact_metrics(result: EndToEndResult) -> dict:
    """Artifact metrics for the e2e anchor: the four aggregate statistics.

    The same quantities the golden fixture (``tests/fixtures/e2e_quick.json``)
    pins per session, here in the aggregate form every PR's artifact carries.
    """
    return {
        "ideal_delivery_rate": result.ideal_delivery_rate,
        "noisy_delivery_rate": result.noisy_delivery_rate,
        "mean_chsh_round1": result.mean_chsh_round1,
        "mean_noisy_message_error": result.mean_noisy_message_error,
    }
