"""Experiment ``attacks``: simulation of the paper's four channel/party attacks plus leakage.

Section IV of the paper states that, in addition to the hardware emulation,
the four active attacks (impersonation, intercept-and-resend,
entangle-and-measure, man-in-the-middle) were simulated and all of them are
detected by the protocol, while §III-E argues the classical channel leaks no
message information.  This experiment reproduces those claims quantitatively:

* each active attack is run against the full protocol for a configurable
  number of independent sessions and its detection rate, abort reasons and
  CHSH statistics are aggregated;
* impersonation is additionally swept over the identity length ``l`` to
  reproduce the ``1 − (1/4)^l`` detection curve;
* the passive classical eavesdropper is evaluated with the
  two-message view-distribution experiment of
  :func:`repro.attacks.information_leakage.run_leakage_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks import (
    EntangleMeasureAttack,
    ImpersonationAttack,
    InterceptResendAttack,
    LeakageReport,
    ManInTheMiddleAttack,
    evaluate_attack,
    run_leakage_experiment,
)
from repro.attacks.detection import AttackEvaluation
from repro.channel.quantum_channel import IdentityChainChannel
from repro.exceptions import ExperimentError
from repro.protocol.config import ProtocolConfig

__all__ = [
    "AttackSimulationResult",
    "ImpersonationSweepPoint",
    "run_attack_simulations",
    "run_impersonation_sweep",
]


@dataclass
class ImpersonationSweepPoint:
    """Detection statistics for one identity length ``l``."""

    identity_pairs: int
    empirical_detection_rate: float
    theoretical_detection_probability: float
    trials: int


@dataclass
class AttackSimulationResult:
    """Aggregate of the §IV attack simulations."""

    evaluations: dict[str, AttackEvaluation] = field(default_factory=dict)
    impersonation_sweep: list[ImpersonationSweepPoint] = field(default_factory=list)
    leakage: LeakageReport | None = None

    def detection_rates(self) -> dict[str, float]:
        """Detection rate per simulated attack."""
        return {name: evaluation.detection_rate for name, evaluation in self.evaluations.items()}

    def all_active_attacks_detected(self, minimum_rate: float = 0.9) -> bool:
        """True if every active attack is detected in at least *minimum_rate* of sessions."""
        active = {
            name: rate
            for name, rate in self.detection_rates().items()
            if name != "honest"
        }
        return bool(active) and all(rate >= minimum_rate for rate in active.values())


def _base_config(
    eta: int, identity_pairs: int, check_pairs: int, message_length: int
) -> ProtocolConfig:
    config = ProtocolConfig.default(
        message_length=message_length,
        identity_pairs=identity_pairs,
        check_pairs_per_round=check_pairs,
        eta=eta,
    )
    return config.with_channel(IdentityChainChannel(eta=eta))


def run_attack_simulations(
    trials: int = 10,
    eta: int = 10,
    identity_pairs: int = 8,
    check_pairs: int = 96,
    message: str = "1011001110001111",
    include_leakage: bool = True,
    leakage_sessions: int = 8,
    seed: int = 99,
) -> AttackSimulationResult:
    """Run the honest baseline and all four active attacks against the protocol."""
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    config = _base_config(eta, identity_pairs, check_pairs, len(message))
    result = AttackSimulationResult()

    scenarios = {
        "honest": None,
        "impersonation_alice": lambda rng: ImpersonationAttack("alice", rng=rng),
        "impersonation_bob": lambda rng: ImpersonationAttack("bob", rng=rng),
        "intercept_resend": lambda rng: InterceptResendAttack(rng=rng),
        "man_in_the_middle": lambda rng: ManInTheMiddleAttack(rng=rng),
        "entangle_measure": lambda rng: EntangleMeasureAttack(strength=1.0, rng=rng),
    }
    for offset, (name, factory) in enumerate(scenarios.items()):
        result.evaluations[name] = evaluate_attack(
            config, factory, message, trials=trials, rng=seed + offset
        )

    if include_leakage:
        leakage_config = _base_config(eta, max(2, identity_pairs // 2), 32, len(message))
        result.leakage = run_leakage_experiment(
            leakage_config,
            message_a=message,
            message_b="".join("1" if ch == "0" else "0" for ch in message),
            sessions_per_message=leakage_sessions,
            rng=seed + 100,
        )
    return result


def run_impersonation_sweep(
    identity_lengths: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    trials: int = 40,
    target: str = "bob",
    eta: int = 10,
    check_pairs: int = 48,
    message: str = "10110010",
    seed: int = 7,
) -> list[ImpersonationSweepPoint]:
    """Empirical vs. theoretical impersonation detection probability as a function of ``l``."""
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    sweep: list[ImpersonationSweepPoint] = []
    for offset, identity_pairs in enumerate(identity_lengths):
        config = _base_config(eta, identity_pairs, check_pairs, len(message))
        evaluation = evaluate_attack(
            config,
            lambda rng: ImpersonationAttack(target, rng=rng),
            message,
            trials=trials,
            rng=seed + offset,
        )
        sweep.append(
            ImpersonationSweepPoint(
                identity_pairs=identity_pairs,
                empirical_detection_rate=evaluation.detection_rate,
                theoretical_detection_probability=ImpersonationAttack.detection_probability(
                    identity_pairs
                ),
                trials=trials,
            )
        )
    return sweep
