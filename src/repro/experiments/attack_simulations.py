"""Experiment ``attacks``: simulation of the paper's four channel/party attacks plus leakage.

Section IV of the paper states that, in addition to the hardware emulation,
the four active attacks (impersonation, intercept-and-resend,
entangle-and-measure, man-in-the-middle) were simulated and all of them are
detected by the protocol, while §III-E argues the classical channel leaks no
message information.  This experiment reproduces those claims quantitatively:

* each active attack is run against the full protocol for a configurable
  number of independent sessions and its detection rate, abort reasons and
  CHSH statistics are aggregated;
* impersonation is additionally swept over the identity length ``l`` to
  reproduce the ``1 − (1/4)^l`` detection curve;
* the passive classical eavesdropper is evaluated with the
  two-message view-distribution experiment of
  :func:`repro.attacks.information_leakage.run_leakage_experiment`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.artifacts.metrics import register_metrics
from repro.attacks import (
    EntangleMeasureAttack,
    ImpersonationAttack,
    InterceptResendAttack,
    LeakageReport,
    ManInTheMiddleAttack,
    evaluate_attack,
    run_leakage_experiment,
)
from repro.attacks.detection import AttackEvaluation
from repro.channel.quantum_channel import IdentityChainChannel
from repro.exceptions import ExperimentError
from repro.experiments.sweep import parameter_grid, run_sweep
from repro.protocol.config import ProtocolConfig

__all__ = [
    "AttackSimulationResult",
    "ImpersonationSweepPoint",
    "run_attack_simulations",
    "run_impersonation_sweep",
]

#: Attack factories per scenario name, in the paper's presentation order.
#: ``None`` marks the honest baseline.  Workers look the factory up by name,
#: so the (unpicklable) lambdas never cross a process boundary — only the
#: name and the worker's bound primitive context do.
SCENARIO_FACTORIES = {
    "honest": None,
    "impersonation_alice": lambda rng: ImpersonationAttack("alice", rng=rng),
    "impersonation_bob": lambda rng: ImpersonationAttack("bob", rng=rng),
    "intercept_resend": lambda rng: InterceptResendAttack(rng=rng),
    "man_in_the_middle": lambda rng: ManInTheMiddleAttack(rng=rng),
    "entangle_measure": lambda rng: EntangleMeasureAttack(strength=1.0, rng=rng),
}


@dataclass
class ImpersonationSweepPoint:
    """Detection statistics for one identity length ``l``."""

    identity_pairs: int
    empirical_detection_rate: float
    theoretical_detection_probability: float
    trials: int


@dataclass
class AttackSimulationResult:
    """Aggregate of the §IV attack simulations."""

    evaluations: dict[str, AttackEvaluation] = field(default_factory=dict)
    impersonation_sweep: list[ImpersonationSweepPoint] = field(default_factory=list)
    leakage: LeakageReport | None = None

    def detection_rates(self) -> dict[str, float]:
        """Detection rate per simulated attack."""
        return {name: evaluation.detection_rate for name, evaluation in self.evaluations.items()}

    def all_active_attacks_detected(self, minimum_rate: float = 0.9) -> bool:
        """True if every active attack is detected in at least *minimum_rate* of sessions."""
        active = {
            name: rate
            for name, rate in self.detection_rates().items()
            if name != "honest"
        }
        return bool(active) and all(rate >= minimum_rate for rate in active.values())


def _base_config(
    eta: int, identity_pairs: int, check_pairs: int, message_length: int
) -> ProtocolConfig:
    config = ProtocolConfig.default(
        message_length=message_length,
        identity_pairs=identity_pairs,
        check_pairs_per_round=check_pairs,
        eta=eta,
    )
    return config.with_channel(IdentityChainChannel(eta=eta))


def _attack_scenario_worker(
    params: dict,
    seed: int,
    eta: int,
    identity_pairs: int,
    check_pairs: int,
    message: str,
    trials: int,
) -> AttackEvaluation:
    """Evaluate one attack scenario (module-level for process pools)."""
    config = _base_config(eta, identity_pairs, check_pairs, len(message))
    factory = SCENARIO_FACTORIES[params["scenario"]]
    return evaluate_attack(config, factory, message, trials=trials, rng=seed)


def run_attack_simulations(
    trials: int = 10,
    eta: int = 10,
    identity_pairs: int = 8,
    check_pairs: int = 96,
    message: str = "1011001110001111",
    include_leakage: bool = True,
    leakage_sessions: int = 8,
    seed: int = 99,
    executor: str = "serial",
    max_workers: int | None = None,
) -> AttackSimulationResult:
    """Run the honest baseline and all four active attacks against the protocol.

    The six scenarios are independent sweep points fanned through
    :func:`repro.experiments.sweep.run_sweep`: each scenario derives its own
    seed from *seed* and its name, so detection statistics are identical for
    every *executor* choice (``"serial"``/``"thread"``/``"process"``).
    """
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    result = AttackSimulationResult()

    worker = functools.partial(
        _attack_scenario_worker,
        eta=eta,
        identity_pairs=identity_pairs,
        check_pairs=check_pairs,
        message=message,
        trials=trials,
    )
    swept = run_sweep(
        worker,
        parameter_grid(scenario=list(SCENARIO_FACTORIES)),
        base_seed=seed,
        executor=executor,
        max_workers=max_workers,
    )
    for point, evaluation in swept:
        result.evaluations[point.params["scenario"]] = evaluation

    if include_leakage:
        leakage_config = _base_config(eta, max(2, identity_pairs // 2), 32, len(message))
        result.leakage = run_leakage_experiment(
            leakage_config,
            message_a=message,
            message_b="".join("1" if ch == "0" else "0" for ch in message),
            sessions_per_message=leakage_sessions,
            rng=seed + 100,
        )
    return result


def _impersonation_point_worker(
    params: dict,
    seed: int,
    target: str,
    eta: int,
    check_pairs: int,
    message: str,
    trials: int,
) -> ImpersonationSweepPoint:
    """Evaluate one identity-length point (module-level for process pools)."""
    identity_pairs = int(params["identity_pairs"])
    config = _base_config(eta, identity_pairs, check_pairs, len(message))
    evaluation = evaluate_attack(
        config,
        lambda rng: ImpersonationAttack(target, rng=rng),
        message,
        trials=trials,
        rng=seed,
    )
    return ImpersonationSweepPoint(
        identity_pairs=identity_pairs,
        empirical_detection_rate=evaluation.detection_rate,
        theoretical_detection_probability=ImpersonationAttack.detection_probability(
            identity_pairs
        ),
        trials=trials,
    )


def run_impersonation_sweep(
    identity_lengths: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    trials: int = 40,
    target: str = "bob",
    eta: int = 10,
    check_pairs: int = 48,
    message: str = "10110010",
    seed: int = 7,
    executor: str = "serial",
    max_workers: int | None = None,
) -> list[ImpersonationSweepPoint]:
    """Empirical vs. theoretical impersonation detection probability as a function of ``l``.

    Each identity length is one sweep point with a deterministic derived
    seed; points can be fanned across workers via *executor* without changing
    the empirical rates.
    """
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    worker = functools.partial(
        _impersonation_point_worker,
        target=target,
        eta=eta,
        check_pairs=check_pairs,
        message=message,
        trials=trials,
    )
    swept = run_sweep(
        worker,
        parameter_grid(identity_pairs=list(identity_lengths)),
        base_seed=seed,
        executor=executor,
        max_workers=max_workers,
    )
    return list(swept.values)


@register_metrics(AttackSimulationResult)
def attacks_artifact_metrics(result: AttackSimulationResult) -> dict:
    """Artifact metrics for the §IV attack simulations: detection + leakage."""
    metrics: dict = {
        f"detection_rate.{name}": rate
        for name, rate in result.detection_rates().items()
    }
    for point in result.impersonation_sweep:
        metrics[f"impersonation_empirical_l{point.identity_pairs}"] = (
            point.empirical_detection_rate
        )
        metrics[f"impersonation_theory_l{point.identity_pairs}"] = (
            point.theoretical_detection_probability
        )
    if result.leakage is not None:
        metrics.update(leakage_artifact_metrics(result.leakage))
    return metrics


@register_metrics(LeakageReport)
def leakage_artifact_metrics(report: LeakageReport) -> dict:
    """Artifact metrics for the information-leakage experiment (§III-E)."""
    return {
        "excess_tv_distance": report.excess_tv_distance,
        "total_variation_distance": report.total_variation_distance,
        "within_message_tv_distance": report.within_message_tv_distance,
        "mutual_information_upper_bound": report.mutual_information_upper_bound,
        "distinct_views": report.distinct_views,
        "message_outcomes_announced": report.message_outcomes_announced,
    }


@register_metrics("atk-impersonation-sweep")
def impersonation_sweep_artifact_metrics(points: list) -> dict:
    """Artifact metrics for the bare impersonation sweep (a list of points)."""
    metrics: dict = {}
    for point in points:
        metrics[f"empirical_l{point.identity_pairs}"] = point.empirical_detection_rate
        metrics[f"theory_l{point.identity_pairs}"] = (
            point.theoretical_detection_probability
        )
    return metrics
