"""Experiment ``fig_security``: detection power across the adversarial scenario grid.

The paper's §IV reports that each of its four attacks *is* detected; this
experiment turns that into the quantitative security analysis the scenario
engine enables:

* a **scenario grid** — parameterised strength sweeps of every channel/source
  strategy (intercept-resend, entangle-measure, man-in-the-middle, source
  tamper) plus the canonical presets (basis-biased, individual,
  late-onset, intermittent, impersonation, composed multi-adversary,
  passive classical) — is fanned through
  :func:`repro.experiments.sweep.run_sweep` with deterministic per-point
  seeds;
* every scenario's sessions yield per-session CHSH scores, which together
  with the honest baseline produce **ROC curves** and AUCs for the DI
  eavesdropping test (:func:`repro.analysis.security.detection_roc`);
* per-scenario detection rates feed the **statistical power analysis**
  (sessions needed before an operator catches Eve with 95 % confidence);
* the strength sweeps map out the **information-leakage versus detection
  trade-off frontier** (:func:`repro.analysis.security.tradeoff_frontier`);
* the configured DI-round size is annotated with **finite-sample CHSH
  confidence bounds** (:func:`repro.analysis.security.chsh_epsilon`).

The default link is the Pauli :class:`~repro.channel.quantum_channel.DepolarizingChannel`,
so sessions are *stabilizer-eligible* and the grid sweeps on the fast path
(``simulator_backend="stabilizer"``); any non-Pauli channel degrades
gracefully to the ``auto`` engine.  Quick mode (the registry default) runs
the full grid in a few seconds and is seed-deterministic.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

from repro.analysis.security import (
    RocCurve,
    TradeoffPoint,
    chsh_epsilon,
    chsh_lower_bound,
    detection_roc,
    pairs_for_chsh_epsilon,
    sessions_for_detection,
    tradeoff_frontier,
)
from repro.artifacts.metrics import register_metrics
from repro.attacks.detection import AttackEvaluation, evaluate_attack
from repro.attacks.scenarios import AttackScenario, ScenarioSchedule, get_scenario
from repro.channel.quantum_channel import (
    DepolarizingChannel,
    IdentityChainChannel,
    NoiselessChannel,
)
from repro.exceptions import ExperimentError
from repro.experiments.sweep import parameter_grid, run_sweep
from repro.protocol.config import ProtocolConfig

__all__ = [
    "ScenarioStudyPoint",
    "SecurityStudyResult",
    "run_fig_security",
]

#: Preset scenario names included in the grid alongside the strength sweeps.
DEFAULT_PRESETS = (
    "intercept_resend_breidbart",
    "intercept_resend_individual",
    "intercept_resend_late",
    "mitm_intermittent",
    "impersonate_alice",
    "impersonate_bob",
    "classical_passive",
    "mitm_plus_classical",
    "impersonation_with_intercept",
)

#: Strategies whose strength axis is swept (strength semantics per strategy
#: are documented in :mod:`repro.attacks.scenarios`).
SWEPT_STRATEGIES = (
    "intercept_resend",
    "entangle_measure",
    "man_in_the_middle",
    "source_tamper",
)

#: Strategies for which ``strength`` doubles as Eve's normalised information
#: gain, feeding the leakage/detection trade-off frontier.
_INFORMATION_STRATEGIES = {"intercept_resend", "entangle_measure"}


@dataclass
class ScenarioStudyPoint:
    """Aggregated security statistics for one scenario of the grid."""

    name: str
    label: str
    trials: int
    detections: int
    detection_rate: float
    abort_reasons: dict[str, int]
    mean_chsh_round1: "float | None"
    mean_chsh_round2: "float | None"
    chsh_scores: tuple[float, ...] = field(repr=False, default=())
    roc: "RocCurve | None" = field(repr=False, default=None)
    sessions_for_95_detection: "int | None" = None
    information_gain: "float | None" = None

    def summary(self) -> dict:
        """JSON-friendly summary of the point."""
        return {
            "scenario": self.name,
            "label": self.label,
            "trials": self.trials,
            "detections": self.detections,
            "detection_rate": self.detection_rate,
            "abort_reasons": dict(self.abort_reasons),
            "mean_chsh_round1": self.mean_chsh_round1,
            "mean_chsh_round2": self.mean_chsh_round2,
            "roc": None if self.roc is None else self.roc.summary(),
            "sessions_for_95_detection": self.sessions_for_95_detection,
            "information_gain": self.information_gain,
        }


@dataclass
class SecurityStudyResult:
    """Outcome of the ``fig_security`` scenario-grid study."""

    message: str
    trials: int
    check_pairs: int
    identity_pairs: int
    channel_name: str
    simulator_backend: str
    honest_false_alarm_rate: float
    honest_scores: tuple[float, ...] = field(repr=False, default=())
    points: list[ScenarioStudyPoint] = field(default_factory=list)
    frontier: list[TradeoffPoint] = field(default_factory=list)
    chsh_bound: dict = field(default_factory=dict)

    def detection_rates(self) -> dict[str, float]:
        """Detection rate per scenario, in grid order."""
        return {point.name: point.detection_rate for point in self.points}

    def point(self, name: str) -> ScenarioStudyPoint:
        """Look up one scenario's statistics by grid name."""
        for candidate in self.points:
            if candidate.name == name:
                return candidate
        raise ExperimentError(f"no scenario {name!r} in this study")

    def all_full_strength_attacks_detected(self, minimum_rate: float = 0.9) -> bool:
        """True if every active strength-1 sweep point detects ≥ *minimum_rate*.

        The quantitative form of the paper's §IV claim, restricted to the
        full-strength active attacks (passive and sub-critical scenarios are
        *expected* to evade the threshold test).
        """
        full = [point for point in self.points if point.name.endswith("@1")]
        return bool(full) and all(
            point.detection_rate >= minimum_rate for point in full
        )

    def summary(self) -> dict:
        """JSON-friendly summary of the whole study."""
        return {
            "message": self.message,
            "trials": self.trials,
            "check_pairs": self.check_pairs,
            "identity_pairs": self.identity_pairs,
            "channel": self.channel_name,
            "simulator_backend": self.simulator_backend,
            "honest_false_alarm_rate": self.honest_false_alarm_rate,
            "points": [point.summary() for point in self.points],
            "frontier": [point.summary() for point in self.frontier],
            "chsh_bound": dict(self.chsh_bound),
        }


def _study_channel(channel: str, noise: float):
    """Resolve the link model swept by the study."""
    if channel == "depolarizing":
        return DepolarizingChannel(noise)
    if channel == "noiseless":
        return NoiselessChannel()
    if channel == "eta":
        return IdentityChainChannel(eta=max(1, int(noise)))
    raise ExperimentError(
        f"unknown channel kind {channel!r}; choose 'depolarizing', "
        "'noiseless' or 'eta'"
    )


def _study_config(
    message_length: int,
    check_pairs: int,
    identity_pairs: int,
    channel: str,
    noise: float,
) -> ProtocolConfig:
    """Base session config, on the stabilizer engine where eligible."""
    config = ProtocolConfig.default(
        message_length=message_length,
        identity_pairs=identity_pairs,
        check_pairs_per_round=check_pairs,
    ).with_channel(_study_channel(channel, noise))
    from repro.quantum.dispatch import protocol_eligibility

    backend = "stabilizer" if protocol_eligibility(config).eligible else "auto"
    return config.with_simulator_backend(backend)


def _scenario_table(
    strengths: tuple[float, ...], presets: tuple[str, ...]
) -> dict[str, ScenarioSchedule]:
    """The grid: strength sweeps of every swept strategy plus named presets."""
    table: dict[str, ScenarioSchedule] = {}
    for strategy in SWEPT_STRATEGIES:
        for strength in strengths:
            scenario = AttackScenario(strategy, strength=float(strength))
            table[f"{strategy}@{strength:g}"] = ScenarioSchedule((scenario,))
    for name in presets:
        table[name] = get_scenario(name)
    return table


def _security_point_worker(
    params: dict,
    seed: int,
    strengths: tuple[float, ...],
    presets: tuple[str, ...],
    trials: int,
    message: str,
    check_pairs: int,
    identity_pairs: int,
    channel: str,
    noise: float,
) -> AttackEvaluation:
    """Evaluate one grid scenario (module-level for process pools).

    The scenario is swept *by name* (sweep axis values must be canonical),
    and resolved here from the deterministic scenario table.
    """
    config = _study_config(len(message), check_pairs, identity_pairs, channel, noise)
    name = params["scenario"]
    if name == "honest":
        factory = None
    else:
        table = _scenario_table(strengths, presets)
        factory = table[name].attack_factory()
    return evaluate_attack(config, factory, message, trials=trials, rng=seed)


def _session_scores(
    evaluation: AttackEvaluation,
    authentication_tolerance: float,
    check_bit_tolerance: float,
) -> tuple[float, ...]:
    """Per-session detector scores for the ROC analysis.

    Each safeguard contributes a normalised *alarm margin* — positive exactly
    when that safeguard would fire: ``(2 − S)/2`` for each observed CHSH
    round, ``error/tolerance − 1`` for the two authentication checks and the
    check-bit comparison.  A session's suspicion is the maximum margin over
    the safeguards it actually reached, and the returned score is its
    *negation* so that lower = more suspicious (the convention of
    :func:`repro.analysis.security.detection_roc`).  Using one unified
    statistic keeps the ROC fair across attack families: channel attacks are
    typically caught by authentication *before* the round-2 CHSH check runs,
    so a CHSH-only score would under-sample precisely the attacked sessions.
    """
    scores = []
    for result in evaluation.results:
        margins = []
        for estimate in (result.chsh_round1, result.chsh_round2):
            if estimate is not None:
                margins.append((2.0 - estimate.value) / 2.0)
        for error, tolerance in (
            (result.bob_authentication_error, authentication_tolerance),
            (result.alice_authentication_error, authentication_tolerance),
            (result.check_bit_error_rate, check_bit_tolerance),
        ):
            if error is not None:
                margins.append(error / tolerance - 1.0)
        if margins:
            scores.append(-max(margins))
    return tuple(scores)


def run_fig_security(
    trials: int = 20,
    check_pairs: int = 128,
    identity_pairs: int = 4,
    message: str = "1011001110001111",
    strengths: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    presets: tuple[str, ...] = DEFAULT_PRESETS,
    channel: str = "depolarizing",
    noise: float = 0.005,
    seed: int = 1201,
    executor: str = "serial",
    max_workers: "int | None" = None,
) -> SecurityStudyResult:
    """Sweep the adversarial scenario grid and aggregate detection-power statistics.

    Every scenario (and the honest baseline) is one sweep point with a
    deterministic derived seed, so the study is bit-identical for any
    *executor* choice.  See the module docstring for what is computed.

    Parameters
    ----------
    trials:
        Protocol sessions per scenario (and for the honest baseline).
    check_pairs, identity_pairs:
        DI-round size ``d`` and identity length ``l`` of every session.
    message:
        The secret message Alice sends in every session.
    strengths:
        Strength axis swept for each strategy in :data:`SWEPT_STRATEGIES`.
    presets:
        Named presets (see :func:`repro.attacks.scenarios.list_scenarios`)
        appended to the grid.
    channel, noise:
        Link model: ``"depolarizing"`` (Pauli — stabilizer-eligible, the
        default), ``"noiseless"``, or ``"eta"`` (the paper's identity chain,
        *noise* = η; runs on the ``auto`` engine).
    seed:
        Master seed of the sweep.
    executor, max_workers:
        Worker pool for the grid (``"serial"``, ``"thread"`` or
        ``"process"``).
    """
    if trials < 1:
        raise ExperimentError("trials must be at least 1")
    strengths = tuple(float(value) for value in strengths)
    for value in strengths:
        if not 0.0 <= value <= 1.0:
            raise ExperimentError("strengths must lie in [0, 1]")
    presets = tuple(presets)

    table = _scenario_table(strengths, presets)
    grid_names = ["honest", *table]
    worker = functools.partial(
        _security_point_worker,
        strengths=strengths,
        presets=presets,
        trials=trials,
        message=message,
        check_pairs=check_pairs,
        identity_pairs=identity_pairs,
        channel=channel,
        noise=noise,
    )
    swept = run_sweep(
        worker,
        parameter_grid(scenario=grid_names),
        base_seed=seed,
        executor=executor,
        max_workers=max_workers,
    )
    evaluations = {
        point.params["scenario"]: evaluation for point, evaluation in swept
    }

    honest = evaluations.pop("honest")
    config = _study_config(len(message), check_pairs, identity_pairs, channel, noise)
    # The scores must mirror the abort rule the sessions actually ran under,
    # so the tolerances come from the session config rather than defaults.
    tolerances = dict(
        authentication_tolerance=config.authentication_tolerance,
        check_bit_tolerance=config.check_bit_tolerance,
    )
    honest_scores = _session_scores(honest, **tolerances)
    result = SecurityStudyResult(
        message=message,
        trials=trials,
        check_pairs=check_pairs,
        identity_pairs=identity_pairs,
        channel_name=config.channel.name,
        simulator_backend=config.simulator_backend,
        honest_false_alarm_rate=honest.detection_rate,
        honest_scores=honest_scores,
        chsh_bound={
            "check_pairs": check_pairs,
            "epsilon_95": chsh_epsilon(check_pairs, 0.95),
            "lower_bound_at_tsirelson_95": chsh_lower_bound(
                2.0 * math.sqrt(2.0), check_pairs, 0.95
            ),
            "pairs_for_epsilon_0.5_95": pairs_for_chsh_epsilon(0.5, 0.95),
        },
    )

    frontier_candidates: list[TradeoffPoint] = []
    for name in table:
        evaluation = evaluations[name]
        schedule = table[name]
        scores = _session_scores(evaluation, **tolerances)
        roc = detection_roc(honest_scores, scores) if scores else None
        information = None
        if "@" in name and name.split("@")[0] in _INFORMATION_STRATEGIES:
            information = float(name.split("@")[1])
            frontier_candidates.append(
                TradeoffPoint(
                    label=name,
                    information_gain=information,
                    detection_rate=evaluation.detection_rate,
                )
            )
        result.points.append(
            ScenarioStudyPoint(
                name=name,
                label=schedule.label,
                trials=evaluation.trials,
                detections=evaluation.detections,
                detection_rate=evaluation.detection_rate,
                abort_reasons=dict(evaluation.abort_reasons),
                mean_chsh_round1=evaluation.mean_chsh_round1,
                mean_chsh_round2=evaluation.mean_chsh_round2,
                chsh_scores=scores,
                roc=roc,
                sessions_for_95_detection=sessions_for_detection(
                    evaluation.detection_rate, 0.95
                ),
                information_gain=information,
            )
        )
    if frontier_candidates:
        result.frontier = tradeoff_frontier(frontier_candidates)
    return result


@register_metrics(SecurityStudyResult)
def security_artifact_metrics(result: SecurityStudyResult) -> dict:
    """Artifact metrics for ``fig_security``: detection grid + CHSH bounds."""
    metrics: dict = {
        "honest_false_alarm_rate": result.honest_false_alarm_rate,
    }
    for point in result.points:
        metrics[f"detect.{point.name}"] = point.detection_rate
        if point.roc is not None:
            metrics[f"auc.{point.name}"] = point.roc.auc
        if point.information_gain is not None:
            metrics[f"info.{point.name}"] = point.information_gain
    if result.chsh_bound:
        metrics["chsh_epsilon_95"] = result.chsh_bound.get("epsilon_95")
    return metrics
