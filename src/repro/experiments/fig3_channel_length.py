"""Experiment ``fig3``: accuracy of Bob's measurement versus channel length (paper Fig. 3).

The paper sweeps the quantum channel from η = 10 to η = 700 identity gates
(0.6 µs to 42 µs on ``ibm_brisbane``) and plots the accuracy of Bob's
Bell-state measurement; the accuracy decays with channel length and falls
below 60 % at the long end of the sweep.

:func:`run_fig3` reproduces the sweep on the device model.  Two reproduction
notes (also recorded in EXPERIMENTS.md):

* the *shape* — monotonic decay towards the 25 % floor of a four-outcome
  measurement — is reproduced; the absolute crossing point depends on error
  sources beyond the median calibration numbers quoted in the paper
  (crosstalk, calibration drift), which the ``gate_error_multiplier`` knob
  exposes for sensitivity studies;
* each point is estimated from ``shots`` shots averaged over the requested
  message symbols, exactly like the hardware experiment.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.analysis.accuracy import AccuracyPoint, crossing_eta, exponential_decay_fit
from repro.analysis.fidelity import distribution_fidelity
from repro.artifacts.metrics import register_metrics
from repro.device.backend import NoisyBackend
from repro.device.calibration import (
    GateCalibration,
    IBM_BRISBANE_ID_DURATION,
    IBM_BRISBANE_ID_ERROR,
    ibm_brisbane_calibration,
)
from repro.device.device_model import DeviceModel
from repro.device.topology import EAGLE_NUM_QUBITS, heavy_hex_coupling_map
from repro.exceptions import ExperimentError
from repro.experiments.emulation import MESSAGE_SYMBOLS, run_message_transfer_batch
from repro.experiments.sweep import parameter_grid, resolve_base_seed, run_sweep

__all__ = ["Fig3Result", "run_fig3", "default_eta_sweep", "PAPER_FIG3_THRESHOLD"]

#: Accuracy threshold the paper highlights (accuracy drops below 60 %).
PAPER_FIG3_THRESHOLD = 0.6

#: Channel length at which the paper observes the accuracy crossing 60 %.
PAPER_FIG3_CROSSING_ETA = 700


def default_eta_sweep(start: int = 10, stop: int = 700, num_points: int = 24) -> list[int]:
    """An evenly spaced η sweep covering the paper's range (10 to 700 gates)."""
    if num_points < 2 or stop <= start:
        raise ExperimentError("the sweep needs at least two increasing points")
    step = (stop - start) / (num_points - 1)
    etas = sorted({int(round(start + index * step)) for index in range(num_points)})
    return etas


@dataclass
class Fig3Result:
    """Full Fig. 3 reproduction: the accuracy-versus-η series plus its analysis."""

    backend_name: str
    shots: int
    messages: tuple[str, ...]
    points: list[AccuracyPoint] = field(default_factory=list)
    gate_error_multiplier: float = 1.0

    @property
    def etas(self) -> list[int]:
        """The swept channel lengths."""
        return [point.eta for point in self.points]

    @property
    def accuracies(self) -> list[float]:
        """The measured accuracies, aligned with :attr:`etas`."""
        return [point.accuracy for point in self.points]

    def crossing(self, threshold: float = PAPER_FIG3_THRESHOLD) -> float | None:
        """Channel length at which the accuracy first drops below *threshold*."""
        return crossing_eta(self.points, threshold)

    def decay_fit(self) -> dict[str, float]:
        """Exponential-decay fit of the accuracy curve (floor fixed at 1/4)."""
        return exponential_decay_fit(self.points, floor=0.25)

    def is_monotonically_decreasing(self, tolerance: float = 0.05) -> bool:
        """True if the accuracy never increases by more than *tolerance* between points."""
        return all(
            later.accuracy <= earlier.accuracy + tolerance
            for earlier, later in zip(self.points, self.points[1:])
        )


def _device_with_scaled_identity_error(multiplier: float) -> DeviceModel:
    """An ``ibm_brisbane`` model whose identity-gate error is scaled by *multiplier*."""
    calibration = ibm_brisbane_calibration()
    calibration.add_gate(
        GateCalibration(
            "id",
            min(1.0, IBM_BRISBANE_ID_ERROR * multiplier),
            IBM_BRISBANE_ID_DURATION,
            num_qubits=1,
        )
    )
    return DeviceModel(
        name=f"ibm_brisbane(id_error x{multiplier:g})",
        num_qubits=EAGLE_NUM_QUBITS,
        coupling_map=heavy_hex_coupling_map(),
        calibration=calibration,
    )


def _fig3_point(
    params: dict,
    seed: int,
    shots: int,
    messages: tuple[str, ...],
    device: DeviceModel,
    simulator_backend: str = "auto",
    cache=None,
) -> AccuracyPoint:
    """Measure one η point of the Fig. 3 sweep (module-level for process pools).

    A fresh backend is seeded from the point's deterministic seed, so the
    point's counts are identical whether the sweep runs serially or fanned
    across workers.  All message circuits of the point go through the
    batched execution path and share one compiled channel segment; serial
    sweeps additionally share one propagator cache across points (*cache*),
    which is sound because counts never depend on cache state.
    """
    eta = int(params["eta"])
    backend = NoisyBackend(
        device, seed=seed, simulator_backend=simulator_backend, cache=cache
    )
    histograms = run_message_transfer_batch(messages, eta, backend, shots=shots)
    correct = sum(
        decoded.get(message, 0) for message, decoded in zip(messages, histograms)
    )
    fidelities = [
        distribution_fidelity(decoded, {message: 1.0})
        for message, decoded in zip(messages, histograms)
    ]
    return AccuracyPoint(
        eta=eta,
        duration=eta * backend.device.gate_duration("id"),
        accuracy=correct / (shots * len(messages)),
        shots=shots * len(messages),
        fidelity=sum(fidelities) / len(fidelities),
    )


def run_fig3(
    etas: Sequence[int] | None = None,
    shots: int = 1024,
    messages: Sequence[str] = MESSAGE_SYMBOLS,
    device: DeviceModel | None = None,
    gate_error_multiplier: float = 1.0,
    seed: int | None = 2024,
    executor: str = "serial",
    max_workers: int | None = None,
    simulator_backend: str = "auto",
) -> Fig3Result:
    """Reproduce Fig. 3: Bob's measurement accuracy versus channel length.

    The η grid is fanned through :func:`repro.experiments.sweep.run_sweep`
    with a deterministic per-point seed, so the result is identical for every
    *executor* choice; each point executes its message circuits through the
    batched simulator path.

    Parameters
    ----------
    etas:
        Channel lengths to sweep (defaults to 24 points covering 10–700).
    shots:
        Shots per (η, message) point.
    messages:
        Message symbols averaged at each point (paper encodes all four).
    device:
        Device model; defaults to ``ibm_brisbane``, optionally with the
        identity-gate error scaled by *gate_error_multiplier*.
    gate_error_multiplier:
        Sensitivity knob: scales the identity-gate depolarizing error to model
        hardware whose effective channel error exceeds the median calibration.
    seed:
        Base seed for the per-point seed derivation; ``None`` draws a random
        base seed (the sweep is then unreproducible but still internally
        consistent).
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"`` — how the η
        points are distributed (see :mod:`repro.experiments.sweep`).
    max_workers:
        Worker count for the parallel executors.
    simulator_backend:
        Passed to each point's :class:`~repro.device.backend.NoisyBackend`
        (``"auto"``/``"dense"``/``"stabilizer"``).  With the default
        ``ibm_brisbane`` device model, ``auto`` resolves to the dense path
        (thermal relaxation is not a Pauli channel) and the figures stay
        bit-identical to earlier releases; Pauli-diagonal device models
        take the stabilizer fast path automatically.
    """
    if shots < 1:
        raise ExperimentError("shots must be positive")
    if not messages:
        raise ExperimentError("at least one message symbol is required")
    sweep = list(etas) if etas is not None else default_eta_sweep()
    if device is None:
        device = (
            DeviceModel.ibm_brisbane()
            if gate_error_multiplier == 1.0
            else _device_with_scaled_identity_error(gate_error_multiplier)
        )
    base_seed = resolve_base_seed(seed)

    # One propagator cache shared by every point of the sweep.  The cache is
    # internally locked, so serial and thread executors both share it (point
    # counts never depend on cache state); process pools cannot share memory,
    # so they keep per-backend caches.
    from repro.quantum.batch import PropagatorCache

    shared_cache = PropagatorCache() if executor in ("serial", "thread") else None
    worker = functools.partial(
        _fig3_point,
        shots=shots,
        messages=tuple(messages),
        device=device,
        simulator_backend=simulator_backend,
        cache=shared_cache,
    )
    swept = run_sweep(
        worker,
        parameter_grid(eta=sweep),
        base_seed=base_seed,
        executor=executor,
        max_workers=max_workers,
    )

    return Fig3Result(
        backend_name=device.name,
        shots=shots,
        messages=tuple(messages),
        gate_error_multiplier=gate_error_multiplier,
        points=list(swept.values),
    )


@register_metrics(Fig3Result)
def fig3_artifact_metrics(result: Fig3Result) -> dict:
    """Artifact metrics for Fig. 3: the accuracy-vs-η series and its crossing."""
    return {
        "etas": list(result.etas),
        "accuracies": list(result.accuracies),
        "crossing_eta_60pct": result.crossing(),
    }
