"""Experiment registry: one entry per paper table/figure (plus security studies).

Every artefact of the paper's evaluation has an experiment id here (see
DESIGN.md §5 for the full index).  Each registered experiment bundles a
callable with *quick* keyword arguments — a reduced-size run suitable for CI
and the pytest benches — while callers can always pass their own arguments for
full-scale reproductions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.exceptions import ExperimentError

__all__ = ["Experiment", "register", "get_experiment", "list_experiments", "run_experiment"]

_REGISTRY: dict[str, "Experiment"] = {}


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artefact.

    Attributes
    ----------
    experiment_id:
        Short id used on the command line and in benches (e.g. ``"fig2"``).
    paper_artifact:
        Which table/figure/section of the paper it reproduces.
    description:
        One-line human description.
    runner:
        The callable that produces the result object.
    quick_kwargs:
        Reduced-size keyword arguments for fast runs (CI, benches).
    """

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[..., Any]
    quick_kwargs: dict[str, Any] = field(default_factory=dict)

    def run(self, quick: bool = True, **overrides: Any) -> Any:
        """Execute the experiment (quick-sized by default).

        Every execution through this path also emits a versioned
        :class:`~repro.artifacts.schema.RunArtifact` (params, seeds, timing,
        metrics, environment) via :mod:`repro.artifacts.capture` — retrieve
        it with ``last_artifact(experiment_id)`` or ``capture_artifacts()``,
        or set ``REPRO_ARTIFACT_DIR`` to have it written to disk.
        """
        from repro.artifacts.capture import record_experiment_run

        kwargs = dict(self.quick_kwargs) if quick else {}
        kwargs.update(overrides)
        start = time.perf_counter()
        result = self.runner(**kwargs)
        duration = time.perf_counter() - start
        record_experiment_run(
            self, kwargs=kwargs, result=result, duration=duration, quick=quick
        )
        return result


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (ids must be unique)."""
    if experiment.experiment_id in _REGISTRY:
        raise ExperimentError(f"experiment id {experiment.experiment_id!r} already registered")
    _REGISTRY[experiment.experiment_id] = experiment
    return experiment


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id."""
    if experiment_id not in _REGISTRY:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[experiment_id]


def list_experiments() -> list[Experiment]:
    """All registered experiments sorted by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def run_experiment(experiment_id: str, quick: bool = True, **overrides: Any) -> Any:
    """Convenience wrapper: look up and run an experiment."""
    return get_experiment(experiment_id).run(quick=quick, **overrides)


def _populate_registry() -> None:
    """Register the paper's experiments (executed on first import)."""
    from repro.experiments.attack_simulations import (
        run_attack_simulations,
        run_impersonation_sweep,
    )
    from repro.experiments.chsh_baseline import run_chsh_experiment
    from repro.experiments.e2e import run_end_to_end
    from repro.experiments.fig2_message_counts import run_fig2
    from repro.experiments.fig3_channel_length import run_fig3
    from repro.experiments.fig_load import run_fig_load
    from repro.experiments.fig_security import run_fig_security
    from repro.experiments.fig_sla import run_fig_sla
    from repro.experiments.mitigation_study import run_mitigation_study
    from repro.experiments.network_scale import run_network_scale
    from repro.experiments.table1_comparison import run_table1

    register(
        Experiment(
            experiment_id="table1",
            paper_artifact="Table I",
            description="Feature comparison of DI-QSDC protocols, backed by functional runs",
            runner=run_table1,
            quick_kwargs={"check_pairs": 64},
        )
    )
    register(
        Experiment(
            experiment_id="fig2",
            paper_artifact="Figure 2",
            description="Bob's decoded-outcome histograms for the four 2-bit messages at η=10",
            runner=run_fig2,
            quick_kwargs={"shots": 1024},
        )
    )
    register(
        Experiment(
            experiment_id="fig3",
            paper_artifact="Figure 3",
            description="Accuracy of Bob's measurement versus channel length (η sweep)",
            runner=run_fig3,
            quick_kwargs={"shots": 256, "messages": ("00", "11")},
        )
    )
    register(
        Experiment(
            experiment_id="sec-chsh",
            paper_artifact="Section II / IV (DI security check)",
            description="CHSH estimator convergence and DI operating range of the channel",
            runner=run_chsh_experiment,
            quick_kwargs={"pair_budgets": (64, 256), "repetitions": 8},
        )
    )
    register(
        Experiment(
            experiment_id="attacks",
            paper_artifact="Section III / IV (attack simulations)",
            description="Detection of impersonation, intercept-resend, MITM and entangle-measure",
            runner=run_attack_simulations,
            quick_kwargs={"trials": 5, "check_pairs": 64, "leakage_sessions": 4},
        )
    )
    register(
        Experiment(
            experiment_id="atk-impersonation-sweep",
            paper_artifact="Section III-A (detection probability 1-(1/4)^l)",
            description="Empirical vs theoretical impersonation detection probability over l",
            runner=run_impersonation_sweep,
            quick_kwargs={"identity_lengths": (1, 2, 4), "trials": 20},
        )
    )
    register(
        Experiment(
            experiment_id="atk-leakage",
            paper_artifact="Section III-E (information leakage)",
            description="Classical-channel view-distribution comparison for two messages",
            runner=_run_leakage_only,
            quick_kwargs={"sessions_per_message": 6},
        )
    )
    register(
        Experiment(
            experiment_id="fig_security",
            paper_artifact="Section III / IV (security analysis, quantified)",
            description="Scenario-grid detection study: ROC curves, power vs sample size, "
            "leakage/detection frontier, finite-sample CHSH bounds",
            runner=run_fig_security,
            quick_kwargs={
                "trials": 6,
                "check_pairs": 48,
                "identity_pairs": 4,
                "strengths": (0.5, 1.0),
            },
        )
    )
    register(
        Experiment(
            experiment_id="mitigation",
            paper_artifact="Section IV-B (error-mitigation outlook)",
            description="Readout mitigation and zero-noise extrapolation on the Fig. 3 channel",
            runner=run_mitigation_study,
            quick_kwargs={
                "etas": (100, 500),
                "shots": 384,
                "messages": ("00", "11"),
                "noise_scales": (1.0, 2.0, 3.0),
            },
        )
    )
    register(
        Experiment(
            experiment_id="network_scale",
            paper_artifact="System extension (multi-node QSDC network)",
            description="Concurrent sessions over a relay network: throughput, latency, aborts, QBER",
            runner=run_network_scale,
            quick_kwargs={
                "rows": 3,
                "cols": 3,
                "num_sessions": 50,
                "message_length": 8,
                "check_pairs": 32,
                "qubit_capacity": 220,
            },
        )
    )
    register(
        Experiment(
            experiment_id="fig_load",
            paper_artifact="System extension (delivery runtime under sustained load)",
            description="Concurrent delivery runtime load study: throughput, latency "
            "percentiles, drop/abort rates per backpressure policy",
            runner=run_fig_load,
            quick_kwargs={
                "messages": 3000,
                "queue_capacity": 48,
                "calibration_sends": 8,
            },
        )
    )
    register(
        Experiment(
            experiment_id="fig_sla",
            paper_artifact="System extension (SLA under time-varying conditions)",
            description="Offered load × condition-profile sweep with QoS classes: "
            "goodput knee, per-class latency percentiles, outage-tail decomposition",
            runner=run_fig_sla,
            quick_kwargs={
                "num_sessions": 24,
                "loads": (0.6, 1.5, 3.0),
                "profiles": ("static", "drift_outage"),
                "check_pairs": 16,
            },
        )
    )
    register(
        Experiment(
            experiment_id="e2e",
            paper_artifact="Section II (full protocol)",
            description="End-to-end UA-DI-QSDC sessions on ideal and noisy channels",
            runner=run_end_to_end,
            quick_kwargs={"num_sessions": 3, "message_length": 16},
        )
    )


def _run_leakage_only(sessions_per_message: int = 10, eta: int = 10, seed: int = 5):
    """Standalone runner for the information-leakage experiment."""
    from repro.attacks.information_leakage import run_leakage_experiment
    from repro.channel.quantum_channel import IdentityChainChannel
    from repro.protocol.config import ProtocolConfig

    config = ProtocolConfig.default(
        message_length=8, identity_pairs=2, check_pairs_per_round=32, eta=eta
    ).with_channel(IdentityChainChannel(eta=eta))
    return run_leakage_experiment(
        config,
        message_a="10110010",
        message_b="01001101",
        sessions_per_message=sessions_per_message,
        rng=seed,
    )


_populate_registry()
