"""Text rendering of experiment results.

Every experiment's result object can be rendered as a compact, paper-style
text block: Fig. 2 as count tables per panel, Fig. 3 as an η/accuracy series,
Table I as the comparison table, the attack simulations as a detection-rate
table.  The CLI (``python -m repro.experiments``) and the benches use these
renderers so the regenerated "rows/series the paper reports" are printed in a
recognisable form.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.attack_simulations import AttackSimulationResult
from repro.experiments.chsh_baseline import CHSHExperimentResult
from repro.experiments.e2e import EndToEndResult
from repro.experiments.fig2_message_counts import Fig2Result
from repro.experiments.fig3_channel_length import Fig3Result
from repro.experiments.fig_load import LoadStudyResult
from repro.experiments.fig_security import SecurityStudyResult
from repro.experiments.fig_sla import SLAStudyResult
from repro.experiments.mitigation_study import MitigationStudyResult
from repro.experiments.table1_comparison import Table1Result
from repro.network.metrics import NetworkResult

__all__ = ["render_result", "render_fig2", "render_fig3", "render_table1_result",
           "render_attacks", "render_chsh", "render_e2e", "render_load",
           "render_network", "render_security", "render_sla"]


def render_fig2(result: Fig2Result) -> str:
    """Render Fig. 2 as one counts table per encoded message."""
    lines = [
        f"Figure 2 — Bob's decoded outcomes ({result.backend_name}, "
        f"η={result.eta}, {result.shots} shots per message)",
    ]
    for panel in result.panels:
        counts = ", ".join(
            f"{outcome}:{panel.counts.get(outcome, 0)}" for outcome in ("00", "01", "10", "11")
        )
        lines.append(
            f"  message {panel.message}:  {counts}   "
            f"accuracy={panel.accuracy:.3f}  fidelity={panel.fidelity_to_ideal:.3f}"
        )
    lines.append(f"  average fidelity = {result.average_fidelity:.3f} (paper: ≥ 0.95)")
    return "\n".join(lines)


def render_fig3(result: Fig3Result) -> str:
    """Render Fig. 3 as an η / duration / accuracy series."""
    lines = [
        f"Figure 3 — accuracy vs channel length ({result.backend_name}, "
        f"{result.shots} shots, messages {','.join(result.messages)})",
        "  eta    duration(us)   accuracy",
    ]
    for point in result.points:
        lines.append(
            f"  {point.eta:>4d}   {point.duration * 1e6:>10.2f}   {point.accuracy:.3f}"
        )
    crossing = result.crossing()
    lines.append(
        "  accuracy < 60% beyond eta ≈ "
        + (f"{crossing:.0f}" if crossing is not None else "not reached in sweep")
        + " (paper: ≈ 700 on hardware)"
    )
    return "\n".join(lines)


def render_table1_result(result: Table1Result) -> str:
    """Render the regenerated Table I (plus functional-run outcomes if present)."""
    lines = ["Table I — DI-QSDC protocol comparison", result.rendered]
    if result.functional is not None:
        lines.append("")
        lines.append("Functional backing runs (same message, same channel):")
        for delivered in result.functional.baseline_results:
            status = "delivered" if delivered.message_delivered_correctly() else (
                "aborted" if delivered.aborted else "delivered with errors"
            )
            lines.append(f"  {delivered.protocol}: {status}")
        proposed = result.functional.proposed_result_summary
        lines.append(
            "  Proposed protocol (UA-DI-QSDC): "
            + ("delivered" if proposed.get("success") else "aborted")
        )
    return "\n".join(lines)


def render_attacks(result: AttackSimulationResult) -> str:
    """Render the attack-simulation detection table."""
    lines = ["Attack simulations — detection statistics", "  scenario                 detection rate"]
    for name, rate in result.detection_rates().items():
        lines.append(f"  {name:<24s} {rate:.2f}")
    if result.impersonation_sweep:
        lines.append("  impersonation sweep (l, empirical, theoretical 1-(1/4)^l):")
        for point in result.impersonation_sweep:
            lines.append(
                f"    l={point.identity_pairs}: {point.empirical_detection_rate:.2f} "
                f"vs {point.theoretical_detection_probability:.3f}"
            )
    if result.leakage is not None:
        lines.append(
            "  classical-channel leakage: excess TV distance = "
            f"{result.leakage.excess_tv_distance:.3f} "
            f"(between {result.leakage.total_variation_distance:.3f} vs within-null "
            f"{result.leakage.within_message_tv_distance:.3f}), "
            f"message outcomes announced = {result.leakage.message_outcomes_announced}"
        )
    return "\n".join(lines)


def render_security(result: SecurityStudyResult) -> str:
    """Render the scenario-grid security study as a detection-power table."""
    lines = [
        "Security analysis — adversarial scenario grid "
        f"({result.channel_name}, engine={result.simulator_backend}, "
        f"d={result.check_pairs}, l={result.identity_pairs}, "
        f"{result.trials} sessions/scenario)",
        f"  honest false-alarm rate: {result.honest_false_alarm_rate:.2f}",
        "  scenario                           detect   AUC    n(95%)  info",
    ]
    for point in result.points:
        auc = "  -  " if point.roc is None else f"{point.roc.auc:.3f}"
        sessions = (
            "inf" if point.sessions_for_95_detection is None
            else str(point.sessions_for_95_detection)
        )
        info = "-" if point.information_gain is None else f"{point.information_gain:.2f}"
        lines.append(
            f"  {point.name:<34s} {point.detection_rate:>6.2f}   {auc}  {sessions:>6s}  {info}"
        )
    if result.frontier:
        lines.append("  leakage/detection frontier (Eve-optimal points):")
        for point in result.frontier:
            lines.append(
                f"    {point.label}: info={point.information_gain:.2f} "
                f"detect={point.detection_rate:.2f}"
            )
    bound = result.chsh_bound
    lines.append(
        f"  finite-sample CHSH: ±{bound['epsilon_95']:.2f} at 95% with d={bound['check_pairs']}; "
        f"S ≥ {bound['lower_bound_at_tsirelson_95']:.2f} for an ideal state; "
        f"d={bound['pairs_for_epsilon_0.5_95']} pairs for ±0.5"
    )
    return "\n".join(lines)


def render_chsh(result: CHSHExperimentResult) -> str:
    """Render the CHSH convergence and channel-length study."""
    lines = [
        f"DI security check — sampled CHSH statistics (η={result.eta})",
        "  d      mean S    95% CI            σ(pred)   σ(emp)   pass rate",
    ]
    for point in result.convergence:
        lines.append(
            f"  {point.num_pairs:<6d} {point.mean_value:.3f}   "
            f"[{point.ci_low:.3f}, {point.ci_high:.3f}]   "
            f"{point.predicted_standard_error:.3f}     {point.empirical_standard_deviation:.3f}    "
            f"{point.pass_rate:.2f}"
        )
    lines.append("  analytic CHSH vs η: " + ", ".join(
        f"({eta}, {value:.3f})" for eta, value in result.chsh_vs_eta
    ))
    if result.max_di_channel_length is not None:
        lines.append(
            f"  CHSH reaches the classical bound at η ≈ {result.max_di_channel_length} "
            "(maximum DI-certifiable channel length)"
        )
    return "\n".join(lines)


def render_mitigation(result: MitigationStudyResult) -> str:
    """Render the error-mitigation study as an accuracy comparison table."""
    lines = [
        f"Error mitigation on the η-identity-gate channel ({result.backend_name}, "
        f"{result.shots} shots, scales {result.noise_scales})",
        "  eta    raw      readout-mitigated   ZNE (extrapolated)",
    ]
    for point in result.points:
        lines.append(
            f"  {point.eta:>4d}   {point.raw_accuracy:.3f}        "
            f"{point.readout_mitigated_accuracy:.3f}             {point.zne_accuracy:.3f}"
        )
    lines.append(
        f"  mean gain: readout-mitigation {result.improvement('readout'):+.3f}, "
        f"ZNE {result.improvement('zne'):+.3f}"
    )
    return "\n".join(lines)


def render_e2e(result: EndToEndResult) -> str:
    """Render the end-to-end session statistics."""
    return "\n".join([
        f"End-to-end protocol — {result.num_sessions} sessions × {result.message_length} bits",
        f"  ideal channel delivery rate : {result.ideal_delivery_rate:.2f}",
        f"  η={result.eta} channel delivery rate: {result.noisy_delivery_rate:.2f}",
        f"  mean CHSH (round 1)         : {result.mean_chsh_round1:.3f}",
        f"  mean noisy message BER      : {result.mean_noisy_message_error:.4f}",
    ])


def render_network(result: NetworkResult) -> str:
    """Render a network simulation as an operator-style status block."""

    def fmt(value: "float | None", pattern: str = "{:.4f}") -> str:
        return "n/a" if value is None else pattern.format(value)

    lines = [
        f"Network simulation — {result.topology_name} "
        f"({result.num_nodes} nodes, {result.num_links} links, "
        f"routing={result.routing_policy})",
        f"  sessions: {result.num_sessions} total — "
        f"{result.delivered_count} delivered "
        f"({result.count('delivered_with_errors')} with bit errors), "
        f"{result.aborted_count} aborted, {result.rejected_count} rejected",
        f"  throughput : {result.throughput_sessions:.1f} sessions/s, "
        f"{result.throughput_bits:.0f} bits/s (simulated time "
        f"{result.sim_time:.4f} s)",
        f"  latency    : mean {fmt(result.mean_latency)} s "
        f"(admission wait {fmt(result.mean_wait)} s)",
        f"  abort rate : {result.abort_rate:.2f} of admitted   "
        f"rejection rate: {result.rejection_rate:.2f} of offered",
        f"  quality    : mean QBER {fmt(result.mean_qber, '{:.3f}')}, "
        f"mean CHSH {fmt(result.mean_chsh, '{:.3f}')}, "
        f"mean route length {fmt(result.mean_hops, '{:.2f}')} hops",
    ]
    reasons = result.abort_reasons()
    if reasons:
        rendered = ", ".join(f"{name}:{count}" for name, count in sorted(reasons.items()))
        lines.append(f"  abort reasons: {rendered}")
    busiest = sorted(
        result.link_utilisation().items(), key=lambda item: (-item[1], item[0])
    )[:5]
    if busiest:
        lines.append(
            "  busiest links: "
            + ", ".join(f"{a}—{b} ({count})" for (a, b), count in busiest)
        )
    return "\n".join(lines)


def render_load(result: LoadStudyResult) -> str:
    """Render the load study as one throughput/latency row per scenario."""
    lines = [
        f"Sustained-load study — {result.topology_name} "
        f"({result.num_nodes} nodes, {result.workers} workers, "
        f"{result.messages_per_scenario} msgs/scenario)",
        f"  capacity ≈ {result.service_capacity:.0f} msgs/s "
        f"(mean route {result.mean_hops:.2f} hops); calibrated abort "
        f"probability {result.calibration['abort_probability']:.2f} "
        f"from {result.calibration['sends']} live sends",
        "  scenario          thruput   p50      p99      delivered  dropped (rej/shed/exp)",
    ]
    for name, scenario in result.scenarios:
        stats = scenario.latency_percentiles()
        lines.append(
            f"  {name:<16}  {scenario.throughput:>7.1f}/s  "
            f"{stats['p50'] * 1e3:>6.2f}ms {stats['p99'] * 1e3:>6.2f}ms  "
            f"{scenario.delivered:>9}  {scenario.dropped:>6} "
            f"({scenario.rejected}/{scenario.shed}/{scenario.expired})"
            + ("  [interrupted]" if scenario.interrupted else "")
        )
    return "\n".join(lines)


def render_sla(result: SLAStudyResult) -> str:
    """Render the SLA sweep: one goodput/latency row per (profile, load)."""
    lines = [
        f"SLA study — {result.topology_name} ({result.num_nodes} nodes, "
        f"{result.num_links} links, {result.num_sessions} sessions/point, "
        f"capacity ≈ {result.base_rate:.0f} sessions/s)",
        "  QoS weights: "
        + ", ".join(f"{name}={weight:g}" for name, weight in sorted(result.qos_weights.items())),
        "  profile        load  goodput    delivered  lost (abrt/rej)  reroutes  ctl p95    bulk p95",
    ]
    for point in result.points:
        network = point.result
        percentiles = network.class_latency_percentiles()

        def p95(name: str) -> str:
            entry = percentiles.get(name)
            return "n/a" if entry is None else f"{entry['p95'] * 1e3:.2f}ms"

        lines.append(
            f"  {point.profile:<13} {point.load:>4.1f}  "
            f"{point.goodput_bits:>7.0f}b/s {network.delivered_count:>9}  "
            f"{network.aborted_count:>5}/{network.rejected_count:<8}  "
            f"{network.reroute_count:>8}  {p95('control'):>8}  {p95('bulk'):>8}"
        )
    for profile in result.profiles:
        lines.append(f"  {profile}: goodput knee at load {result.goodput_knee(profile):g}")
    return "\n".join(lines)


_RENDERERS = {
    Fig2Result: render_fig2,
    Fig3Result: render_fig3,
    Table1Result: render_table1_result,
    AttackSimulationResult: render_attacks,
    CHSHExperimentResult: render_chsh,
    EndToEndResult: render_e2e,
    MitigationStudyResult: render_mitigation,
    NetworkResult: render_network,
    SecurityStudyResult: render_security,
    LoadStudyResult: render_load,
    SLAStudyResult: render_sla,
}


def render_result(result: Any) -> str:
    """Render any known experiment result; fall back to ``repr`` otherwise."""
    for result_type, renderer in _RENDERERS.items():
        if isinstance(result, result_type):
            return renderer(result)
    if isinstance(result, list) and result and hasattr(result[0], "identity_pairs"):
        lines = ["Impersonation detection sweep (l, empirical, theoretical):"]
        for point in result:
            lines.append(
                f"  l={point.identity_pairs}: {point.empirical_detection_rate:.2f} vs "
                f"{point.theoretical_detection_probability:.3f}"
            )
        return "\n".join(lines)
    if hasattr(result, "total_variation_distance"):
        return (
            "Information leakage: excess TV distance = "
            f"{result.excess_tv_distance:.3f} (between "
            f"{result.total_variation_distance:.3f}, within-null "
            f"{result.within_message_tv_distance:.3f}), "
            f"MI upper bound = {result.mutual_information_upper_bound:.3f} bits, "
            f"message outcomes announced = {result.message_outcomes_announced}"
        )
    return repr(result)
