"""Command-line runner for the paper experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig2
    python -m repro.experiments run fig3 --full
    python -m repro.experiments run network_scale
    python -m repro.experiments run-all

``--full`` disables the reduced "quick" parameter sets and reproduces each
artefact at the paper's scale (slower).  Beyond the paper artefacts the
registry also exposes system-scale studies such as ``network_scale``
(concurrent QSDC traffic over a multi-node relay network).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.report import render_result

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Reproduce the tables and figures of the UA-DI-QSDC paper, and run "
            "system-scale studies such as `network_scale` (multi-node QSDC "
            "network traffic)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="List the available experiments")

    run_parser = subparsers.add_parser("run", help="Run one experiment by id")
    run_parser.add_argument("experiment_id", help="Experiment id (see `list`)")
    run_parser.add_argument(
        "--full", action="store_true", help="Run at full (paper-scale) size"
    )
    run_parser.add_argument(
        "--artifact",
        metavar="PATH",
        default=None,
        help="Also write the run's JSON artifact (params, seeds, timings, "
        "metrics, environment) to PATH",
    )
    run_parser.add_argument(
        "--verbose",
        action="store_true",
        help="Enable DEBUG console logging (span-correlated when tracing)",
    )
    run_parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="Capture telemetry during the run and write the trace JSON to "
        "PATH (inspect with `python -m repro.telemetry`)",
    )

    run_all_parser = subparsers.add_parser("run-all", help="Run every experiment")
    run_all_parser.add_argument(
        "--full", action="store_true", help="Run at full (paper-scale) size"
    )
    run_all_parser.add_argument(
        "--verbose", action="store_true", help="Enable DEBUG console logging"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment in list_experiments():
            print(f"{experiment.experiment_id:<24s} {experiment.paper_artifact:<40s} "
                  f"{experiment.description}")
        return 0

    if getattr(args, "verbose", False):
        import logging

        from repro.utils.logging import TRACE_FORMAT, enable_console_logging

        enable_console_logging(logging.DEBUG, fmt=TRACE_FORMAT)

    if args.command == "run":
        # SIGINT is cooperative: the first Ctrl-C asks interrupt-aware
        # experiments (the load harness) to drain and finish early, the
        # second aborts the run — either way the trace and artifact of
        # whatever completed are still flushed below.
        from repro.runtime.interrupt import graceful_sigint, shutdown_requested

        experiment = get_experiment(args.experiment_id)
        result = None
        session = None
        aborted = False
        with graceful_sigint():
            try:
                if args.trace:
                    from repro import telemetry

                    with telemetry.capture() as session:
                        result = experiment.run(quick=not args.full)
                else:
                    result = experiment.run(quick=not args.full)
            except KeyboardInterrupt:
                aborted = True
            interrupted = aborted or shutdown_requested()
        if result is not None:
            print(render_result(result))
        elif aborted:
            print("run aborted before a result was produced", file=sys.stderr)
        if args.trace and session is not None:
            from pathlib import Path

            target = Path(args.trace)
            target.write_text(session.document.dumps() + "\n", encoding="utf-8")
            print(f"trace written to {args.trace}")
        if args.artifact:
            from repro.artifacts import last_artifact

            artifact = last_artifact(experiment.experiment_id)
            if artifact is None:  # only possible on an aborted run
                print("no artifact produced (run aborted)", file=sys.stderr)
            else:
                target = artifact.write(args.artifact)
                print(f"artifact written to {target}")
        return 130 if interrupted else 0

    if args.command == "run-all":
        for experiment in list_experiments():
            print(f"=== {experiment.experiment_id} ({experiment.paper_artifact}) ===")
            result = experiment.run(quick=not args.full)
            print(render_result(result))
            print()
        return 0

    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
