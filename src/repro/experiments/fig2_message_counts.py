"""Experiment ``fig2``: Bob's measurement counts per encoded message (paper Fig. 2).

The paper encodes each of the four two-bit messages on one EPR pair, sends
Alice's qubit through a channel of η = 10 identity gates on ``ibm_brisbane``
and histograms Bob's Bell-measurement outcomes over 1024 shots (Fig. 2a–d).
The observed histograms are strongly peaked at the encoded message, with an
average outcome fidelity of at least 0.95.

:func:`run_fig2` reproduces the experiment on the ``ibm_brisbane`` device
model (or any other backend) and reports, for each message symbol, the decoded
counts, the accuracy (probability of the correct symbol) and the classical
fidelity to the ideal distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fidelity import distribution_fidelity
from repro.artifacts.metrics import register_metrics
from repro.device.backend import NoisyBackend
from repro.device.device_model import DeviceModel
from repro.exceptions import ExperimentError
from repro.experiments.emulation import MESSAGE_SYMBOLS, run_message_transfer_batch

__all__ = ["Fig2MessageResult", "Fig2Result", "run_fig2", "PAPER_FIG2_COUNTS"]

#: The counts the paper reports in Fig. 2 (ibm_brisbane, η=10, 1024 shots),
#: keyed by encoded message and then by Bob's decoded outcome.
PAPER_FIG2_COUNTS: dict[str, dict[str, int]] = {
    "00": {"00": 957, "01": 40, "10": 25, "11": 2},
    "01": {"00": 37, "01": 958, "10": 3, "11": 26},
    "10": {"00": 15, "01": 1, "10": 967, "11": 41},
    "11": {"00": 3, "01": 12, "10": 37, "11": 972},
}


@dataclass
class Fig2MessageResult:
    """Result for one encoded message symbol (one panel of Fig. 2)."""

    message: str
    counts: dict[str, int]
    shots: int
    accuracy: float
    fidelity_to_ideal: float


@dataclass
class Fig2Result:
    """Full Fig. 2 reproduction: one panel per message symbol."""

    eta: int
    shots: int
    backend_name: str
    panels: list[Fig2MessageResult] = field(default_factory=list)

    @property
    def average_fidelity(self) -> float:
        """Average outcome fidelity across the four panels (paper: ≥ 0.95)."""
        return sum(panel.fidelity_to_ideal for panel in self.panels) / len(self.panels)

    @property
    def minimum_accuracy(self) -> float:
        """Worst-case accuracy across the four messages."""
        return min(panel.accuracy for panel in self.panels)

    def panel(self, message: str) -> Fig2MessageResult:
        """Panel for a specific encoded message symbol."""
        for candidate in self.panels:
            if candidate.message == message:
                return candidate
        raise ExperimentError(f"no panel for message {message!r}")


def run_fig2(
    eta: int = 10,
    shots: int = 1024,
    device: DeviceModel | None = None,
    seed: int | None = 2024,
    simulator_backend: str = "auto",
) -> Fig2Result:
    """Reproduce Fig. 2: decoded-outcome histograms for the four 2-bit messages.

    Parameters
    ----------
    eta:
        Channel length in identity gates (paper: 10).
    shots:
        Shots per message symbol (paper: 1024).
    device:
        Device model to run on; defaults to the ``ibm_brisbane`` stand-in.
    seed:
        Seed for the backend sampling.
    simulator_backend:
        Backend-dispatch mode for the executing
        :class:`~repro.device.backend.NoisyBackend` (the default
        ``ibm_brisbane`` model resolves to the dense path under ``auto``,
        keeping the figure bit-identical to earlier releases).
    """
    if shots < 1:
        raise ExperimentError("shots must be positive")
    backend = NoisyBackend(
        device or DeviceModel.ibm_brisbane(),
        seed=seed,
        simulator_backend=simulator_backend,
    )
    result = Fig2Result(eta=eta, shots=shots, backend_name=backend.name)
    histograms = run_message_transfer_batch(MESSAGE_SYMBOLS, eta, backend, shots=shots)
    for message, decoded in zip(MESSAGE_SYMBOLS, histograms):
        accuracy = decoded.get(message, 0) / shots
        fidelity = distribution_fidelity(decoded, {message: 1.0})
        result.panels.append(
            Fig2MessageResult(
                message=message,
                counts=decoded,
                shots=shots,
                accuracy=accuracy,
                fidelity_to_ideal=fidelity,
            )
        )
    return result


@register_metrics(Fig2Result)
def fig2_artifact_metrics(result: Fig2Result) -> dict:
    """Artifact metrics for Fig. 2: per-message accuracy/fidelity + averages."""
    metrics = {
        "average_fidelity": result.average_fidelity,
        "minimum_accuracy": result.minimum_accuracy,
    }
    for panel in result.panels:
        metrics[f"accuracy_{panel.message}"] = panel.accuracy
        metrics[f"fidelity_{panel.message}"] = panel.fidelity_to_ideal
    return metrics
