"""Experiment ``table1``: the protocol feature comparison of the paper's Table I.

The table itself is a static feature comparison (resource type, decoding
measurement, qubits per message bit, user authentication).  This experiment
produces the table *and* backs every row with a functional run of the
corresponding protocol implementation on a common channel, so the comparison
is generated from code rather than hard-coded prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.artifacts.metrics import register_metrics
from repro.baselines.comparison import (
    FunctionalComparison,
    render_table1,
    run_functional_comparison,
    table1_features,
)
from repro.baselines.features import ProtocolFeatures
from repro.channel.quantum_channel import IdentityChainChannel

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """The regenerated Table I plus the functional backing runs."""

    features: list[ProtocolFeatures] = field(default_factory=list)
    rendered: str = ""
    functional: FunctionalComparison | None = None

    def row(self, name: str) -> ProtocolFeatures:
        """Feature row by protocol name."""
        for features in self.features:
            if features.name == name:
                return features
        raise KeyError(f"no Table I row named {name!r}")

    @property
    def only_proposed_has_authentication(self) -> bool:
        """The paper's headline claim: only the proposed protocol offers UA."""
        return [row.user_authentication for row in self.features].count(True) == 1 and (
            self.features[-1].user_authentication
        )


def run_table1(
    functional: bool = True,
    message: str = "1011001110001111",
    eta: int = 10,
    check_pairs: int = 96,
    seed: int | None = 7,
    executor: str = "serial",
    max_workers: int | None = None,
) -> Table1Result:
    """Regenerate Table I, optionally backing each row with a protocol run.

    Parameters
    ----------
    functional:
        If True (default), every baseline and the proposed protocol are run on
        the same η-identity-gate channel so the table rows correspond to
        working implementations; if False only the static feature rows are
        produced (fast path used by unit tests).
    executor, max_workers:
        How the five backing runs are distributed (each protocol is one
        deterministic sweep point; see :mod:`repro.experiments.sweep`).
    """
    result = Table1Result(features=table1_features(), rendered=render_table1())
    if functional:
        result.functional = run_functional_comparison(
            message=message,
            channel=IdentityChainChannel(eta=eta),
            check_pairs=check_pairs,
            seed=seed,
            executor=executor,
            max_workers=max_workers,
        )
    return result


@register_metrics(Table1Result)
def table1_artifact_metrics(result: Table1Result) -> dict:
    """Artifact metrics for Table I: the headline claim + functional outcomes."""
    metrics = {
        "num_rows": len(result.features),
        "only_proposed_has_authentication": result.only_proposed_has_authentication,
        "baselines_delivered": None,
        "proposed_success": None,
    }
    if result.functional is not None:
        metrics["baselines_delivered"] = sum(
            1
            for delivered in result.functional.baseline_results
            if delivered.message_delivered_correctly()
        )
        metrics["proposed_success"] = bool(
            result.functional.proposed_result_summary.get("success")
        )
    return metrics
