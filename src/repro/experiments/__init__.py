"""Experiment harnesses regenerating every table and figure of the paper.

Each paper artefact maps to a registered experiment (see DESIGN.md §5):

========================  =====================================================
Experiment id             Paper artefact
========================  =====================================================
``table1``                Table I — protocol feature comparison
``fig2``                  Fig. 2 — decoded-outcome histograms at η = 10
``fig3``                  Fig. 3 — accuracy versus channel length
``sec-chsh``              §II/§IV — DI security-check characterisation
``attacks``               §III/§IV — attack simulations and detection rates
``atk-impersonation-sweep``  §III-A — detection probability vs identity length
``atk-leakage``           §III-E — classical-channel information leakage
``e2e``                   §II — full protocol end to end
``network_scale``         System extension — multi-node QSDC network traffic
========================  =====================================================

Run them from Python (:func:`run_experiment`) or from the command line
(``python -m repro.experiments run fig2``).
"""

from repro.experiments.attack_simulations import (
    AttackSimulationResult,
    run_attack_simulations,
    run_impersonation_sweep,
)
from repro.experiments.chsh_baseline import CHSHExperimentResult, run_chsh_experiment
from repro.experiments.e2e import EndToEndResult, run_end_to_end
from repro.experiments.emulation import (
    build_message_transfer_circuit,
    decode_counts_to_messages,
    run_message_transfer,
    run_message_transfer_batch,
)
from repro.experiments.fig2_message_counts import Fig2Result, PAPER_FIG2_COUNTS, run_fig2
from repro.experiments.fig3_channel_length import Fig3Result, default_eta_sweep, run_fig3
from repro.experiments.mitigation_study import MitigationStudyResult, run_mitigation_study
from repro.experiments.network_scale import run_network_scale
from repro.experiments.registry import (
    Experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import render_result
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    parameter_grid,
    point_seed,
    run_sweep,
)
from repro.experiments.table1_comparison import Table1Result, run_table1

__all__ = [
    "AttackSimulationResult",
    "run_attack_simulations",
    "run_impersonation_sweep",
    "CHSHExperimentResult",
    "run_chsh_experiment",
    "EndToEndResult",
    "run_end_to_end",
    "build_message_transfer_circuit",
    "decode_counts_to_messages",
    "run_message_transfer",
    "run_message_transfer_batch",
    "SweepPoint",
    "SweepResult",
    "parameter_grid",
    "point_seed",
    "run_sweep",
    "Fig2Result",
    "PAPER_FIG2_COUNTS",
    "run_fig2",
    "Fig3Result",
    "default_eta_sweep",
    "run_fig3",
    "MitigationStudyResult",
    "run_mitigation_study",
    "run_network_scale",
    "Experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_result",
    "Table1Result",
    "run_table1",
]
