"""Experiment ``fig_load``: the delivery runtime under sustained load.

The paper evaluates one protocol session at a time; a deployed QSDC service
faces *traffic*.  This experiment drives tens of thousands of messages
through the concurrent delivery runtime (:mod:`repro.runtime`) on a grid
topology and reports the operator-facing load curves: throughput, latency
percentiles (p50/p95/p99/p999), queue-depth profile, and drop/abort/timeout
rates under each backpressure policy.

Two phases, mirroring the scheduler's reservation/execution split:

1. **Live calibration** — a small batch of real protocol sends runs through
   the actual :class:`~repro.runtime.engine.DeliveryEngine` (replay mode, so
   the batch is deterministic) to measure the protocol abort fraction on
   this topology; the wall-clock timings it also measures are reported but
   kept out of the gated metrics.
2. **Load simulation** — :func:`~repro.runtime.loadgen.simulate_load` plays
   four scenarios on a virtual clock with physics-derived service times
   (the scheduler's ``pairs × channel.duration() + hop_overhead`` formula)
   and the calibrated abort probability:

   * ``steady_block``   — Poisson arrivals below capacity, ``block`` policy,
     unbounded queue: the no-drop baseline (CI's load-smoke gate asserts
     zero drops here).
   * ``overload_reject``— uniform arrivals past capacity into a bounded
     queue with ``reject``: fast-failure load shedding at the edge.
   * ``burst_shed``     — bursty arrivals with ``shed_oldest``: bounded
     staleness under overload.
   * ``closed_loop``    — a fixed client population with think time:
     self-limiting closed-loop load.

Every gated number is a pure function of ``seed`` — byte-identical across
reruns, worker counts and machines — which is what lets the artifact
pipeline pin them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.artifacts.metrics import register_metrics
from repro.exceptions import ExperimentError
from repro.runtime.loadgen import LoadResult, ServiceTimeModel, run_live_calibration, simulate_load

__all__ = ["LoadStudyResult", "run_fig_load"]

#: Offered load relative to service capacity, per scenario.
_SCENARIO_LOADS = {
    "steady_block": 0.7,
    "overload_reject": 2.0,
    "burst_shed": 1.5,
}


@dataclass
class LoadStudyResult:
    """Everything one ``fig_load`` run produced."""

    topology_name: str
    num_nodes: int
    workers: int
    message_length: int
    messages_per_scenario: int
    mean_hops: float
    service_capacity: float
    calibration: dict[str, Any]
    scenarios: list[tuple[str, LoadResult]] = field(default_factory=list)

    @property
    def total_offered(self) -> int:
        return sum(result.offered for _, result in self.scenarios)

    def scenario(self, name: str) -> LoadResult:
        for scenario_name, result in self.scenarios:
            if scenario_name == name:
                return result
        raise ExperimentError(f"unknown load scenario {name!r}")


def _mean_route_hops(topology: Any) -> float:
    """Exact mean shortest-hop route length over all ordered node pairs."""
    from repro.network.routing import RoutingTable

    names = list(topology.node_names)
    table = RoutingTable(topology)
    total = count = 0
    for source in names:
        for target in names:
            if source == target:
                continue
            total += max(1, len(table.route(source, target).nodes) - 1)
            count += 1
    return total / count if count else 1.0


def run_fig_load(
    rows: int = 3,
    cols: int = 3,
    messages: int = 25_000,
    message_length: int = 16,
    workers: int = 4,
    queue_capacity: int = 64,
    burst_size: int = 64,
    clients: int = 16,
    jitter: float = 0.05,
    calibration_sends: int = 12,
    hop_overhead: float = 1e-3,
    seed: int = 11,
) -> LoadStudyResult:
    """Run the sustained-load study on a ``rows×cols`` grid.

    *messages* is the per-scenario count — four scenarios run, so the study
    drives ``4 × messages`` sends overall.  ``queue_capacity``/``burst_size``
    shape the overload scenarios; ``clients`` sizes the closed loop;
    ``calibration_sends`` real protocol sends measure the abort fraction.
    All results are deterministic in *seed*.
    """
    if messages < 1:
        raise ExperimentError("messages must be positive")
    if workers < 1:
        raise ExperimentError("workers must be positive")
    from repro.api.config import ServiceConfig
    from repro.experiments.network_scale import build_network

    topology = build_network(topology="grid", rows=rows, cols=cols, qubit_capacity=None)

    calibration = run_live_calibration(
        ServiceConfig.networked(topology),
        sends=calibration_sends,
        seed=seed,
        max_workers=workers,
    )
    model = ServiceTimeModel.from_physics(
        topology,
        message_length=message_length,
        hop_overhead=hop_overhead,
        jitter=jitter,
        abort_probability=calibration["abort_probability"],
    )
    mean_hops = _mean_route_hops(topology)
    mean_service = model.base_time + model.per_hop_time * (mean_hops - 1.0)
    capacity = workers / mean_service  # messages/second the pool can serve

    common = dict(service_model=model, topology=topology, workers=workers)
    scenarios: list[tuple[str, LoadResult]] = [
        (
            "steady_block",
            simulate_load(
                messages=messages,
                seed=seed,
                arrival="poisson",
                arrival_rate=_SCENARIO_LOADS["steady_block"] * capacity,
                policy="block",
                **common,
            ),
        ),
        (
            "overload_reject",
            simulate_load(
                messages=messages,
                seed=seed + 1,
                arrival="uniform",
                arrival_rate=_SCENARIO_LOADS["overload_reject"] * capacity,
                policy="reject",
                queue_capacity=queue_capacity,
                **common,
            ),
        ),
        (
            "burst_shed",
            simulate_load(
                messages=messages,
                seed=seed + 2,
                arrival="burst",
                arrival_rate=_SCENARIO_LOADS["burst_shed"] * capacity,
                burst_size=burst_size,
                policy="shed_oldest",
                queue_capacity=queue_capacity,
                **common,
            ),
        ),
        (
            "closed_loop",
            simulate_load(
                messages=messages,
                seed=seed + 3,
                arrival="closed",
                clients=clients,
                think_time=mean_service,
                policy="block",
                **common,
            ),
        ),
    ]

    return LoadStudyResult(
        topology_name=topology.name,
        num_nodes=topology.num_nodes,
        workers=workers,
        message_length=message_length,
        messages_per_scenario=messages,
        mean_hops=mean_hops,
        service_capacity=capacity,
        calibration=calibration,
        scenarios=scenarios,
    )


@register_metrics(LoadStudyResult)
def load_artifact_metrics(result: LoadStudyResult) -> dict:
    """Gated metrics: deterministic virtual-time numbers only.

    The calibration's wall-clock measurements (``wall_*``) are deliberately
    excluded — they vary run to run, and gated artifact metrics must be
    byte-identical across reruns.
    """
    metrics: dict[str, Any] = {
        "total_offered": result.total_offered,
        "mean_hops": result.mean_hops,
        "service_capacity_msgs_per_s": result.service_capacity,
        "calibration_sends": result.calibration["sends"],
        "calibration_delivered": result.calibration["delivered"],
        "calibration_abort_probability": result.calibration["abort_probability"],
    }
    for name, scenario in result.scenarios:
        summary = scenario.summary()
        for key in (
            "offered",
            "delivered",
            "aborted",
            "rejected",
            "shed",
            "expired",
            "dropped",
            "throughput",
            "utilization",
            "max_queue_depth",
            "latency_p50",
            "latency_p95",
            "latency_p99",
            "latency_p999",
            "queue_wait_p50",
            "queue_wait_p99",
        ):
            metrics[f"{name}_{key}"] = summary[key]
    return metrics
