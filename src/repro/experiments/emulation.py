"""Circuit-level emulation of the protocol's message transfer (paper §IV).

The paper's hardware evaluation collapses one message-carrying EPR pair into a
single two-qubit circuit: prepare ``|Φ+⟩``, apply Alice's encoding Pauli on
her qubit, idle that qubit through ``η`` identity gates (the quantum channel),
and finally run Bob's Bell-state measurement (CNOT + H + computational
readout).  Fig. 2 histograms the decoded outcomes at ``η = 10`` and Fig. 3
sweeps ``η``.

This module builds exactly those circuits and decodes backend counts into
message-symbol counts, so both figures (and their benches) share one code
path.
"""

from __future__ import annotations

from repro.device.backend import NoisyBackend
from repro.device.counts import Counts
from repro.exceptions import ExperimentError
from repro.protocol.encoding import decode_bell_state_to_bits, encode_bits_to_pauli
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import BELL_BITS_TO_STATE
from repro.utils.bits import bits_to_str, bitstring_to_bits

__all__ = [
    "build_message_transfer_circuit",
    "decode_counts_to_messages",
    "run_message_transfer",
    "run_message_transfer_batch",
    "MESSAGE_SYMBOLS",
]

#: The four two-bit message symbols of Fig. 2, in the paper's order.
MESSAGE_SYMBOLS = ("00", "01", "10", "11")


def build_message_transfer_circuit(message: str, eta: int) -> QuantumCircuit:
    """Build the two-qubit emulation circuit for one dense-coded message symbol.

    Qubit 0 is Alice's qubit (encoded and sent through the η-identity-gate
    channel); qubit 1 is Bob's half of the EPR pair.
    """
    if len(message) != 2:
        raise ExperimentError("the emulation circuit encodes exactly two message bits")
    if eta < 0:
        raise ExperimentError("eta must be non-negative")
    bits = bitstring_to_bits(message)
    circuit = QuantumCircuit(2, name=f"uadiqsdc_message_{message}_eta{eta}")

    # EPR-pair preparation (the entanglement source).
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.barrier()

    # Alice's dense-coding operation.
    label = encode_bits_to_pauli(bits)
    if label != "I":
        circuit.pauli(label, [0])
    else:
        circuit.id(0)
    circuit.barrier()

    # The quantum channel: η identity gates on the transmitted qubit, stored
    # as one run-length-encoded instruction so circuit construction and
    # fingerprinting stay O(1) in η.
    circuit.repeat("id", 0, eta)
    circuit.barrier()

    # Bob's Bell-state measurement.
    circuit.cx(0, 1)
    circuit.h(0)
    circuit.measure_all()
    return circuit


def decode_counts_to_messages(counts: Counts) -> dict[str, int]:
    """Convert raw measurement counts into decoded two-bit message counts.

    The circuit measures qubit 0 (the phase bit of the disentangled Bell
    state) into clbit 0 and qubit 1 (the parity bit) into clbit 1, so the raw
    outcome string indexes :data:`~repro.quantum.measurement.BELL_BITS_TO_STATE`
    directly; the Bell state then decodes to the message bits through the
    dense-coding table.
    """
    decoded: dict[str, int] = {}
    for outcome, count in counts.items():
        if len(outcome) != 2:
            raise ExperimentError(
                f"expected two-bit outcomes from the emulation circuit, got {outcome!r}"
            )
        bell_state = BELL_BITS_TO_STATE[outcome]
        message = bits_to_str(decode_bell_state_to_bits(bell_state))
        decoded[message] = decoded.get(message, 0) + int(count)
    return decoded


def run_message_transfer(
    message: str,
    eta: int,
    backend: NoisyBackend,
    shots: int = 1024,
) -> dict[str, int]:
    """Run the emulation circuit on *backend* and return decoded message counts."""
    circuit = build_message_transfer_circuit(message, eta)
    counts = backend.run(circuit, shots=shots)
    return decode_counts_to_messages(counts)


def run_message_transfer_batch(
    messages: "tuple[str, ...] | list[str]",
    eta: int,
    backend: NoisyBackend,
    shots: int = 1024,
) -> list[dict[str, int]]:
    """Run the emulation circuit for several messages through the batched path.

    All circuits are submitted together via
    :meth:`~repro.device.backend.NoisyBackend.run_batch`, so they share one
    compiled-propagator cache — the η-identity-gate channel segment is
    composed once and reused by every message symbol.  Repeated message
    symbols are allowed and sample independently (each circuit draws its own
    multinomial from the backend RNG stream).

    Parameters
    ----------
    messages:
        Message symbols to encode (each a two-bit string); duplicates allowed.
    eta:
        Channel length in identity gates, shared by every circuit.
    backend:
        The backend to execute on.
    shots:
        Shots per message circuit.

    Returns
    -------
    list of dict
        One decoded-counts histogram per entry of *messages*, aligned with
        the input order.
    """
    circuits = [build_message_transfer_circuit(message, eta) for message in messages]
    histograms = backend.run_batch(circuits, shots=shots)
    return [decode_counts_to_messages(counts) for counts in histograms]


def run_message_transfer_raw(
    message: str,
    eta: int,
    backend: NoisyBackend,
    shots: int = 1024,
) -> Counts:
    """Run the emulation circuit and return the *raw* (undecoded) measurement counts.

    The raw histogram is what readout-error mitigation operates on; decode the
    mitigated distribution with :func:`decode_distribution_to_messages`.
    """
    circuit = build_message_transfer_circuit(message, eta)
    return backend.run(circuit, shots=shots)


def decode_distribution_to_messages(distribution: dict[str, float]) -> dict[str, float]:
    """Convert a (possibly mitigated) raw outcome distribution into message probabilities."""
    decoded: dict[str, float] = {}
    for outcome, probability in distribution.items():
        if len(outcome) != 2:
            raise ExperimentError(
                f"expected two-bit outcomes from the emulation circuit, got {outcome!r}"
            )
        bell_state = BELL_BITS_TO_STATE[outcome]
        message = bits_to_str(decode_bell_state_to_bits(bell_state))
        decoded[message] = decoded.get(message, 0.0) + float(probability)
    return decoded
