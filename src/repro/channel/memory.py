"""Quantum memory.

The protocol requires Alice to store her halves of the EPR pairs between the
first DI security check and the encoding step.  The paper assumes an ideal
memory; :class:`QuantumMemory` models that by default but can also apply a
storage decoherence channel per stored time unit, which supports the
extension experiments on imperfect memories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ChannelError
from repro.quantum.channels import KrausChannel
from repro.quantum.density import DensityMatrix

__all__ = ["QuantumMemory", "StoredItem"]


@dataclass
class StoredItem:
    """One stored register: an identifier plus the qubit indices it occupies."""

    key: Any
    qubits: tuple[int, ...]
    stored_at: float


class QuantumMemory:
    """Keyed storage of qubit registers with optional storage decoherence.

    Parameters
    ----------
    decoherence_channel:
        Optional single-qubit :class:`~repro.quantum.channels.KrausChannel`
        applied to every stored qubit per unit of storage time when
        :meth:`retrieve` is called.  ``None`` models the paper's ideal memory.
    """

    def __init__(self, decoherence_channel: KrausChannel | None = None):
        if decoherence_channel is not None and decoherence_channel.num_qubits != 1:
            raise ChannelError("memory decoherence must be a single-qubit channel")
        self.decoherence_channel = decoherence_channel
        self._items: dict[Any, StoredItem] = {}
        self._clock = 0.0

    # -- clock -------------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Current memory time (arbitrary units advanced by :meth:`advance_time`)."""
        return self._clock

    def advance_time(self, delta: float) -> None:
        """Advance the memory clock (e.g. while the DI check round runs)."""
        if delta < 0:
            raise ChannelError("time can only move forward")
        self._clock += delta

    # -- storage --------------------------------------------------------------------------
    def store(self, key: Any, qubits: tuple[int, ...] | list[int]) -> StoredItem:
        """Record that the register *qubits* is now held in memory under *key*."""
        if key in self._items:
            raise ChannelError(f"memory already holds an item with key {key!r}")
        item = StoredItem(key=key, qubits=tuple(int(q) for q in qubits), stored_at=self._clock)
        self._items[key] = item
        return item

    def contains(self, key: Any) -> bool:
        """True if an item with the given key is stored."""
        return key in self._items

    def keys(self) -> list[Any]:
        """Keys of all stored items."""
        return list(self._items)

    def qubits_in_use(self) -> int:
        """Total number of qubits currently held across all stored items.

        Network schedulers use this as the occupancy side of a node's qubit
        capacity check (see :mod:`repro.network.scheduler`).
        """
        return sum(len(item.qubits) for item in self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def retrieve(self, key: Any, state: DensityMatrix | None = None) -> tuple[StoredItem, DensityMatrix | None]:
        """Remove an item from memory, applying storage decoherence if configured.

        If *state* is given, the decoherence channel is applied to each stored
        qubit once per unit of elapsed storage time (rounded down), and the
        evolved state is returned alongside the stored record.
        """
        if key not in self._items:
            raise ChannelError(f"memory holds no item with key {key!r}")
        item = self._items.pop(key)
        if state is None or self.decoherence_channel is None:
            return item, state
        elapsed = int(self._clock - item.stored_at)
        evolved = state
        for _ in range(elapsed):
            for qubit in item.qubits:
                evolved = self.decoherence_channel.apply(evolved, [qubit])
        return item, evolved

    def __repr__(self) -> str:
        ideal = "ideal" if self.decoherence_channel is None else "decohering"
        return f"QuantumMemory({ideal}, items={len(self._items)})"
