"""Communication channels: the η-identity-gate quantum channel, classical channel, memory.

The paper models the quantum channel between Alice and Bob as a chain of
``η`` identity gates executed on the device (each 60 ns long with error
probability ``2.41e-4`` on ``ibm_brisbane``), the classical channel as an
authenticated public channel, and assumes an ideal quantum memory.  This
subpackage implements all three, plus a fibre-loss channel as an extension
for channel-length studies expressed in kilometres rather than gate counts.
"""

from repro.channel.classical_channel import Announcement, ClassicalChannel
from repro.channel.memory import QuantumMemory
from repro.channel.quantum_channel import (
    FiberLossChannel,
    IdentityChainChannel,
    NoiselessChannel,
    QuantumChannel,
)

__all__ = [
    "Announcement",
    "ClassicalChannel",
    "QuantumMemory",
    "FiberLossChannel",
    "IdentityChainChannel",
    "NoiselessChannel",
    "QuantumChannel",
]
