"""Authenticated public classical channel.

The UA-DI-QSDC protocol exchanges several classical announcements: check-qubit
positions, measurement bases and outcomes for the DI security checks, the
positions of the ``D_A`` and ``C_A`` sets, Bob's Bell-measurement results
during authentication and the check-bit verification.  The paper assumes this
channel is authenticated (Eve can read but not modify messages).

:class:`ClassicalChannel` records every announcement in order so that

* the protocol transcript can be audited after the fact, and
* the information-leakage analysis (§III-E) can quantify what an eavesdropper
  reading the channel learns about the secret message (nothing, because
  message-decoding outcomes are never announced).

Eavesdropper taps registered with :meth:`ClassicalChannel.add_tap` receive a
copy of every announcement, which is how the attack models listen in.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ChannelError

__all__ = ["Announcement", "ClassicalChannel"]


@dataclass(frozen=True)
class Announcement:
    """One message on the public classical channel.

    Attributes
    ----------
    sender, receiver:
        Party names ("alice", "bob", or "broadcast" receivers).
    topic:
        Machine-readable label of what is being announced
        (e.g. ``"round1_check_positions"``).
    payload:
        The announced data (positions, bases, outcomes, ...).
    sequence:
        Monotonic index assigned by the channel.
    """

    sender: str
    receiver: str
    topic: str
    payload: Any
    sequence: int


class ClassicalChannel:
    """An authenticated, public, logged classical channel."""

    def __init__(self, name: str = "classical"):
        self.name = name
        self._log: list[Announcement] = []
        self._taps: list[Callable[[Announcement], None]] = []

    # -- messaging ------------------------------------------------------------------
    def send(self, sender: str, receiver: str, topic: str, payload: Any) -> Announcement:
        """Send an announcement and return the logged record.

        The channel is authenticated: the library never mutates payloads in
        transit, and attack models may only *read* them through taps.
        """
        if not topic:
            raise ChannelError("announcements need a non-empty topic")
        announcement = Announcement(
            sender=str(sender),
            receiver=str(receiver),
            topic=str(topic),
            payload=payload,
            sequence=len(self._log),
        )
        self._log.append(announcement)
        for tap in self._taps:
            tap(announcement)
        return announcement

    def broadcast(self, sender: str, topic: str, payload: Any) -> Announcement:
        """Announce to every listener (receiver recorded as ``"broadcast"``)."""
        return self.send(sender, "broadcast", topic, payload)

    # -- reading the log ---------------------------------------------------------------
    @property
    def log(self) -> list[Announcement]:
        """All announcements in order (returns a copy)."""
        return list(self._log)

    def announcements(self, topic: str | None = None, sender: str | None = None) -> list[Announcement]:
        """Filter the log by topic and/or sender."""
        result = self._log
        if topic is not None:
            result = [a for a in result if a.topic == topic]
        if sender is not None:
            result = [a for a in result if a.sender == sender]
        return list(result)

    def last(self, topic: str) -> Announcement:
        """The most recent announcement with the given topic."""
        for announcement in reversed(self._log):
            if announcement.topic == topic:
                return announcement
        raise ChannelError(f"no announcement with topic {topic!r}")

    def topics(self) -> list[str]:
        """All distinct topics that have appeared, in first-appearance order."""
        seen: dict[str, None] = {}
        for announcement in self._log:
            seen.setdefault(announcement.topic, None)
        return list(seen)

    def clear(self) -> None:
        """Erase the log (used between protocol sessions)."""
        self._log.clear()

    def __len__(self) -> int:
        return len(self._log)

    # -- eavesdropping -------------------------------------------------------------------
    def add_tap(self, tap: Callable[[Announcement], None]) -> None:
        """Register a read-only tap invoked for every future announcement."""
        if not callable(tap):
            raise ChannelError("a tap must be callable")
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Announcement], None]) -> None:
        """Unregister a previously added tap."""
        try:
            self._taps.remove(tap)
        except ValueError as exc:
            raise ChannelError("tap was not registered") from exc

    def __repr__(self) -> str:
        return f"ClassicalChannel(name={self.name!r}, announcements={len(self._log)})"
