"""Quantum channel models.

The paper emulates the quantum channel between Alice and Bob as a sequence of
``η`` identity gates on the hardware: an ideal channel is ``U_C = I`` while a
real channel is a noisy approximation whose error grows with ``η`` (each
identity gate takes 60 ns and fails with probability ``2.41e-4`` on
``ibm_brisbane``).  :class:`IdentityChainChannel` reproduces exactly that
model and is what the Fig. 2 / Fig. 3 experiments sweep.

All channels expose two complementary interfaces:

* :meth:`QuantumChannel.extend_circuit` — append the channel's gate sequence
  to a :class:`~repro.quantum.circuit.QuantumCircuit` (this is how the paper's
  emulation composes Alice's and Bob's operations into one circuit);
* :meth:`QuantumChannel.transmit` — apply the channel's noise map directly to
  a :class:`~repro.quantum.density.DensityMatrix`, which the protocol runner
  uses when it simulates pairs analytically instead of via full circuits.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.device.calibration import (
    IBM_BRISBANE_ID_DURATION,
    IBM_BRISBANE_ID_ERROR,
    IBM_BRISBANE_T1,
    IBM_BRISBANE_T2,
)
from repro.exceptions import ChannelError
from repro.quantum.channels import (
    KrausChannel,
    depolarizing_channel,
    identity_channel,
    thermal_relaxation_channel,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density import DensityMatrix

__all__ = [
    "QuantumChannel",
    "NoiselessChannel",
    "DepolarizingChannel",
    "IdentityChainChannel",
    "FiberLossChannel",
]


class QuantumChannel:
    """Interface for one-qubit transmission channels between Alice and Bob."""

    #: Human-readable channel name.
    name: str = "quantum_channel"

    def single_use_channel(self) -> KrausChannel:
        """The CPTP map applied to one qubit per traversal of the channel."""
        raise NotImplementedError

    def duration(self) -> float:
        """Wall-clock time (seconds) one qubit spends in the channel."""
        return 0.0

    def extend_circuit(self, circuit: QuantumCircuit, qubit: int) -> QuantumCircuit:
        """Append the channel's gate realisation for *qubit* to *circuit*.

        The default realisation is a no-op; :class:`IdentityChainChannel`
        overrides it with the η identity gates of the paper's emulation.
        """
        return circuit

    def transmit(self, state: DensityMatrix, qubit: int) -> DensityMatrix:
        """Send one qubit of *state* through the channel and return the new state."""
        return self.single_use_channel().apply(state, [qubit])

    def pauli_probabilities(self) -> "dict[str, float] | None":
        """The channel's Pauli probability mixture, or ``None`` if it has none.

        This is the static-eligibility hook the dispatch layer
        (:mod:`repro.quantum.dispatch`) consults when a protocol session
        forces the stabilizer backend: a channel whose single-use map is a
        stochastic Pauli channel keeps Bell pairs Bell-diagonal, the
        structure the fast paths exploit.
        """
        from repro.quantum.dispatch import pauli_mixture

        return pauli_mixture(self.single_use_channel())

    def is_pauli(self) -> bool:
        """True if the single-use map is a stochastic Pauli channel."""
        return self.pauli_probabilities() is not None

    def transmit_batch(
        self, states: Sequence[DensityMatrix], qubit: int
    ) -> list[DensityMatrix]:
        """Send qubit *qubit* of every state through the channel in one pass.

        The channel map is applied once per *distinct* input state (keyed by
        the raw matrix bytes) and the result is shared between identical
        inputs.  Protocol sessions transmit hundreds of pairs that are all
        the same ``|Φ+⟩`` emission, so the hot loop collapses to a single
        Kraus application; the output order matches the input order.
        Sharing is safe because :class:`~repro.quantum.density.DensityMatrix`
        operations never mutate in place — **and** because :meth:`transmit`
        is deterministic (a CPTP map application), which every channel in
        this module is.  A subclass whose ``transmit`` samples a random
        error realization per use MUST override ``transmit_batch`` too
        (e.g. with a per-pair loop), or all identical pairs of a session
        would silently share one realization instead of drawing
        independently.

        Parameters
        ----------
        states:
            Input states, one per transmitted pair.
        qubit:
            The qubit index (within each state) that traverses the channel.

        Returns
        -------
        list of DensityMatrix
            Transmitted states, aligned with *states*.
        """
        transformed: dict[bytes, DensityMatrix] = {}
        output: list[DensityMatrix] = []
        for state in states:
            key = state.matrix.tobytes()
            result = transformed.get(key)
            if result is None:
                result = self.transmit(state, qubit)
                transformed[key] = result
            output.append(result)
        return output

    def survival_probability(self) -> float:
        """Probability that a traversal applies no error at all (analytic estimate)."""
        return 1.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NoiselessChannel(QuantumChannel):
    """An ideal channel ``U_C = I`` (the paper's closed-system assumption)."""

    name = "noiseless"

    def single_use_channel(self) -> KrausChannel:
        return identity_channel()


@dataclass
class DepolarizingChannel(QuantumChannel):
    """A single-use depolarizing channel — the canonical *Pauli* link model.

    ``ρ → (1 − p) ρ + p/3 (XρX + YρY + ZρZ)``.  Unlike
    :class:`IdentityChainChannel` (whose thermal-relaxation component is not
    a Pauli map), this channel is a stochastic Pauli mixture, so protocol
    sessions over it are *stabilizer-eligible*: the dispatch layer
    (:mod:`repro.quantum.dispatch`) certifies the session physics as
    Bell-diagonal and ``simulator_backend="stabilizer"`` validates.  The
    security-analysis experiment (``fig_security``) uses it as its default
    link so the scenario grid sweeps on the fast path.

    Parameters
    ----------
    probability:
        Total depolarizing probability ``p`` per channel use, in [0, 1].
    """

    probability: float = 0.01

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ChannelError("depolarizing probability must lie in [0, 1]")
        self.name = f"depolarizing(p={self.probability:g})"

    def single_use_channel(self) -> KrausChannel:
        return depolarizing_channel(self.probability)


@dataclass
class IdentityChainChannel(QuantumChannel):
    """The paper's η-identity-gate channel.

    Parameters
    ----------
    eta:
        Number of identity gates the transmitted qubit traverses
        (``10 <= η <= 700`` in the paper's Fig. 3 sweep).
    gate_error:
        Error probability per identity gate; defaults to the ``ibm_brisbane``
        median ``2.41e-4`` quoted in the paper.
    gate_duration:
        Duration of one identity gate; defaults to 60 ns.
    t1, t2:
        Relaxation times used for the decoherence accumulated while the qubit
        idles in the channel; default to the ``ibm_brisbane`` medians.
    include_thermal_relaxation:
        If True (default), the per-gate map is depolarizing + thermal
        relaxation; if False it is depolarizing only (ablation knob).
    """

    eta: int = 10
    gate_error: float = IBM_BRISBANE_ID_ERROR
    gate_duration: float = IBM_BRISBANE_ID_DURATION
    t1: float = IBM_BRISBANE_T1
    t2: float = IBM_BRISBANE_T2
    include_thermal_relaxation: bool = True

    def __post_init__(self):
        if self.eta < 0:
            raise ChannelError(f"eta must be non-negative, got {self.eta}")
        if not 0.0 <= self.gate_error <= 1.0:
            raise ChannelError("gate_error must lie in [0, 1]")
        if self.gate_duration < 0:
            raise ChannelError("gate_duration must be non-negative")
        self.name = f"identity_chain(eta={self.eta})"

    # -- analytic quantities ---------------------------------------------------------
    def duration(self) -> float:
        """Total channel duration ``η * gate_duration`` (0.6 µs at η=10)."""
        return self.eta * self.gate_duration

    def survival_probability(self) -> float:
        """``(1 - p_e)**η`` — the paper's probability that the channel stays error-free."""
        return (1.0 - self.gate_error) ** self.eta

    def per_gate_channel(self) -> KrausChannel:
        """The CPTP map applied per identity gate."""
        channel = depolarizing_channel(self.gate_error)
        if self.include_thermal_relaxation and self.gate_duration > 0:
            channel = channel.compose(
                thermal_relaxation_channel(self.t1, self.t2, self.gate_duration)
            )
        return channel

    def single_use_channel(self) -> KrausChannel:
        """The full-traversal map: the per-gate map composed η times.

        The composed Kraus set grows multiplicatively; for large η the
        depolarizing + relaxation composition is collapsed analytically by
        composing the η-step depolarizing probability and the η-step
        relaxation instead of multiplying Kraus operators, which keeps the
        operator count constant.
        """
        if self.eta == 0:
            return identity_channel()
        # Effective depolarizing probability after eta applications:
        # each step keeps the Bloch vector with factor (1 - p), so the
        # composite shrink factor is (1 - p)**eta.
        effective_p = 1.0 - (1.0 - self.gate_error) ** self.eta
        channel = depolarizing_channel(effective_p)
        if self.include_thermal_relaxation and self.gate_duration > 0:
            channel = channel.compose(
                thermal_relaxation_channel(self.t1, self.t2, self.duration())
            )
        channel.name = self.name
        return channel

    # -- circuit realisation ------------------------------------------------------------
    def extend_circuit(self, circuit: QuantumCircuit, qubit: int) -> QuantumCircuit:
        """Append η identity gates on *qubit*, exactly as the paper's emulation does.

        The chain is stored as one run-length-encoded instruction
        (``repetitions=η``); simulation semantics are identical to η separate
        ``id`` gates, but construction and structure hashing are O(1).
        """
        return circuit.repeat("id", qubit, self.eta)

    def with_eta(self, eta: int) -> "IdentityChainChannel":
        """A copy of this channel with a different η (used by the Fig. 3 sweep)."""
        return IdentityChainChannel(
            eta=eta,
            gate_error=self.gate_error,
            gate_duration=self.gate_duration,
            t1=self.t1,
            t2=self.t2,
            include_thermal_relaxation=self.include_thermal_relaxation,
        )


@dataclass
class FiberLossChannel(QuantumChannel):
    """A fibre channel parameterised by length, for km-scale extensions.

    The paper sweeps channel length in identity-gate counts; deployments
    would sweep kilometres of fibre instead.  Photon loss at ``attenuation_db_per_km``
    is modelled as replacement of the qubit by the maximally mixed state with
    the loss probability (an erasure conservatively mapped onto a fully
    depolarizing event, since the protocol discards inconclusive detections),
    plus optional dephasing per kilometre.
    """

    length_km: float = 1.0
    attenuation_db_per_km: float = 0.2
    dephasing_per_km: float = 0.0
    speed_km_per_s: float = 2.0e5

    def __post_init__(self):
        if self.length_km < 0:
            raise ChannelError("length_km must be non-negative")
        if self.attenuation_db_per_km < 0:
            raise ChannelError("attenuation must be non-negative")
        if not 0.0 <= self.dephasing_per_km <= 1.0:
            raise ChannelError("dephasing_per_km must lie in [0, 1]")
        self.name = f"fiber(length={self.length_km}km)"

    def transmission_probability(self) -> float:
        """Probability that the photon is not lost: ``10**(-attenuation*L/10)``."""
        return 10.0 ** (-self.attenuation_db_per_km * self.length_km / 10.0)

    def survival_probability(self) -> float:
        return self.transmission_probability()

    def duration(self) -> float:
        """Propagation delay of the fibre."""
        if self.speed_km_per_s <= 0:
            raise ChannelError("speed_km_per_s must be positive")
        return self.length_km / self.speed_km_per_s

    def single_use_channel(self) -> KrausChannel:
        loss_probability = 1.0 - self.transmission_probability()
        channel = depolarizing_channel(loss_probability)
        if self.dephasing_per_km > 0 and self.length_km > 0:
            total_dephasing = 1.0 - (1.0 - self.dephasing_per_km) ** self.length_km
            from repro.quantum.channels import phase_damping_channel

            channel = channel.compose(phase_damping_channel(total_dephasing))
        channel.name = self.name
        return channel
