"""repro.runtime — the concurrent delivery runtime.

The messaging facade (:mod:`repro.api`) executes one ``send()`` at a time in
the calling thread.  This package turns it into a *service*: many concurrent
clients, per-node admission control with backpressure, and a sustained-load
harness that drives 10⁴–10⁶ messages through a topology.

* :mod:`repro.runtime.admission` — the admission-control building blocks:
  bounded FIFO queues with configurable backpressure policies
  (``block`` / ``reject`` / ``shed_oldest``), token-bucket rate limiting,
  timeout-based expiry, and :class:`~repro.runtime.admission.NodeCapacityLedger`
  — per-node EPR-pair occupancy built on the same
  :class:`~repro.channel.memory.QuantumMemory` semantics the network
  scheduler reserves capacity with.
* :mod:`repro.runtime.engine` — :class:`~repro.runtime.engine.DeliveryEngine`,
  a thread-pooled concurrent delivery engine behind the
  :meth:`~repro.api.service.MessagingService.send` contract (plus
  :class:`~repro.runtime.engine.AsyncDeliveryEngine`, the asyncio front for
  event-loop clients).  In replay mode (an engine ``seed``) every request's
  randomness derives only from its own deterministic seed, so concurrent
  deliveries are byte-identical to the serial reference oracle whatever the
  worker count — the same parity contract ``run_sweep`` honours.
* :mod:`repro.runtime.loadgen` — the sustained-load harness: open- and
  closed-loop arrival processes (Poisson / uniform / burst), a deterministic
  discrete-event simulation of the runtime under load (virtual clock,
  calibrated service-time model), and live calibration through the real
  engine.  Drives the registered ``fig_load`` experiment.
* :mod:`repro.runtime.interrupt` — cooperative SIGINT handling: a process
  -wide graceful-shutdown flag the load harness and CLI poll so interrupted
  runs still flush their artifacts.

See ``docs/runtime.md`` for the architecture, the backpressure policy
matrix, and the replay-mode guarantees.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "AdmissionQueue",
    "AsyncDeliveryEngine",
    "Delivery",
    "DeliveryEngine",
    "LoadResult",
    "NodeCapacityLedger",
    "SendRequest",
    "ServiceTimeModel",
    "TokenBucket",
    "WeightedFairSelector",
    "replay_engine",
    "serial_reference",
    "simulate_load",
]

#: Lazily re-exported names -> defining module.  Lazy for the same reason as
#: the top-level package: the network scheduler imports
#: :mod:`repro.runtime.admission` at module level, and an eager engine import
#: here would pull the whole api/protocol stack into that import path.
_LAZY_EXPORTS = {
    "AdmissionQueue": "repro.runtime.admission",
    "NodeCapacityLedger": "repro.runtime.admission",
    "TokenBucket": "repro.runtime.admission",
    "WeightedFairSelector": "repro.runtime.admission",
    "AsyncDeliveryEngine": "repro.runtime.engine",
    "Delivery": "repro.runtime.engine",
    "DeliveryEngine": "repro.runtime.engine",
    "SendRequest": "repro.runtime.engine",
    "replay_engine": "repro.runtime.engine",
    "serial_reference": "repro.runtime.engine",
    "LoadResult": "repro.runtime.loadgen",
    "ServiceTimeModel": "repro.runtime.loadgen",
    "simulate_load": "repro.runtime.loadgen",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
