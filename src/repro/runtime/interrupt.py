"""Cooperative graceful-shutdown signalling for long runtime operations.

A sustained-load run can take minutes; killing it with SIGINT should not
discard everything it measured.  This module holds one process-wide event
that long-running loops poll (the load simulator between events, the live
harness between submissions):

* :func:`request_shutdown` sets the flag;
* :func:`shutdown_requested` is the poll the loops call;
* :func:`install_sigint_handler` wires SIGINT to the flag — the *first*
  Ctrl-C requests a graceful drain (the run stops early, marks its result
  ``interrupted`` and still flushes artifacts), a *second* Ctrl-C falls
  through to the default ``KeyboardInterrupt`` for a hard stop.

The flag is cooperative by design: nothing is killed, loops notice the
request at their next poll point.  Callers that install the handler must
restore the previous one (the context manager does both).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.utils.logging import get_logger

__all__ = [
    "graceful_sigint",
    "install_sigint_handler",
    "request_shutdown",
    "reset_shutdown",
    "shutdown_requested",
]

_log = get_logger("runtime.interrupt")

_shutdown = threading.Event()


def request_shutdown() -> None:
    """Ask every polling loop to drain and stop at its next check point."""
    _shutdown.set()


def shutdown_requested() -> bool:
    """Whether a graceful shutdown has been requested."""
    return _shutdown.is_set()


def reset_shutdown() -> None:
    """Clear the flag (call before starting a new interruptible run)."""
    _shutdown.clear()


def install_sigint_handler() -> Any:
    """Route SIGINT to :func:`request_shutdown`; returns the old handler.

    First Ctrl-C: graceful (sets the flag, the run drains and flushes).
    Second Ctrl-C: restores the previous handler and re-raises, so an
    unresponsive run can still be killed the ordinary way.

    Only the main thread of the main interpreter may install signal
    handlers; callers on other threads get ``None`` back and cooperative
    polling still works via :func:`request_shutdown`.
    """
    if threading.current_thread() is not threading.main_thread():
        return None

    previous = signal.getsignal(signal.SIGINT)

    def _handler(signum: int, frame: Any) -> None:
        if shutdown_requested():
            signal.signal(signal.SIGINT, previous)
            raise KeyboardInterrupt
        _log.info("SIGINT: graceful shutdown requested (Ctrl-C again to force)")
        request_shutdown()

    signal.signal(signal.SIGINT, _handler)
    return previous


@contextmanager
def graceful_sigint() -> Iterator[None]:
    """Install the graceful SIGINT handler for the duration of a block."""
    reset_shutdown()
    previous = install_sigint_handler()
    try:
        yield
    finally:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)
        reset_shutdown()
