"""Admission-control building blocks for the concurrent delivery runtime.

Four composable pieces, each clock-agnostic (every method takes ``now`` so
the same classes drive both the wall-clock engine and the virtual-clock load
simulation):

* :class:`TokenBucket` — classic rate limiting: a bucket of ``burst`` tokens
  refilled at ``rate`` per second; a request that finds no token is rate
  limited.
* :class:`AdmissionQueue` — a bounded FIFO with a configurable backpressure
  policy (see the matrix below) and timeout-based expiry: an entry still
  queued past its deadline is dropped the moment it would be dispatched.
* :class:`NodeCapacityLedger` — per-node EPR-pair occupancy accounting built
  on :class:`~repro.channel.memory.QuantumMemory`, extracted from (and still
  used by) the network scheduler's reservation pass, so the runtime and the
  discrete-event network simulator share one definition of "this node has
  capacity".
* :class:`WeightedFairSelector` — deterministic virtual-time weighted-fair
  queuing across priority classes (``control``/``interactive``/``bulk`` by
  convention); the network scheduler's QoS admission builds on it.

Backpressure policy matrix
--------------------------
==============  =============================================================
``block``       The submitter waits for a queue slot (closed-loop clients;
                the queue is effectively bounded by the caller population).
                Nothing is dropped; latency absorbs the backpressure.
``reject``      A request arriving at a full queue is refused immediately
                (load shedding at the edge; the client sees a fast failure).
``shed_oldest`` The new request is admitted and the *oldest* queued request
                is dropped (freshness-first: bounded staleness under
                overload, as in mailbox-style actor runtimes).
==============  =============================================================

Expiry is orthogonal to the policy: with an admission timeout every queued
entry carries a deadline, and entries that exceeded it are resolved as
``expired`` rather than executed.

Deadline boundary (all three policies): an entry is expired strictly
*after* its deadline — at ``now == deadline`` it is still admissible and
:meth:`AdmissionQueue.pop` dispatches it.  The closed interval matches the
deadline's construction (``enqueued_at + timeout`` means "may wait *up to*
``timeout``", so ``timeout=0`` still permits same-tick dispatch) and is
enforced only at dispatch time: :meth:`AdmissionQueue.offer` never expires
entries, so under ``block`` a full queue whose head is past its deadline
still reports ``"full"`` (the head expires on the next ``pop``), and under
``shed_oldest`` a shed that races an expiry at the same tick resolves the
head as *shed*, not expired — the entry leaves through exactly one
accounting channel.  Exact-boundary behaviour for every policy is pinned by
``tests/runtime/test_admission.py``.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError

__all__ = [
    "BACKPRESSURE_POLICIES",
    "PRIORITY_CLASSES",
    "AdmissionQueue",
    "NodeCapacityLedger",
    "QueueEntry",
    "TokenBucket",
    "WeightedFairSelector",
]

#: Backpressure policies accepted by :class:`AdmissionQueue` (and everything
#: built on it: the delivery engine and the load harness).
BACKPRESSURE_POLICIES = ("block", "reject", "shed_oldest")

#: Conventional priority-class names, highest urgency first.  Weighted-fair
#: consumers (:class:`WeightedFairSelector`, the network scheduler's QoS
#: policy) accept arbitrary class names; these are the documented defaults.
PRIORITY_CLASSES = ("control", "interactive", "bulk")


class TokenBucket:
    """Token-bucket rate limiter (``rate`` tokens/second, ``burst`` capacity).

    The bucket starts full.  :meth:`try_acquire` consumes one token if
    available; :meth:`next_token_time` tells a blocking caller when to retry.
    Time flows through the ``now`` arguments, so the bucket works unchanged
    on a virtual clock.
    """

    def __init__(self, rate: float, burst: "float | None" = None):
        if rate <= 0:
            raise ConfigurationError("token-bucket rate must be positive")
        burst = rate if burst is None else burst
        if burst < 1:
            raise ConfigurationError("token-bucket burst must be at least 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst
        self._updated: "float | None" = None

    def _refill(self, now: float) -> None:
        if self._updated is None:
            self._updated = now
            return
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, now: float) -> bool:
        """Consume one token if the bucket holds one; False when rate limited."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def next_token_time(self, now: float) -> float:
        """The earliest time a token will be available (>= *now*)."""
        self._refill(now)
        if self._tokens >= 1.0:
            return now
        return now + (1.0 - self._tokens) / self.rate


@dataclass
class QueueEntry:
    """One queued item: opaque payload plus its admission bookkeeping."""

    item: Any
    enqueued_at: float
    deadline: "float | None" = None

    def expired(self, now: float) -> bool:
        """True strictly after the deadline; ``now == deadline`` is admissible.

        The inclusive boundary makes ``deadline = enqueued_at + timeout``
        mean "may wait up to *timeout*" (so ``timeout=0`` still allows
        same-tick dispatch); pinned by ``tests/runtime/test_admission.py``.
        """
        return self.deadline is not None and now > self.deadline


class AdmissionQueue:
    """A bounded FIFO with backpressure policies and timeout-based expiry.

    Parameters
    ----------
    capacity:
        Maximum queued entries (``None`` = unbounded; the ``block`` policy
        is typically paired with a bound enforced by the submitting side).
    policy:
        One of :data:`BACKPRESSURE_POLICIES`.  The queue itself implements
        ``reject`` and ``shed_oldest``; ``block`` is reported to the caller
        (:meth:`offer` returns ``"full"``) because *waiting* is the caller's
        concern — the threaded engine parks the submitter on a condition
        variable, the discrete-event simulator reschedules the arrival.
    timeout:
        Admission patience: entries queued longer than this are expired at
        dispatch time (``None`` = wait indefinitely).
    """

    def __init__(
        self,
        capacity: "int | None" = None,
        policy: str = "block",
        timeout: "float | None" = None,
    ):
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r}; known: "
                f"{BACKPRESSURE_POLICIES}"
            )
        if capacity is not None and capacity < 1:
            raise ConfigurationError("queue capacity must be positive or None")
        if timeout is not None and timeout < 0:
            raise ConfigurationError("admission timeout must be non-negative or None")
        self.capacity = capacity
        self.policy = policy
        self.timeout = timeout
        self._entries: "deque[QueueEntry]" = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._entries) >= self.capacity

    def offer(self, item: Any, now: float) -> "tuple[str, list[QueueEntry]]":
        """Try to enqueue *item*; returns ``(verdict, shed_entries)``.

        Verdicts: ``"queued"`` (admitted to the queue — possibly after
        shedding the entries returned alongside), ``"rejected"`` (policy
        ``reject`` and the queue is full) or ``"full"`` (policy ``block``
        and the queue is full — the caller must wait and re-offer).
        """
        shed: list[QueueEntry] = []
        if self.full:
            if self.policy == "reject":
                return "rejected", shed
            if self.policy == "block":
                return "full", shed
            while self.full and self._entries:
                shed.append(self._entries.popleft())
        deadline = None if self.timeout is None else now + self.timeout
        self._entries.append(QueueEntry(item, enqueued_at=now, deadline=deadline))
        return "queued", shed

    def pop(self, now: float) -> "tuple[QueueEntry | None, list[QueueEntry]]":
        """Dequeue the next live entry, dropping expired ones along the way.

        Returns ``(entry, expired_entries)``; ``entry`` is ``None`` when the
        queue held only expired entries (or nothing).  An entry whose
        ``deadline == now`` is *not* expired — it dispatches on this call
        (see :meth:`QueueEntry.expired` for the boundary rationale).
        """
        expired: list[QueueEntry] = []
        while self._entries:
            entry = self._entries.popleft()
            if entry.expired(now):
                expired.append(entry)
                continue
            return entry, expired
        return None, expired

    def drain(self) -> "list[QueueEntry]":
        """Remove and return every queued entry (shutdown support)."""
        entries = list(self._entries)
        self._entries.clear()
        return entries

    def remove_expired(self, now: float) -> "list[QueueEntry]":
        """Drop and return every entry whose deadline has passed."""
        live: "deque[QueueEntry]" = deque()
        expired: list[QueueEntry] = []
        for entry in self._entries:
            (expired if entry.expired(now) else live).append(entry)
        self._entries = live
        return expired

    def iter_entries(self) -> "Iterable[QueueEntry]":
        """Read-only iteration in FIFO order (scheduler-style queue scans)."""
        return iter(tuple(self._entries))

    def remove(self, entry: QueueEntry) -> bool:
        """Remove a specific entry (identity comparison); True if present."""
        try:
            self._entries.remove(entry)
        except ValueError:
            return False
        return True


class WeightedFairSelector:
    """Deterministic weighted-fair queuing across priority classes.

    Classic virtual-time WFQ reduced to the admission problem: every class
    carries a *virtual time* — normalised work served so far,
    ``work / weight`` — and :meth:`pick` selects, among the classes that
    currently have eligible work, the one with the smallest virtual time
    (ties broken lexicographically by class name, so selection is a pure
    function of the charge history).  :meth:`charge` advances the winner's
    virtual time by ``cost / weight``; over a saturated period each class
    therefore receives service proportional to its weight — the fairness
    property the scheduler's invariant battery asserts within tolerance.

    Classes never seen before default to weight 1.0 (documented leniency:
    operators can introduce a new traffic class without re-deploying the
    selector).  Scaling every weight by one positive constant leaves the
    selection order unchanged (pinned by the metamorphic tests).
    """

    def __init__(self, weights: "Mapping[str, float] | None" = None):
        self.weights: dict[str, float] = {}
        for name, weight in (weights or {}).items():
            if weight <= 0:
                raise ConfigurationError(
                    f"priority weight for {name!r} must be positive, got {weight}"
                )
            self.weights[str(name)] = float(weight)
        self._virtual: dict[str, float] = {}

    def weight(self, priority: str) -> float:
        """The class's weight (1.0 for classes never configured)."""
        return self.weights.get(priority, 1.0)

    def virtual_time(self, priority: str) -> float:
        """Normalised work served to the class so far (``work / weight``)."""
        return self._virtual.get(priority, 0.0)

    def pick(self, eligible: Iterable[str]) -> "str | None":
        """The eligible class to serve next (None when *eligible* is empty).

        Deterministic: smallest ``(virtual_time, class_name)`` wins.
        """
        best: "str | None" = None
        for priority in eligible:
            if best is None or (
                (self.virtual_time(priority), priority)
                < (self.virtual_time(best), best)
            ):
                best = priority
        return best

    def charge(self, priority: str, cost: float = 1.0) -> None:
        """Record *cost* units of service delivered to the class."""
        if cost < 0:
            raise ConfigurationError("service cost must be non-negative")
        self._virtual[priority] = self.virtual_time(priority) + cost / self.weight(priority)

    def served(self) -> "OrderedDict[str, float]":
        """Per-class normalised service, in sorted class order (telemetry)."""
        return OrderedDict(
            (priority, self._virtual[priority]) for priority in sorted(self._virtual)
        )


class NodeCapacityLedger:
    """Per-node EPR-pair occupancy built on :class:`QuantumMemory` semantics.

    This is the capacity model of the network scheduler's reservation pass,
    extracted so the delivery runtime and the load simulator share it: every
    node of the topology gets a memory spawned from its own configuration
    (:meth:`~repro.network.topology.NetworkNode.spawn_memory`), a reservation
    stores one keyed register per node holding the qubits the session pins
    there, and release retrieves them.  ``fits``/``viable`` reproduce the
    scheduler's admission predicates exactly.

    The *topology* object only needs ``node_names`` and ``node(name)``
    returning objects with ``qubit_capacity`` and ``spawn_memory()`` — the
    :class:`~repro.network.topology.NetworkTopology` contract.
    """

    def __init__(self, topology: Any):
        self.topology = topology
        self.memories = {
            name: topology.node(name).spawn_memory() for name in topology.node_names
        }

    def qubits_in_use(self, name: str) -> int:
        """Occupancy of one node's memory."""
        return self.memories[name].qubits_in_use()

    def fits(self, needs: Mapping[str, int]) -> bool:
        """Whether every needed node can hold its share *right now*."""
        return all(
            self.memories[name].qubits_in_use() + needed <= capacity
            for name, needed in needs.items()
            if (capacity := self.topology.node(name).qubit_capacity) is not None
        )

    def viable(self, needs: Mapping[str, int]) -> bool:
        """Whether the request could ever fit, even on an idle network."""
        return all(
            self.topology.node(name).qubit_capacity is None
            or needed <= self.topology.node(name).qubit_capacity
            for name, needed in needs.items()
        )

    def reserve(self, key: Any, needs: Mapping[str, int]) -> None:
        """Pin *needs* qubits per node under *key* (one register per node)."""
        for name, needed in needs.items():
            self.memories[name].store(key, tuple(range(needed)))

    def release(self, key: Any, needs: Mapping[str, int]) -> None:
        """Release the reservation *key* made on the given nodes."""
        for name in needs:
            self.memories[name].retrieve(key)

    def occupancy(self) -> "OrderedDict[str, int]":
        """Per-node qubits in use, in topology node order (telemetry/debug)."""
        return OrderedDict(
            (name, self.memories[name].qubits_in_use())
            for name in self.topology.node_names
        )
