"""Sustained-load harness: arrival processes, service model, load simulation.

Driving 10⁴–10⁶ real protocol sends takes minutes of wall clock; what the
``fig_load`` experiment needs from that scale is the *queueing* behaviour —
throughput, latency percentiles, drop rates under each backpressure policy.
This module therefore splits the problem the same way the network scheduler
does (serial reservation pass vs. execution pass):

* :func:`run_live_calibration` pushes a small batch of **real** sends through
  the concurrent :class:`~repro.runtime.engine.DeliveryEngine` (replay mode,
  so the batch is deterministic) and measures the abort fraction plus the
  wall-clock service time;
* :func:`simulate_load` is a **deterministic discrete-event simulation** of
  the runtime on a virtual clock: the exact
  :class:`~repro.runtime.admission.AdmissionQueue` /
  :class:`~repro.runtime.admission.TokenBucket` classes the live engine uses,
  a worker pool of ``workers`` slots, and a physics-derived
  :class:`ServiceTimeModel` (the scheduler's per-hop duration formula:
  ``pairs × channel.duration() + hop_overhead``).  Every virtual-time metric
  it reports is a pure function of the seed — safe for the gated artifact
  pipeline — while wall-clock calibration numbers stay in the (volatile)
  info section.

Arrival processes
-----------------
``poisson``    Open loop, exponential inter-arrivals at ``arrival_rate``.
``uniform``    Open loop, constant spacing ``1/arrival_rate``.
``burst``      Open loop, bursts of ``burst_size`` simultaneous arrivals at
               the spacing that preserves the average ``arrival_rate``.
``closed``     Closed loop: ``clients`` clients, each submitting its next
               message ``think_time`` after the previous one resolves.

The simulation polls :func:`repro.runtime.interrupt.shutdown_requested`
between batches of events, so a Ctrl-C on a long run stops early with a
result marked ``interrupted`` (and the experiment still flushes artifacts).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime import interrupt
from repro.runtime.admission import AdmissionQueue, TokenBucket
from repro.utils.logging import get_logger

__all__ = [
    "ARRIVAL_PROCESSES",
    "LoadResult",
    "ServiceTimeModel",
    "percentile",
    "run_live_calibration",
    "simulate_load",
]

_log = get_logger("runtime.loadgen")

#: Arrival processes :func:`simulate_load` implements.
ARRIVAL_PROCESSES = ("poisson", "uniform", "burst", "closed")

# Event kinds, ordered so that at equal timestamps completions free their
# worker slot (and queue space) before new arrivals are considered — the
# same tie-break discipline as the network scheduler's reservation pass.
_COMPLETION = 0
_ARRIVAL = 1

#: Queue-depth time-series samples kept in a result (evenly thinned).
_DEPTH_SAMPLES = 64


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of unsorted *values*.

    Nearest-rank (not interpolated) so the statistic is an actual observed
    latency and stays bit-stable across numpy versions.  Empty input → 0.0
    (artifact-friendly: a run with no completions reports zero, not NaN).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return float(ordered[rank])


@dataclass(frozen=True)
class ServiceTimeModel:
    """Deterministic service-time and outcome model for the load simulation.

    ``base_time`` is the service time of a one-hop message; each extra hop
    adds ``per_hop_time``.  ``jitter`` applies a multiplicative lognormal
    factor (``exp(jitter · N(0,1))``) so service times vary without ever
    going non-positive.  ``abort_probability`` is the chance a send runs to
    completion but aborts (eavesdropping check / decoherence), as calibrated
    from live sends.
    """

    base_time: float
    per_hop_time: float = 0.0
    jitter: float = 0.05
    abort_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_time <= 0:
            raise ConfigurationError("service base_time must be positive")
        if self.per_hop_time < 0 or self.jitter < 0:
            raise ConfigurationError("per_hop_time and jitter must be non-negative")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise ConfigurationError("abort_probability must be a probability")

    @classmethod
    def from_physics(
        cls,
        topology: Any,
        *,
        message_length: int,
        session_params: Any = None,
        hop_overhead: float = 1e-3,
        jitter: float = 0.05,
        abort_probability: float = 0.0,
    ) -> "ServiceTimeModel":
        """Derive per-hop time from the scheduler's duration formula.

        One hop lasts ``pairs_per_hop(message_length) × channel.duration()
        + hop_overhead`` — exactly what
        :class:`~repro.network.scheduler.NetworkScheduler` charges a session
        per hop — averaged over the topology's links.
        """
        from repro.network.sessions import SessionParameters

        params = session_params or SessionParameters()
        pairs = params.pairs_per_hop(message_length)
        durations = [link.quantum_channel.duration() for link in topology.links]
        mean_channel = sum(durations) / len(durations) if durations else 0.0
        hop_time = pairs * mean_channel + hop_overhead
        return cls(
            base_time=hop_time,
            per_hop_time=hop_time,
            jitter=jitter,
            abort_probability=abort_probability,
        )

    def sample(self, rng: np.random.Generator, hops: int = 1) -> float:
        """One service-time draw for a *hops*-hop message."""
        mean = self.base_time + self.per_hop_time * max(0, hops - 1)
        if self.jitter == 0.0:
            return mean
        return mean * math.exp(self.jitter * float(rng.standard_normal()))


@dataclass
class LoadResult:
    """Everything one :func:`simulate_load` run measured (virtual time)."""

    arrival: str
    policy: str
    workers: int
    offered: int
    delivered: int
    aborted: int
    rejected: int
    shed: int
    expired: int
    interrupted: bool
    duration: float
    busy_time: float
    max_queue_depth: int
    latencies: list[float] = field(default_factory=list, repr=False)
    queue_waits: list[float] = field(default_factory=list, repr=False)
    queue_depth_series: list[tuple[float, int]] = field(
        default_factory=list, repr=False
    )

    @property
    def completed(self) -> int:
        """Sends that actually ran (delivered or protocol-aborted)."""
        return self.delivered + self.aborted

    @property
    def dropped(self) -> int:
        """Sends admission control resolved without running."""
        return self.rejected + self.shed + self.expired

    @property
    def throughput(self) -> float:
        """Delivered messages per virtual second."""
        return self.delivered / self.duration if self.duration > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of worker-seconds spent serving."""
        denom = self.workers * self.duration
        return self.busy_time / denom if denom > 0 else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        """Sojourn-time percentiles (p50/p95/p99/p999), nearest-rank."""
        return {
            "p50": percentile(self.latencies, 0.50),
            "p95": percentile(self.latencies, 0.95),
            "p99": percentile(self.latencies, 0.99),
            "p999": percentile(self.latencies, 0.999),
        }

    def summary(self) -> dict[str, Any]:
        """Deterministic flat summary (the shape the artifact metrics use)."""
        stats = self.latency_percentiles()
        return {
            "arrival": self.arrival,
            "policy": self.policy,
            "workers": self.workers,
            "offered": self.offered,
            "delivered": self.delivered,
            "aborted": self.aborted,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
            "dropped": self.dropped,
            "interrupted": self.interrupted,
            "duration": self.duration,
            "throughput": self.throughput,
            "utilization": self.utilization,
            "max_queue_depth": self.max_queue_depth,
            "latency_p50": stats["p50"],
            "latency_p95": stats["p95"],
            "latency_p99": stats["p99"],
            "latency_p999": stats["p999"],
            "queue_wait_p50": percentile(self.queue_waits, 0.50),
            "queue_wait_p99": percentile(self.queue_waits, 0.99),
        }


@dataclass
class _Message:
    """One simulated send travelling through the virtual runtime."""

    mid: int
    client: int
    arrival_time: float
    hops: int


def _open_loop_arrivals(
    arrival: str,
    messages: int,
    arrival_rate: float,
    burst_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Absolute arrival times for the open-loop processes."""
    if arrival == "poisson":
        gaps = rng.exponential(1.0 / arrival_rate, size=messages)
        return np.cumsum(gaps)
    if arrival == "uniform":
        return (np.arange(messages, dtype=float) + 1.0) / arrival_rate
    if arrival == "burst":
        spacing = burst_size / arrival_rate
        bursts = np.repeat(
            np.arange(math.ceil(messages / burst_size), dtype=float) * spacing,
            burst_size,
        )
        return bursts[:messages]
    raise ConfigurationError(f"unknown open-loop arrival process {arrival!r}")


def _route_hops(topology: Any, rng: np.random.Generator, messages: int) -> np.ndarray:
    """Per-message hop counts: random ordered node pairs, shortest-hop routes."""
    if topology is None:
        return np.ones(messages, dtype=np.int64)
    from repro.network.routing import RoutingTable

    names = list(topology.node_names)
    table = RoutingTable(topology)
    hop_counts = np.empty(messages, dtype=np.int64)
    pair_hops: dict[tuple[int, int], int] = {}
    sources = rng.integers(0, len(names), size=messages)
    offsets = rng.integers(1, len(names), size=messages)
    for index in range(messages):
        src = int(sources[index])
        dst = (src + int(offsets[index])) % len(names)
        key = (src, dst)
        if key not in pair_hops:
            route = table.route(names[src], names[dst])
            pair_hops[key] = max(1, len(route.nodes) - 1)
        hop_counts[index] = pair_hops[key]
    return hop_counts


def simulate_load(
    *,
    messages: int,
    service_model: ServiceTimeModel,
    seed: int,
    topology: Any = None,
    arrival: str = "poisson",
    arrival_rate: "float | None" = None,
    clients: int = 8,
    think_time: float = 0.0,
    burst_size: int = 32,
    workers: int = 4,
    queue_capacity: "int | None" = None,
    policy: str = "block",
    rate_limit: "float | None" = None,
    burst_tokens: "float | None" = None,
    admission_timeout: "float | None" = None,
    interrupt_poll: int = 4096,
) -> LoadResult:
    """Deterministic discrete-event simulation of the runtime under load.

    Drives *messages* sends through the admission queue and a pool of
    *workers* service slots on a virtual clock.  All randomness (arrivals,
    route choice, service jitter, abort draws) comes from ``seed``; rerunning
    with the same arguments reproduces every number bit for bit.

    Returns a :class:`LoadResult`; see the module docstring for the arrival
    processes and :mod:`repro.runtime.admission` for the backpressure
    policies.  ``interrupted`` is set (and the tallies cover only the work
    done so far) when a graceful shutdown was requested mid-run.
    """
    if messages < 1:
        raise ConfigurationError("messages must be positive")
    if arrival not in ARRIVAL_PROCESSES:
        raise ConfigurationError(
            f"unknown arrival process {arrival!r}; known: {ARRIVAL_PROCESSES}"
        )
    if arrival != "closed" and (arrival_rate is None or arrival_rate <= 0):
        raise ConfigurationError("open-loop arrivals need a positive arrival_rate")
    if arrival == "closed" and clients < 1:
        raise ConfigurationError("closed-loop arrivals need at least one client")
    if workers < 1:
        raise ConfigurationError("the simulation needs at least one worker slot")

    rng = np.random.default_rng(seed)
    hops = _route_hops(topology, rng, messages)
    queue = AdmissionQueue(
        capacity=queue_capacity, policy=policy, timeout=admission_timeout
    )
    bucket = None if rate_limit is None else TokenBucket(rate_limit, burst_tokens)

    events: list[tuple[float, int, int, Any]] = []
    sequence = 0

    def push(time: float, kind: int, payload: Any) -> None:
        nonlocal sequence
        heapq.heappush(events, (time, kind, sequence, payload))
        sequence += 1

    submitted = 0

    def next_message(client: int, time: float) -> None:
        """Closed loop: schedule the client's next submission, if any remain."""
        nonlocal submitted
        if submitted >= messages:
            return
        message = _Message(submitted, client, time, int(hops[submitted]))
        submitted += 1
        push(time, _ARRIVAL, message)

    if arrival == "closed":
        for client in range(min(clients, messages)):
            next_message(client, 0.0)
    else:
        times = _open_loop_arrivals(arrival, messages, float(arrival_rate), burst_size, rng)
        for mid in range(messages):
            push(float(times[mid]), _ARRIVAL, _Message(mid, mid, float(times[mid]), int(hops[mid])))
        submitted = messages

    free = workers
    busy_time = 0.0
    counts = {"delivered": 0, "aborted": 0, "rejected": 0, "shed": 0, "expired": 0}
    latencies: list[float] = []
    queue_waits: list[float] = []
    depth_series: list[tuple[float, int]] = []
    max_depth = 0
    blocked: list[_Message] = []  # block-policy arrivals waiting for queue space
    now = 0.0
    interrupted = False
    processed = 0

    def resolve_drop(message: _Message, status: str, time: float) -> None:
        counts[status] += 1
        if arrival == "closed":
            next_message(message.client, time + think_time)

    def dispatch(time: float) -> None:
        """Fill free worker slots from the queue (and the blocked backlog)."""
        nonlocal free, max_depth
        while True:
            # Queue space freed by pops lets blocked submitters in, in order.
            while blocked and not queue.full:
                verdict, _ = queue.offer(blocked.pop(0), time)
                assert verdict == "queued"
            if free == 0:
                break
            entry, expired = queue.pop(time)
            for dropped in expired:
                resolve_drop(dropped.item, "expired", time)
            if entry is None:
                break
            free -= 1
            message: _Message = entry.item
            service = service_model.sample(rng, message.hops)
            aborts = (
                service_model.abort_probability > 0.0
                and float(rng.random()) < service_model.abort_probability
            )
            queue_waits.append(time - entry.enqueued_at)
            push(time + service, _COMPLETION, (message, service, aborts))
        max_depth = max(max_depth, len(queue))

    while events:
        processed += 1
        if processed % interrupt_poll == 0 and interrupt.shutdown_requested():
            interrupted = True
            _log.info(
                "load simulation interrupted after %d events (t=%.3f)",
                processed,
                now,
            )
            break
        now, kind, _, payload = heapq.heappop(events)
        if kind == _ARRIVAL:
            message = payload
            if bucket is not None and not bucket.try_acquire(now):
                if policy == "block":
                    # The epsilon guard keeps virtual time strictly advancing
                    # even when float rounding puts the next-token estimate
                    # below the clock's resolution at large timestamps.
                    push(max(bucket.next_token_time(now), now * (1 + 1e-12) + 1e-9),
                         _ARRIVAL, message)
                else:
                    resolve_drop(message, "rejected", now)
                continue
            verdict, shed = queue.offer(message, now)
            for old in shed:
                resolve_drop(old.item, "shed", now)
            if verdict == "rejected":
                resolve_drop(message, "rejected", now)
            elif verdict == "full":
                blocked.append(message)
            if verdict == "queued":
                dispatch(now)
        else:  # _COMPLETION
            message, service, aborts = payload
            free += 1
            busy_time += service
            counts["aborted" if aborts else "delivered"] += 1
            latencies.append(now - message.arrival_time)
            if arrival == "closed":
                next_message(message.client, now + think_time)
            dispatch(now)
        depth_series.append((now, len(queue)))

    if len(depth_series) > _DEPTH_SAMPLES:
        stride = len(depth_series) / _DEPTH_SAMPLES
        depth_series = [
            depth_series[int(index * stride)] for index in range(_DEPTH_SAMPLES)
        ]

    return LoadResult(
        arrival=arrival,
        policy=policy,
        workers=workers,
        offered=messages,
        delivered=counts["delivered"],
        aborted=counts["aborted"],
        rejected=counts["rejected"],
        shed=counts["shed"],
        expired=counts["expired"],
        interrupted=interrupted,
        duration=now,
        busy_time=busy_time,
        max_queue_depth=max_depth,
        latencies=latencies,
        queue_waits=queue_waits,
        queue_depth_series=depth_series,
    )


def run_live_calibration(
    config: Any,
    *,
    sends: int = 16,
    seed: int = 0,
    max_workers: int = 4,
    payload: str = "load calibration probe",
) -> dict[str, Any]:
    """Push real sends through the concurrent engine; measure what the DES needs.

    Runs *sends* identical payloads through a replay-mode
    :class:`~repro.runtime.engine.DeliveryEngine` (so the protocol outcomes
    are deterministic for a given *seed*) and returns::

        {
          "sends": ...,
          "abort_probability": ...,   # deterministic — safe for gated metrics
          "delivered": ...,
          "wall_mean_service_time": ...,  # wall clock — volatile, info only
          "wall_total_time": ...,
        }

    The abort probability feeds :class:`ServiceTimeModel`; the wall-clock
    numbers belong in an artifact's info/timings section, never in gated
    metrics.
    """
    from repro.runtime.engine import replay_engine

    with replay_engine(config, seed=seed, max_workers=max_workers) as engine:
        start = engine.clock()
        deliveries = engine.send_many([payload] * sends)
        elapsed = engine.clock() - start
    completed = [d for d in deliveries if d.report is not None]
    delivered = sum(1 for d in completed if d.ok)
    service_times = [d.service_time for d in completed if d.service_time is not None]
    return {
        "sends": sends,
        "delivered": delivered,
        "abort_probability": (
            (len(completed) - delivered) / len(completed) if completed else 0.0
        ),
        "wall_mean_service_time": (
            sum(service_times) / len(service_times) if service_times else 0.0
        ),
        "wall_total_time": elapsed,
    }
