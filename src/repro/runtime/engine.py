"""The concurrent delivery engine: many clients, one ``send()`` contract.

:class:`DeliveryEngine` serves concurrent clients through the existing
:meth:`repro.api.service.MessagingService.send` contract.  Submissions pass
admission control (token-bucket rate limiting plus a bounded queue with a
backpressure policy — see :mod:`repro.runtime.admission`), fan out to a pool
of worker threads (the protocol sessions are numpy-heavy, which releases the
GIL for real parallelism), and resolve to the same
:class:`~repro.api.report.DeliveryReport` a direct facade call returns,
wrapped in a :class:`Delivery` that adds the runtime's own verdict and
timing.  :class:`AsyncDeliveryEngine` is the asyncio front: ``await
engine.send(...)`` from event-loop clients, with the same semantics.

Replay mode (determinism contract)
----------------------------------
Constructed with a ``seed``, the engine derives every request's protocol
seed deterministically from ``(seed, request_id)`` — and because a
facade send's randomness derives *only* from its own seed (the guarantee
``tests/api`` pins for the local/batch/network backends), the reports the
concurrent engine produces are **byte-identical** to the serial reference
oracle :func:`serial_reference`, for any worker count and any thread
interleaving.  This is the same serial-vs-parallel parity contract
:func:`repro.experiments.sweep.run_sweep` honours.  Admission drops are the
one thing that can break parity, so replay comparisons run with the
``block`` policy and no rate limit — the configuration :func:`replay_engine`
builds.

Graceful shutdown
-----------------
:meth:`DeliveryEngine.close` stops admission, then either drains in-flight
and queued work (``drain=True``, bounded by ``timeout``) or cancels the
queue outright.  The engine is a context manager; the ``with`` form drains
on exit.  A :func:`repro.runtime.interrupt.request_shutdown` flags the
worker loop too, so Ctrl-C on a live load run stops cleanly.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.api.config import ServiceConfig
from repro.api.fragmentation import derive_seed
from repro.api.report import DeliveryReport
from repro.api.service import MessagingService
from repro.exceptions import ConfigurationError
from repro.runtime import interrupt
from repro.runtime.admission import AdmissionQueue, QueueEntry, TokenBucket
from repro.telemetry import runtime as telemetry
from repro.utils.logging import get_logger

__all__ = [
    "AsyncDeliveryEngine",
    "Delivery",
    "DeliveryEngine",
    "SendRequest",
    "replay_engine",
    "request_seed",
    "serial_reference",
]

_log = get_logger("runtime.engine")

#: Terminal verdicts a :class:`Delivery` can carry.  ``delivered`` and
#: ``undelivered`` mean the protocol actually ran (the report tells the
#: story); the others are runtime decisions made before execution.
DELIVERY_STATUSES = (
    "delivered",
    "undelivered",
    "error",
    "rejected",
    "shed",
    "expired",
    "cancelled",
)


def request_seed(engine_seed: int, request_id: int) -> int:
    """Deterministic per-request protocol seed: the replay-mode derivation."""
    return derive_seed(engine_seed, stream="runtime.request", request=request_id)


@dataclass(frozen=True)
class SendRequest:
    """One client submission, as the engine tracks it.

    Attributes
    ----------
    request_id:
        Engine-assigned admission ordinal (deterministic in replay mode:
        requests are numbered in submission order).
    payload, kind, to:
        Passed through to :meth:`MessagingService.send` unchanged.
    seed:
        The resolved per-request protocol seed (explicit caller seed, the
        replay derivation, or ``None`` for fresh entropy).
    """

    request_id: int
    payload: Any
    kind: str = "auto"
    to: "str | None" = None
    seed: "int | None" = None


@dataclass
class Delivery:
    """The runtime's outcome for one request: verdict, report, and timing."""

    request: SendRequest
    status: str
    report: "DeliveryReport | None" = None
    reason: "str | None" = None
    error: "BaseException | None" = None
    enqueued_at: float = 0.0
    started_at: "float | None" = None
    finished_at: "float | None" = None

    @property
    def ok(self) -> bool:
        """True when the payload was delivered end to end."""
        return self.status == "delivered"

    @property
    def dropped(self) -> bool:
        """True when admission control resolved the request without running it."""
        return self.status in ("rejected", "shed", "expired", "cancelled")

    @property
    def queue_wait(self) -> "float | None":
        if self.started_at is None:
            return None
        return self.started_at - self.enqueued_at

    @property
    def service_time(self) -> "float | None":
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def latency(self) -> "float | None":
        """Sojourn time: admission to resolution (None for pre-run drops)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.enqueued_at

    def summary(self) -> dict[str, Any]:
        """JSON-friendly view; the report's summary carries the determinism."""
        return {
            "request_id": self.request.request_id,
            "status": self.status,
            "reason": self.reason,
            "seed": self.request.seed,
            "report": None if self.report is None else self.report.summary(),
        }


@dataclass
class _Tracked:
    """A request plus its future (the unit the queue and workers pass around)."""

    request: SendRequest
    future: "Future[Delivery]"
    enqueued_at: float = 0.0


class DeliveryEngine:
    """Thread-pooled concurrent delivery behind the ``send()`` contract.

    Parameters
    ----------
    config:
        A :class:`~repro.api.config.ServiceConfig` (a service is built from
        it) or an existing :class:`MessagingService` to serve.
    max_workers:
        Worker threads executing sends concurrently.
    queue_capacity:
        Bound on the admission queue (``None`` = unbounded).
    policy:
        Backpressure policy when the queue is full: ``"block"``,
        ``"reject"`` or ``"shed_oldest"``
        (:data:`~repro.runtime.admission.BACKPRESSURE_POLICIES`).
    rate_limit, burst:
        Optional token-bucket admission rate (requests/second, bucket size).
        Under ``block`` a rate-limited submitter waits for a token; under
        the other policies it is rejected with reason ``rate_limited``.
    admission_timeout:
        Patience for queued requests: one queued longer is resolved
        ``expired`` instead of executed (``None`` = wait indefinitely).
    seed:
        Replay-mode master seed — every request without an explicit seed
        gets :func:`request_seed(seed, request_id) <request_seed>`.  ``None``
        leaves unseeded requests on fresh entropy (irreproducible).
    clock:
        Time source for admission bookkeeping (monotonic seconds by
        default; injectable for tests).
    """

    def __init__(
        self,
        config: "ServiceConfig | MessagingService",
        *,
        max_workers: int = 4,
        queue_capacity: "int | None" = None,
        policy: str = "block",
        rate_limit: "float | None" = None,
        burst: "float | None" = None,
        admission_timeout: "float | None" = None,
        seed: "int | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_workers < 1:
            raise ConfigurationError("the engine needs at least one worker")
        self.service = (
            config
            if isinstance(config, MessagingService)
            else MessagingService(config)
        )
        self.max_workers = int(max_workers)
        self.seed = seed
        self.clock = clock
        self._queue = AdmissionQueue(
            capacity=queue_capacity, policy=policy, timeout=admission_timeout
        )
        self._bucket = None if rate_limit is None else TokenBucket(rate_limit, burst)
        self._cond = threading.Condition()
        self._accepting = True
        self._closing = False
        self._drain = True
        self._submitted = 0
        self._inflight = 0
        self.stats: dict[str, int] = {status: 0 for status in DELIVERY_STATUSES}
        self.stats["submitted"] = 0
        self.stats["max_queue_depth"] = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"delivery-worker-{index}",
                daemon=True,
            )
            for index in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- context manager ---------------------------------------------------------
    def __enter__(self) -> "DeliveryEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(drain=exc_info[0] is None)

    # -- submission --------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def submit(
        self,
        payload: Any,
        *,
        to: "str | None" = None,
        kind: str = "auto",
        seed: "int | None" = None,
    ) -> "Future[Delivery]":
        """Admit one send; returns a future resolving to its :class:`Delivery`.

        The future is already resolved (``rejected``/``shed``) when admission
        control drops the request; it resolves from a worker thread
        otherwise.  Under the ``block`` policy this call waits for queue
        space (and rate-limit tokens) instead of dropping.
        """
        with self._cond:
            request = self._register(payload, to=to, kind=kind, seed=seed)
            tracked = _Tracked(request, Future())
            telemetry.counter_inc("runtime.submitted")
            if not self._accepting:
                return self._resolve_drop(tracked, "rejected", "engine_closed")
            if self._bucket is not None and not self._acquire_token(tracked):
                return tracked.future
            return self._enqueue(tracked)

    def send(
        self,
        payload: Any,
        *,
        to: "str | None" = None,
        kind: str = "auto",
        seed: "int | None" = None,
    ) -> Delivery:
        """Blocking convenience: :meth:`submit` and wait for the outcome."""
        return self.submit(payload, to=to, kind=kind, seed=seed).result()

    def send_many(
        self, payloads: Sequence[Any], *, to: "str | None" = None, kind: str = "auto"
    ) -> list[Delivery]:
        """Submit every payload, then wait; outcomes in submission order."""
        futures = [self.submit(payload, to=to, kind=kind) for payload in payloads]
        return [future.result() for future in futures]

    # -- shutdown ----------------------------------------------------------------
    def close(self, drain: bool = True, timeout: "float | None" = None) -> dict[str, int]:
        """Stop admission and shut the workers down; returns the stats dict.

        ``drain=True`` lets queued and in-flight sends finish (bounded by
        *timeout* seconds when given — queued work that cannot start in time
        is cancelled); ``drain=False`` cancels everything still queued and
        only waits for the in-flight sends.  Idempotent.
        """
        with self._cond:
            self._accepting = False
            self._closing = True
            self._drain = drain
            cancelled = [] if drain else self._queue.drain()
            self._cond.notify_all()
        for entry in cancelled:
            self._finish_drop(entry.item, "cancelled", "engine_closed")
        deadline = None if timeout is None else self.clock() + timeout
        for worker in self._workers:
            remaining = None if deadline is None else max(0.0, deadline - self.clock())
            worker.join(remaining)
        if deadline is not None and any(w.is_alive() for w in self._workers):
            # Drain timed out: cancel whatever never started.  In-flight
            # sends cannot be aborted mid-protocol; the daemon workers
            # resolve them in the background.
            with self._cond:
                leftovers = self._queue.drain()
                self._cond.notify_all()
            for entry in leftovers:
                self._finish_drop(entry.item, "cancelled", "drain_timeout")
            _log.warning(
                "engine close timed out after %.3fs with %d workers busy",
                timeout,
                sum(w.is_alive() for w in self._workers),
            )
        return dict(self.stats)

    # -- internals ---------------------------------------------------------------
    def _register(
        self, payload: Any, *, to: "str | None", kind: str, seed: "int | None"
    ) -> SendRequest:
        request_id = self._submitted
        self._submitted += 1
        self.stats["submitted"] += 1
        if seed is None and self.seed is not None:
            seed = request_seed(self.seed, request_id)
        return SendRequest(
            request_id=request_id, payload=payload, kind=kind, to=to, seed=seed
        )

    def _acquire_token(self, tracked: _Tracked) -> bool:
        """Rate-limit gate; blocks (policy ``block``) or drops.  Lock held."""
        assert self._bucket is not None
        while not self._bucket.try_acquire(self.clock()):
            if self._queue.policy != "block":
                self._resolve_drop(tracked, "rejected", "rate_limited")
                return False
            wait = max(1e-4, self._bucket.next_token_time(self.clock()) - self.clock())
            self._cond.wait(wait)
            if not self._accepting:
                self._resolve_drop(tracked, "rejected", "engine_closed")
                return False
        return True

    def _enqueue(self, tracked: _Tracked) -> "Future[Delivery]":
        """Queue admission under the engine lock (blocks when policy says so)."""
        while True:
            now = self.clock()
            tracked.enqueued_at = now
            verdict, shed = self._queue.offer(tracked, now)
            depth = len(self._queue)
            self.stats["max_queue_depth"] = max(self.stats["max_queue_depth"], depth)
            telemetry.observe("runtime.queue_depth", depth)
            for entry in shed:
                self._resolve_drop(entry.item, "shed", "queue_full")
            if verdict == "queued":
                self._cond.notify_all()
                return tracked.future
            if verdict == "rejected":
                return self._resolve_drop(tracked, "rejected", "queue_full")
            # verdict == "full" under the block policy: wait for space.
            self._cond.wait()
            if not self._accepting:
                return self._resolve_drop(tracked, "rejected", "engine_closed")

    def _resolve_drop(
        self, tracked: _Tracked, status: str, reason: str
    ) -> "Future[Delivery]":
        """Resolve a request admission dropped (lock held; resolution is cheap)."""
        self._finish_drop(tracked, status, reason)
        return tracked.future

    def _finish_drop(self, tracked: _Tracked, status: str, reason: str) -> None:
        self.stats[status] += 1
        telemetry.counter_inc(f"runtime.{status}", reason=reason)
        _log.debug(
            "request %d %s (%s)", tracked.request.request_id, status, reason
        )
        if not tracked.future.done():
            tracked.future.set_result(
                Delivery(
                    request=tracked.request,
                    status=status,
                    reason=reason,
                    enqueued_at=tracked.enqueued_at,
                    finished_at=self.clock(),
                )
            )

    def _worker_loop(self) -> None:
        while True:
            expired: list[QueueEntry] = []
            with self._cond:
                tracked = None
                while tracked is None:
                    entry, newly_expired = self._queue.pop(self.clock())
                    expired.extend(newly_expired)
                    if entry is not None:
                        tracked = entry.item
                        break
                    if self._closing:
                        break
                    if expired:
                        break  # resolve expired promptly, then wait again
                    self._cond.wait()
                if tracked is not None:
                    self._inflight += 1
                self._cond.notify_all()
            for dropped in expired:
                self._finish_drop(dropped.item, "expired", "admission_timeout")
            if tracked is None:
                if self._closing:
                    return
                continue
            self._execute(tracked)
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()

    def _execute(self, tracked: _Tracked) -> None:
        request = tracked.request
        if not tracked.future.set_running_or_notify_cancel():
            with self._cond:
                self.stats["cancelled"] += 1
            return
        started = self.clock()
        delivery = Delivery(
            request=request,
            status="error",
            enqueued_at=tracked.enqueued_at,
            started_at=started,
        )
        with telemetry.span(
            "runtime.execute",
            "runtime",
            {"request": request.request_id, "worker": threading.current_thread().name},
        ) as span:
            try:
                report = self.service.send(
                    request.payload,
                    to=request.to,
                    kind=request.kind,
                    seed=request.seed,
                )
                delivery.report = report
                delivery.status = "delivered" if report.success else "undelivered"
            except Exception as error:  # resolve, never kill the worker
                delivery.error = error
                delivery.reason = type(error).__name__
                _log.warning(
                    "request %d raised %s: %s",
                    request.request_id,
                    type(error).__name__,
                    error,
                )
            span.attributes["status"] = delivery.status
        delivery.finished_at = self.clock()
        with self._cond:
            self.stats[delivery.status] += 1
        telemetry.counter_inc(f"runtime.{delivery.status}")
        telemetry.observe("runtime.queue_wait", delivery.queue_wait or 0.0)
        telemetry.observe("runtime.service_time", delivery.service_time or 0.0)
        tracked.future.set_result(delivery)

    def interrupted(self) -> bool:
        """Whether a process-wide graceful shutdown has been requested."""
        return interrupt.shutdown_requested()


def replay_engine(
    config: "ServiceConfig | MessagingService",
    *,
    seed: int,
    max_workers: int = 4,
) -> DeliveryEngine:
    """An engine configured for the replay-mode parity guarantee.

    ``block`` policy, unbounded queue, no rate limit, no expiry: nothing is
    dropped, so the deliveries correspond one-to-one with
    :func:`serial_reference` and their reports are byte-identical.
    """
    return DeliveryEngine(config, max_workers=max_workers, policy="block", seed=seed)


def serial_reference(
    config: "ServiceConfig | MessagingService",
    payloads: Sequence[Any],
    *,
    seed: int,
    to: "str | None" = None,
    kind: str = "auto",
) -> list[DeliveryReport]:
    """The serial oracle replay mode is compared against.

    Runs every payload through one :class:`MessagingService` sequentially
    with the same per-request seeds the engine derives; the concurrent
    engine's reports must match these byte for byte
    (``tests/runtime/test_replay.py``).
    """
    service = (
        config if isinstance(config, MessagingService) else MessagingService(config)
    )
    return [
        service.send(payload, to=to, kind=kind, seed=request_seed(seed, index))
        for index, payload in enumerate(payloads)
    ]


class AsyncDeliveryEngine:
    """asyncio front for :class:`DeliveryEngine`.

    Submission may block (backpressure), so it runs in the event loop's
    default executor; execution futures are bridged with
    :func:`asyncio.wrap_future`.  Usage::

        async with AsyncDeliveryEngine(config, max_workers=8, seed=7) as engine:
            deliveries = await asyncio.gather(
                *(engine.send(payload) for payload in payloads)
            )
    """

    def __init__(self, config: "ServiceConfig | MessagingService", **kwargs: Any):
        self._engine = DeliveryEngine(config, **kwargs)

    @property
    def engine(self) -> DeliveryEngine:
        return self._engine

    @property
    def stats(self) -> dict[str, int]:
        return self._engine.stats

    async def submit(
        self,
        payload: Any,
        *,
        to: "str | None" = None,
        kind: str = "auto",
        seed: "int | None" = None,
    ) -> "Future[Delivery]":
        """Admit one send without waiting for its outcome."""
        import asyncio
        import functools

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self._engine.submit, payload, to=to, kind=kind, seed=seed
            ),
        )

    async def send(
        self,
        payload: Any,
        *,
        to: "str | None" = None,
        kind: str = "auto",
        seed: "int | None" = None,
    ) -> Delivery:
        """Admit one send and await its :class:`Delivery`."""
        import asyncio

        future = await self.submit(payload, to=to, kind=kind, seed=seed)
        return await asyncio.wrap_future(future)

    async def close(self, drain: bool = True, timeout: "float | None" = None) -> dict[str, int]:
        import asyncio
        import functools

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self._engine.close, drain=drain, timeout=timeout)
        )

    async def __aenter__(self) -> "AsyncDeliveryEngine":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close(drain=exc_info[0] is None)
