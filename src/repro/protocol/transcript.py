"""Protocol transcript: classical announcements plus phase-by-phase reports.

Everything Alice and Bob say over the public classical channel, and the
outcome of every protocol phase, ends up in a :class:`ProtocolTranscript`.
The transcript serves three purposes:

* it is the audit trail attached to every :class:`~repro.protocol.results.ProtocolResult`;
* the information-leakage analysis (§III-E) inspects exactly this object to
  show that no message information crosses the classical channel;
* attack models register taps on the underlying
  :class:`~repro.channel.classical_channel.ClassicalChannel` to model an
  eavesdropper listening to all public communication.
"""

from __future__ import annotations

from typing import Any

from repro.channel.classical_channel import Announcement, ClassicalChannel
from repro.protocol.results import PhaseReport
from repro.telemetry import runtime as telemetry

__all__ = ["ProtocolTranscript"]


class ProtocolTranscript:
    """Ordered record of classical announcements and phase outcomes.

    When a telemetry session is active, every :meth:`record_phase` call also
    emits a ``phase.<name>`` span covering the work since the previous phase
    boundary (phase reports are written at the *end* of each phase, so the
    inter-call gap *is* the phase).  :class:`PhaseReport` and
    :class:`~repro.protocol.results.ProtocolResult` are unchanged — spans are
    a parallel, optional record.
    """

    def __init__(self, classical_channel: ClassicalChannel | None = None):
        self.classical_channel = classical_channel or ClassicalChannel()
        self.phases: list[PhaseReport] = []
        self._phase_mark = telemetry.clock_mark()

    # -- classical announcements -----------------------------------------------------
    def announce(self, sender: str, topic: str, payload: Any) -> Announcement:
        """Broadcast an announcement on the public channel and log it."""
        return self.classical_channel.broadcast(sender, topic, payload)

    def announcements(self, topic: str | None = None) -> list[Announcement]:
        """All announcements, optionally filtered by topic."""
        return self.classical_channel.announcements(topic=topic)

    def announced_topics(self) -> list[str]:
        """Distinct announcement topics in order of first appearance."""
        return self.classical_channel.topics()

    # -- phase reports ------------------------------------------------------------------
    def record_phase(self, name: str, passed: bool, **details: Any) -> PhaseReport:
        """Append a phase report (and, under telemetry, a ``phase.*`` span)."""
        report = PhaseReport(name=name, passed=passed, details=dict(details))
        self.phases.append(report)
        if telemetry.enabled():
            mark = self._phase_mark
            self._phase_mark = telemetry.clock_mark()
            telemetry.record_span(
                f"phase.{name}",
                "phase",
                start=mark if mark is not None else self._phase_mark,
                end=self._phase_mark,
                attributes={"passed": passed},
            )
        return report

    def phase(self, name: str) -> PhaseReport:
        """Look up a phase report by name."""
        for report in self.phases:
            if report.name == name:
                return report
        raise KeyError(f"no phase named {name!r}")

    def passed_all_phases(self) -> bool:
        """True if every recorded phase passed."""
        return all(report.passed for report in self.phases)

    def __repr__(self) -> str:
        return (
            f"ProtocolTranscript(phases={[p.name for p in self.phases]}, "
            f"announcements={len(self.classical_channel)})"
        )
