"""Bookkeeping of the shared EPR pairs.

The protocol consumes ``N + 2l + 2d`` EPR pairs: ``d`` for each of the two
DI security-check rounds, ``N`` for the message, ``l`` for Alice's identity
(``C_A``) and ``l`` for Bob's identity (``D_A``/``D_B``).
:class:`EPRPairRegister` tracks which pair index belongs to which role so the
runner, the attack models and the transcript all agree on positions, exactly
as the classical announcements of positions do in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import ProtocolError
from repro.utils.rng import as_rng

__all__ = ["PairRole", "EPRPairRegister"]


class PairRole(Enum):
    """What a shared EPR pair is used for."""

    UNASSIGNED = "unassigned"
    ROUND1_CHECK = "round1_check"
    ROUND2_CHECK = "round2_check"
    MESSAGE = "message"
    ALICE_IDENTITY = "alice_identity"  # the C_A set
    BOB_IDENTITY = "bob_identity"      # the D_A / D_B set


@dataclass
class EPRPairRegister:
    """Role assignment for the ``N + 2l + 2d`` shared pairs.

    Parameters
    ----------
    num_message_pairs:
        ``N`` — pairs carrying the check-bit-augmented message.
    num_identity_pairs:
        ``l`` — pairs per identity (Alice's and Bob's each consume ``l``).
    num_check_pairs:
        ``d`` — pairs per DI security-check round.
    """

    num_message_pairs: int
    num_identity_pairs: int
    num_check_pairs: int
    _roles: dict[int, PairRole] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if self.num_message_pairs < 1:
            raise ProtocolError("the protocol needs at least one message pair")
        if self.num_identity_pairs < 1:
            raise ProtocolError("the protocol needs at least one identity pair per party")
        if self.num_check_pairs < 1:
            raise ProtocolError("the protocol needs at least one check pair per round")
        self._roles = {index: PairRole.UNASSIGNED for index in range(self.total_pairs)}

    # -- sizes -----------------------------------------------------------------------
    @property
    def total_pairs(self) -> int:
        """``N + 2l + 2d``."""
        return (
            self.num_message_pairs
            + 2 * self.num_identity_pairs
            + 2 * self.num_check_pairs
        )

    # -- assignment ------------------------------------------------------------------
    def assign_round1_check(self, rng=None) -> tuple[int, ...]:
        """Pick the first-round check positions among all unassigned pairs."""
        return self._assign(PairRole.ROUND1_CHECK, self.num_check_pairs, rng)

    def assign_round2_check(self, rng=None) -> tuple[int, ...]:
        """Pick the second-round check positions among the remaining pairs."""
        return self._assign(PairRole.ROUND2_CHECK, self.num_check_pairs, rng)

    def assign_message(self, rng=None) -> tuple[int, ...]:
        """Pick the message positions (the set ``M_A``)."""
        return self._assign(PairRole.MESSAGE, self.num_message_pairs, rng)

    def assign_alice_identity(self, rng=None) -> tuple[int, ...]:
        """Pick the ``C_A`` positions carrying Alice's identity."""
        return self._assign(PairRole.ALICE_IDENTITY, self.num_identity_pairs, rng)

    def assign_bob_identity(self, rng=None) -> tuple[int, ...]:
        """Pick the ``D_A`` positions reserved for Bob's identity."""
        return self._assign(PairRole.BOB_IDENTITY, self.num_identity_pairs, rng)

    def _assign(self, role: PairRole, count: int, rng) -> tuple[int, ...]:
        available = self.positions(PairRole.UNASSIGNED)
        if count > len(available):
            raise ProtocolError(
                f"cannot assign {count} pairs to {role.value}: only "
                f"{len(available)} unassigned pairs remain"
            )
        generator = as_rng(rng)
        chosen = generator.choice(len(available), size=count, replace=False)
        positions = tuple(sorted(available[int(i)] for i in chosen))
        for position in positions:
            self._roles[position] = role
        return positions

    # -- queries ---------------------------------------------------------------------
    def role_of(self, position: int) -> PairRole:
        """Role of the pair at *position*."""
        if position not in self._roles:
            raise ProtocolError(f"pair position {position} does not exist")
        return self._roles[position]

    def positions(self, role: PairRole) -> tuple[int, ...]:
        """All positions currently assigned to *role*, in increasing order."""
        return tuple(sorted(p for p, r in self._roles.items() if r is role))

    def assignment_complete(self) -> bool:
        """True once every pair has a role."""
        return all(role is not PairRole.UNASSIGNED for role in self._roles.values())

    def summary(self) -> dict[str, int]:
        """Number of pairs per role (for transcripts and reports)."""
        counts: dict[str, int] = {}
        for role in PairRole:
            counts[role.value] = len(self.positions(role))
        return counts
