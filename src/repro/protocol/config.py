"""Protocol configuration.

:class:`ProtocolConfig` gathers every tunable of a UA-DI-QSDC session: message
and check-bit sizes, identity length ``l``, DI-check sample size ``d``, the
CHSH settings and abort thresholds, the quantum channel model, the
entanglement source and the RNG seed.  :meth:`ProtocolConfig.default` builds a
configuration with the paper's parameters for a given message length.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.channel.quantum_channel import IdentityChainChannel, QuantumChannel
from repro.exceptions import ConfigurationError
from repro.protocol.chsh import CHSHSettings
from repro.quantum.channels import KrausChannel
from repro.protocol.identity import Identity
from repro.protocol.source import EntanglementSource
from repro.utils.rng import as_rng

__all__ = ["ProtocolConfig"]


@dataclass
class ProtocolConfig:
    """All parameters of one protocol session.

    Attributes
    ----------
    message_length:
        ``n`` — number of secret message bits Alice wants to deliver.
    num_check_bits:
        ``c`` — random check bits scattered into the message; ``n + c`` must
        be even.
    identity_pairs:
        ``l`` — EPR pairs per identity; each identity is ``2l`` bits and an
        impersonator survives verification with probability ``(1/4)**l``.
    check_pairs_per_round:
        ``d`` — pairs measured per DI security-check round.
    chsh_settings:
        Measurement angles, phase convention and abort threshold for both
        security-check rounds.
    authentication_tolerance:
        Maximum fraction of identity pairs whose Bell outcome may disagree
        with the expected one before the verifying party aborts.
    check_bit_tolerance:
        Maximum fraction of check bits that may disagree before the message
        is considered corrupted.
    channel:
        The quantum channel Alice's qubits traverse when sent to Bob
        (default: the paper's η=10 identity-gate channel).
    distribution_channel:
        Optional channel applied to Bob's half during the initial
        entanglement sharing (None = ideal distribution, the paper's setting).
    source:
        The entanglement source (default: ideal ``|Φ+⟩`` source).
    memory_decoherence:
        Optional single-qubit Kraus channel applied (via
        :class:`~repro.channel.memory.QuantumMemory`) to Alice's stored halves
        once per unit of hold time between the first DI security check and
        the encoding step.  ``None`` models the paper's ideal memory.
    memory_hold_time:
        How long (in memory time units) Alice holds her halves before
        encoding.  With an ideal memory this has no physical effect; with
        ``memory_decoherence`` set, the channel is applied
        ``int(memory_hold_time)`` times per stored qubit.  Network schedulers
        map session queueing delay onto this knob.
    alice_identity, bob_identity:
        Pre-shared identities; generated from the seed when omitted.
    seed:
        Master seed making the whole session reproducible.
    raise_on_abort:
        If True the runner raises :class:`~repro.exceptions.ProtocolAbort`
        instead of returning an aborted result.
    simulator_backend:
        Pair-state simulation engine: ``"auto"`` (default) engages the
        structure-sharing fast paths — memoised CHSH branch statistics,
        memoised Bell-measurement distributions, shared source emissions —
        which are bit-identical to the reference path by construction;
        ``"dense"`` forces the unmemoised reference path; ``"stabilizer"``
        additionally *requires* (at :meth:`validate` time, via
        :func:`repro.quantum.dispatch.protocol_eligibility`) that every
        quantum process of the session is a Pauli channel, i.e. that pair
        states provably stay Bell-diagonal — failing loudly on non-Pauli
        physics instead of implying a guarantee it cannot keep.
    scenario:
        Optional declarative adversary
        (:class:`~repro.attacks.scenarios.AttackScenario`,
        :class:`~repro.attacks.scenarios.ScenarioSchedule`, a serialised
        dict of either, or the name of a registered preset).  When set and
        no explicit ``attack`` object is handed to
        :class:`~repro.protocol.runner.UADIQSDCProtocol`, the runner builds
        the attack from this spec with seed-derived randomness, so the same
        scenario spec reproduces identical adversarial behaviour across the
        protocol, service and network layers.  ``None`` (default) runs an
        honest session.
    """

    message_length: int
    num_check_bits: int
    identity_pairs: int = 8
    check_pairs_per_round: int = 256
    chsh_settings: CHSHSettings = field(default_factory=CHSHSettings)
    authentication_tolerance: float = 0.25
    check_bit_tolerance: float = 0.15
    channel: QuantumChannel = field(default_factory=lambda: IdentityChainChannel(eta=10))
    distribution_channel: QuantumChannel | None = None
    source: EntanglementSource = field(default_factory=EntanglementSource)
    memory_decoherence: KrausChannel | None = None
    memory_hold_time: float = 0.0
    alice_identity: Identity | None = None
    bob_identity: Identity | None = None
    seed: int | None = None
    raise_on_abort: bool = False
    simulator_backend: str = "auto"
    scenario: object | None = None

    # -- constructors ------------------------------------------------------------
    @staticmethod
    def default_check_bits(message_length: int, num_check_bits: int | None = None) -> int:
        """The check-bit count for a message of *message_length* bits.

        With ``num_check_bits=None`` the paper's rule applies: roughly a
        quarter of the message length, at least 2.  Either way the count is
        adjusted upward by one if needed so ``n + c`` is even (2 bits per
        EPR pair).  This is the single implementation of the rule; the
        service layer (:meth:`repro.api.config.ServiceConfig.protocol_config`)
        and the network layer
        (:meth:`repro.network.sessions.SessionParameters.check_bits_for`)
        delegate here so per-fragment/per-hop sessions stay bit-identical to
        direct :meth:`default` configurations.
        """
        check_bits = (
            max(2, message_length // 4) if num_check_bits is None else num_check_bits
        )
        if (message_length + check_bits) % 2 != 0:
            check_bits += 1
        return check_bits

    @classmethod
    def default(
        cls,
        message_length: int,
        seed: int | None = None,
        eta: int = 10,
        identity_pairs: int = 8,
        check_pairs_per_round: int = 256,
    ) -> "ProtocolConfig":
        """A ready-to-run configuration with the paper's parameters.

        The number of check bits is chosen as roughly a quarter of the message
        length (at least 2), adjusted so ``n + c`` is even.
        """
        if message_length < 1:
            raise ConfigurationError("message_length must be positive")
        num_check_bits = cls.default_check_bits(message_length)
        return cls(
            message_length=message_length,
            num_check_bits=num_check_bits,
            identity_pairs=identity_pairs,
            check_pairs_per_round=check_pairs_per_round,
            channel=IdentityChainChannel(eta=eta),
            seed=seed,
        )

    # -- derived quantities ---------------------------------------------------------
    @property
    def num_message_pairs(self) -> int:
        """``N = (n + c) / 2`` — pairs consumed by the combined message string."""
        return (self.message_length + self.num_check_bits) // 2

    @property
    def total_pairs(self) -> int:
        """``N + 2l + 2d`` — total EPR pairs shared in step 1."""
        return (
            self.num_message_pairs
            + 2 * self.identity_pairs
            + 2 * self.check_pairs_per_round
        )

    @property
    def qubits_per_message_bit(self) -> float:
        """Transmitted qubits per *useful* message bit (1/2 pair = 1 qubit per 2 bits → 0.5...).

        The paper's Table I counts 1 qubit per message bit for the proposed
        protocol: each EPR pair carries 2 bits and consists of 2 qubits.
        """
        return (2 * self.num_message_pairs) / self.message_length

    # -- validation --------------------------------------------------------------------
    def validate(self) -> "ProtocolConfig":
        """Raise :class:`ConfigurationError` if any parameter is inconsistent."""
        if self.message_length < 1:
            raise ConfigurationError("message_length must be positive")
        if self.num_check_bits < 0:
            raise ConfigurationError("num_check_bits cannot be negative")
        if (self.message_length + self.num_check_bits) % 2 != 0:
            raise ConfigurationError(
                "message_length + num_check_bits must be even (2 bits per EPR pair)"
            )
        if self.identity_pairs < 1:
            raise ConfigurationError("identity_pairs must be at least 1")
        if self.check_pairs_per_round < 1:
            raise ConfigurationError("check_pairs_per_round must be at least 1")
        if not 0.0 <= self.authentication_tolerance < 1.0:
            raise ConfigurationError("authentication_tolerance must lie in [0, 1)")
        if not 0.0 <= self.check_bit_tolerance < 1.0:
            raise ConfigurationError("check_bit_tolerance must lie in [0, 1)")
        if self.memory_hold_time < 0:
            raise ConfigurationError("memory_hold_time cannot be negative")
        if self.memory_decoherence is not None and self.memory_decoherence.num_qubits != 1:
            raise ConfigurationError("memory_decoherence must be a single-qubit channel")
        if self.alice_identity is not None and self.alice_identity.num_pairs != self.identity_pairs:
            raise ConfigurationError(
                "alice_identity length does not match identity_pairs"
            )
        if self.bob_identity is not None and self.bob_identity.num_pairs != self.identity_pairs:
            raise ConfigurationError(
                "bob_identity length does not match identity_pairs"
            )
        from repro.quantum.dispatch import BACKEND_CHOICES, protocol_eligibility

        if self.simulator_backend not in BACKEND_CHOICES:
            raise ConfigurationError(
                f"unknown simulator_backend {self.simulator_backend!r}; "
                f"choose from {BACKEND_CHOICES}"
            )
        if self.simulator_backend in ("stabilizer", "stabilizer_batched"):
            eligibility = protocol_eligibility(self)
            if not eligibility.eligible:
                raise ConfigurationError(
                    f"simulator_backend={self.simulator_backend!r} requires "
                    f"Pauli-diagonal session physics: {eligibility.reason}"
                )
        if self.scenario is not None:
            from repro.attacks.scenarios import as_schedule

            try:
                as_schedule(self.scenario)
            except Exception as error:
                raise ConfigurationError(f"invalid scenario: {error}") from error
        return self

    def resolved_scenario(self):
        """The scenario normalised to a :class:`~repro.attacks.scenarios.ScenarioSchedule` (or None)."""
        if self.scenario is None:
            return None
        from repro.attacks.scenarios import as_schedule

        return as_schedule(self.scenario)

    def materialise_identities(self, rng=None) -> tuple[Identity, Identity]:
        """Return (id_A, id_B), generating any that were not supplied explicitly."""
        generator = as_rng(rng)
        alice = self.alice_identity or Identity.random(
            self.identity_pairs, owner="alice", rng=generator
        )
        bob = self.bob_identity or Identity.random(
            self.identity_pairs, owner="bob", rng=generator
        )
        return alice, bob

    def with_channel(self, channel: QuantumChannel) -> "ProtocolConfig":
        """A copy of the configuration with a different quantum channel."""
        return replace(self, channel=channel)

    def with_seed(self, seed: int | None) -> "ProtocolConfig":
        """A copy of the configuration with a different master seed."""
        return replace(self, seed=seed)

    def with_memory(
        self, decoherence: KrausChannel | None, hold_time: float
    ) -> "ProtocolConfig":
        """A copy with a different storage-memory model for Alice's hold period."""
        return replace(
            self, memory_decoherence=decoherence, memory_hold_time=hold_time
        )

    def with_simulator_backend(self, simulator_backend: str) -> "ProtocolConfig":
        """A copy with a different pair-state simulation engine."""
        return replace(self, simulator_backend=simulator_backend)

    def with_scenario(self, scenario) -> "ProtocolConfig":
        """A copy with a declarative adversarial scenario (None = honest)."""
        return replace(self, scenario=scenario)
