"""Resource accounting and communication-efficiency metrics.

Table I compares protocols by "number of qubits per message bit"; this module
generalises that column into a full resource account of a protocol
configuration: how many qubits are transmitted, how many EPR pairs are
consumed per role, how many classical bits cross the public channel, and the
resulting qubit efficiency and Cabello-style total efficiency

    ``η_total = b_s / (q_t + b_t)``

where ``b_s`` is the number of secret message bits delivered, ``q_t`` the
number of transmitted qubits and ``b_t`` the number of classical bits
exchanged.  These figures make the overhead of user authentication and of the
DI security checks explicit — information the paper's Table I summarises only
qualitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ProtocolError
from repro.protocol.config import ProtocolConfig

__all__ = ["ResourceAccount", "account_for_config"]


@dataclass(frozen=True)
class ResourceAccount:
    """Complete resource account of one protocol configuration.

    Attributes
    ----------
    message_bits:
        Secret message bits delivered per session (``n``).
    epr_pairs_total:
        EPR pairs consumed per session (``N + 2l + 2d``).
    transmitted_qubits:
        Qubits Alice physically sends to Bob (her halves of every pair that
        survives round 1: ``N + 2l + d``).
    classical_bits:
        Estimated classical bits announced on the public channel.
    qubits_per_message_bit:
        Transmitted qubits per delivered message bit.
    pair_overhead_fraction:
        Fraction of pairs spent on security and authentication rather than on
        message transport.
    total_efficiency:
        Cabello-style efficiency ``n / (transmitted_qubits + classical_bits)``.
    """

    message_bits: int
    epr_pairs_total: int
    transmitted_qubits: int
    classical_bits: int
    qubits_per_message_bit: float
    pair_overhead_fraction: float
    total_efficiency: float

    def summary(self) -> dict[str, float]:
        """JSON-friendly view of the account."""
        return {
            "message_bits": self.message_bits,
            "epr_pairs_total": self.epr_pairs_total,
            "transmitted_qubits": self.transmitted_qubits,
            "classical_bits": self.classical_bits,
            "qubits_per_message_bit": self.qubits_per_message_bit,
            "pair_overhead_fraction": self.pair_overhead_fraction,
            "total_efficiency": self.total_efficiency,
        }


def _position_announcement_bits(num_positions: int, universe: int) -> int:
    """Classical bits to announce *num_positions* indices out of *universe*."""
    if universe <= 1 or num_positions == 0:
        return 0
    return int(math.ceil(num_positions * math.log2(universe)))


def account_for_config(config: ProtocolConfig) -> ResourceAccount:
    """Compute the resource account of a validated protocol configuration."""
    config.validate()
    n = config.message_length
    num_message_pairs = config.num_message_pairs
    l = config.identity_pairs
    d = config.check_pairs_per_round
    total_pairs = config.total_pairs

    # Alice transmits her half of every pair except the d pairs already
    # measured in round 1 (those never leave the parties' laboratories).
    transmitted_qubits = num_message_pairs + 2 * l + d

    # Classical announcements (public channel), following the runner's topics:
    classical_bits = 0
    # Round-1 positions, plus per-pair basis choices (2 bits) and outcomes (2 bits).
    classical_bits += _position_announcement_bits(d, total_pairs) + 4 * d
    # Round-1 and round-2 CHSH values (reported as ~16-bit fixed point numbers).
    classical_bits += 2 * 16
    # D_A positions, Bob's Bell-outcome announcements (2 bits per pair).
    classical_bits += _position_announcement_bits(l, total_pairs) + 2 * l
    # C_A positions (outcomes are *not* announced — identity reusability).
    classical_bits += _position_announcement_bits(l, total_pairs)
    # Round-2 positions.
    classical_bits += _position_announcement_bits(d, total_pairs)
    # Check-bit disclosure: positions plus values.
    classical_bits += _position_announcement_bits(
        config.num_check_bits, 2 * num_message_pairs
    ) + config.num_check_bits

    if transmitted_qubits <= 0:
        raise ProtocolError("configuration transmits no qubits")

    return ResourceAccount(
        message_bits=n,
        epr_pairs_total=total_pairs,
        transmitted_qubits=transmitted_qubits,
        classical_bits=classical_bits,
        qubits_per_message_bit=transmitted_qubits / n,
        pair_overhead_fraction=1.0 - num_message_pairs / total_pairs,
        total_efficiency=n / (transmitted_qubits + classical_bits),
    )
