"""Device-independent security checks via sampled CHSH estimation.

Both DI security-check rounds of the protocol estimate the CHSH polynomial

    ``S = <a1 b1> + <a1 b2> + <a2 b1> − <a2 b2>``

from measurements on a random subset of ``d`` EPR pairs.  In round 1 Alice and
Bob each measure their own half with independently chosen random settings; in
round 2 Bob holds both halves (Alice has already transmitted her qubits) and
measures both himself.  Either way the estimator is the same: accumulate
coincidence counts per setting pair, form the empirical correlations and the
CHSH value, and compare against the abort threshold (classically ``S ≤ 2``;
the honest value is ``2√2 − ε``).

The measurement settings follow the paper: Alice's angles ``A0=π/4, A1=0,
A2=π/2`` and Bob's ``B1=π/4, B2=−π/4``, with the phase convention discussed in
DESIGN.md so that the ideal value is exactly ``2√2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.exceptions import NonPhysicalStateError, ProtocolError
from repro.quantum.bell import CLASSICAL_CHSH_BOUND, TSIRELSON_BOUND
from repro.quantum.density import DensityMatrix
from repro.quantum.measurement import (
    equatorial_observable,
    measure_observable,
    observable_branches,
    observable_probability,
)
from repro.quantum.states import Statevector
from repro.utils.rng import as_rng

__all__ = ["CHSHSettings", "CHSHEstimate", "DISecurityCheck"]


@dataclass(frozen=True)
class CHSHSettings:
    """Measurement settings for the DI security check.

    Attributes
    ----------
    alice_angles:
        Alice's three possible angles ``(A0, A1, A2)``.  ``A0`` overlaps with
        Bob's ``B1`` and is not used in the CHSH combination; rounds where it
        is drawn are discarded from the estimate (as in E91-style protocols).
    bob_angles:
        Bob's two possible angles ``(B1, B2)``.
    conjugate_bob:
        Phase convention for Bob's observable (see DESIGN.md); the default
        True makes the paper's angles reach ``2√2`` on ``|Φ+⟩``.
    use_a0:
        If True, Alice draws uniformly from all three angles (paper's
        description); if False she draws only from the two CHSH angles, which
        uses the check pairs more efficiently.
    threshold:
        Abort threshold for the estimated CHSH value (classical bound 2).
    """

    alice_angles: tuple[float, float, float] = (math.pi / 4, 0.0, math.pi / 2)
    bob_angles: tuple[float, float] = (math.pi / 4, -math.pi / 4)
    conjugate_bob: bool = True
    use_a0: bool = False
    threshold: float = CLASSICAL_CHSH_BOUND

    def __post_init__(self):
        if len(self.alice_angles) != 3:
            raise ProtocolError("alice_angles must contain exactly three angles (A0, A1, A2)")
        if len(self.bob_angles) != 2:
            raise ProtocolError("bob_angles must contain exactly two angles (B1, B2)")
        if not 0 < self.threshold < TSIRELSON_BOUND:
            raise ProtocolError(
                f"threshold must lie in (0, 2√2), got {self.threshold}"
            )

    @property
    def chsh_alice_angles(self) -> tuple[float, float]:
        """The two Alice angles (A1, A2) entering the CHSH combination."""
        return self.alice_angles[1], self.alice_angles[2]


@dataclass
class CHSHEstimate:
    """Result of one sampled CHSH estimation round.

    Attributes
    ----------
    value:
        The estimated CHSH polynomial ``S``.
    correlations:
        Empirical ``E(A_j, B_k)`` per setting pair ``(j, k)`` with j, k in {1, 2}.
    counts:
        Number of samples per setting pair.
    num_pairs:
        Total number of check pairs consumed (including discarded ``A0`` rounds).
    threshold:
        The abort threshold the estimate was compared against.
    """

    value: float
    correlations: dict[tuple[int, int], float]
    counts: dict[tuple[int, int], int]
    num_pairs: int
    threshold: float = CLASSICAL_CHSH_BOUND

    @property
    def epsilon(self) -> float:
        """Deviation from the ideal value: ``ε = 2√2 − S``."""
        return TSIRELSON_BOUND - self.value

    def passed(self) -> bool:
        """True if the estimate exceeds the abort threshold."""
        return self.value > self.threshold

    def violates_classical_bound(self) -> bool:
        """True if the estimate exceeds the classical CHSH bound of 2."""
        return self.value > CLASSICAL_CHSH_BOUND

    def __repr__(self) -> str:
        return (
            f"CHSHEstimate(value={self.value:.4f}, epsilon={self.epsilon:.4f}, "
            f"num_pairs={self.num_pairs}, passed={self.passed()})"
        )


@dataclass
class DISecurityCheck:
    """Sampled CHSH estimation over a collection of (possibly noisy) EPR pairs.

    Parameters
    ----------
    settings:
        The :class:`CHSHSettings` to use; defaults to the paper's settings.
    memoize:
        If True (default), branch statistics — Alice's outcome probability
        and Bob's conditional outcome probabilities — are computed once per
        distinct (pair state, setting pair) and reused.  A protocol session
        measures hundreds of *identical* Bell-pair states, so this
        collapses the dominant per-session cost (an eigendecomposition and
        two projector applications per pair) to a handful of evaluations.
        The cached statistics are produced by the same
        :func:`~repro.quantum.measurement.observable_branches` code the
        reference path runs and the per-pair RNG consumption is unchanged
        (two uniform draws), so memoised estimates are bit-identical to
        ``memoize=False`` — asserted by
        ``tests/protocol/test_simulator_backend.py``.
    shared_branch_cache:
        Optional externally owned cache used instead of the per-call one
        when ``memoize`` is enabled.  A batch of sessions measuring the same
        pair states (``run_session_batch``, ``BatchBackend``) shares one
        dict so the branch statistics are computed once per batch rather
        than once per session; entries are keyed by the full ``(settings,
        alice setting, bob setting, state bytes)`` tuple, so checks with
        different settings can safely share one cache.
    """

    settings: CHSHSettings = field(default_factory=CHSHSettings)
    memoize: bool = True
    shared_branch_cache: "dict[tuple, tuple] | None" = None

    def estimate(
        self,
        pairs: Sequence["Statevector | DensityMatrix"],
        rng=None,
    ) -> CHSHEstimate:
        """Estimate the CHSH value from single-shot measurements on *pairs*.

        Each pair is measured once: a random Alice setting on qubit 0 and a
        random Bob setting on qubit 1 (this models round 1, where the two
        parties measure their own halves, and round 2 equally well, since in
        round 2 Bob simply performs both measurements himself).
        """
        if not pairs:
            raise ProtocolError("the DI security check needs at least one pair")
        generator = as_rng(rng)

        correlation_sums: dict[tuple[int, int], int] = {
            (j, k): 0 for j in (1, 2) for k in (1, 2)
        }
        counts: dict[tuple[int, int], int] = {(j, k): 0 for j in (1, 2) for k in (1, 2)}
        branch_cache: dict[tuple, tuple] | None = None
        if self.memoize:
            branch_cache = (
                self.shared_branch_cache
                if self.shared_branch_cache is not None
                else {}
            )

        for pair in pairs:
            alice_setting = self._draw_alice_setting(generator)
            bob_setting = int(generator.integers(1, 3))
            if branch_cache is None:
                alice_outcome, bob_outcome = self._measure_pair(
                    pair, alice_setting, bob_setting, generator
                )
            else:
                alice_outcome, bob_outcome = self._measure_pair_memoized(
                    pair, alice_setting, bob_setting, generator, branch_cache
                )
            if alice_setting == 0:
                continue  # A0 rounds are not part of the CHSH combination.
            key = (alice_setting, bob_setting)
            correlation_sums[key] += alice_outcome * bob_outcome
            counts[key] += 1

        correlations = {
            key: (correlation_sums[key] / counts[key]) if counts[key] else 0.0
            for key in counts
        }
        value = (
            correlations[(1, 1)]
            + correlations[(1, 2)]
            + correlations[(2, 1)]
            - correlations[(2, 2)]
        )
        return CHSHEstimate(
            value=value,
            correlations=correlations,
            counts=counts,
            num_pairs=len(pairs),
            threshold=self.settings.threshold,
        )

    # -- internals ----------------------------------------------------------------------
    def _draw_alice_setting(self, generator) -> int:
        if self.settings.use_a0:
            return int(generator.integers(0, 3))
        return int(generator.integers(1, 3))

    def _measure_pair(
        self,
        pair: "Statevector | DensityMatrix",
        alice_setting: int,
        bob_setting: int,
        generator,
    ) -> tuple[int, int]:
        if pair.num_qubits != 2:
            raise ProtocolError("security-check pairs must be two-qubit states")
        alice_angle = self.settings.alice_angles[alice_setting]
        bob_angle = self.settings.bob_angles[bob_setting - 1]
        alice_observable = equatorial_observable(alice_angle)
        bob_observable = equatorial_observable(
            bob_angle, conjugate=self.settings.conjugate_bob
        )
        alice_outcome, post = measure_observable(pair, alice_observable, [0], rng=generator)
        bob_outcome, _ = measure_observable(post, bob_observable, [1], rng=generator)
        return alice_outcome, bob_outcome

    @staticmethod
    def _state_key(pair: "Statevector | DensityMatrix") -> tuple:
        if isinstance(pair, DensityMatrix):
            return ("dm", pair.matrix.tobytes())
        return ("sv", pair.vector.tobytes())

    def _measure_pair_memoized(
        self,
        pair: "Statevector | DensityMatrix",
        alice_setting: int,
        bob_setting: int,
        generator,
        branch_cache: dict[tuple, tuple],
    ) -> tuple[int, int]:
        """Measure one pair using per-state cached branch statistics.

        The cache maps ``(settings, alice setting, bob setting, state
        bytes)`` to ``(p_alice_plus, p_bob_plus | alice=+1, p_bob_plus |
        alice=−1)``, computed on first sight by exactly the operations the
        reference ``_measure_pair`` performs — so subsequent pairs sharing
        the state draw from bit-identical floats with the same two uniform
        draws.  The settings component makes the key safe for caches shared
        across checks (``shared_branch_cache``).  ``None`` marks a
        zero-probability branch (only an error if drawn).
        """
        if pair.num_qubits != 2:
            raise ProtocolError("security-check pairs must be two-qubit states")
        key = (self.settings, alice_setting, bob_setting, self._state_key(pair))
        entry = branch_cache.get(key)
        if entry is None:
            alice_observable = equatorial_observable(
                self.settings.alice_angles[alice_setting]
            )
            bob_observable = equatorial_observable(
                self.settings.bob_angles[bob_setting - 1],
                conjugate=self.settings.conjugate_bob,
            )
            p_alice, post_plus, post_minus = observable_branches(
                pair, alice_observable, [0]
            )
            conditionals = [
                None if post is None else observable_probability(post, bob_observable, [1])
                for post in (post_plus, post_minus)
            ]
            entry = (p_alice, conditionals[0], conditionals[1])
            branch_cache[key] = entry

        p_alice, p_bob_plus, p_bob_minus = entry
        alice_outcome = 1 if generator.random() < p_alice else -1
        p_bob = p_bob_plus if alice_outcome == 1 else p_bob_minus
        if p_bob is None:
            raise NonPhysicalStateError(
                "observable measurement hit a zero-probability outcome"
            )
        bob_outcome = 1 if generator.random() < p_bob else -1
        return alice_outcome, bob_outcome

    @staticmethod
    def required_pairs(target_std_error: float = 0.1) -> int:
        """Rule-of-thumb sample size for a target CHSH standard error.

        Each correlation is estimated from roughly ``d/4`` samples with
        per-sample variance at most 1, so
        ``std(S) ≈ sqrt(4 * 4 / d) = 4 / sqrt(d)``.
        """
        if target_std_error <= 0:
            raise ProtocolError("target_std_error must be positive")
        return int(math.ceil((4.0 / target_std_error) ** 2))
