"""Pre-shared secret identities.

User authentication in the UA-DI-QSDC protocol rests on two pre-shared
secrets: Alice's ``id_A`` and Bob's ``id_B``, each ``2l`` bits long.  During
the authentication phase each party dense-codes its identity onto ``l`` EPR
pairs (two bits per pair) using the same Pauli encoding as the message, and
the other party verifies the resulting Bell states.  :class:`Identity` is the
value object for these secrets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ProtocolError
from repro.utils.bits import (
    Bits,
    bits_to_str,
    bitstring_to_bits,
    chunk_bits,
    hamming_distance,
    random_bits,
    validate_bits,
)

__all__ = ["Identity"]


@dataclass(frozen=True)
class Identity:
    """A ``2l``-bit pre-shared secret identity.

    Attributes
    ----------
    bits:
        The secret bits (big-endian tuple).  The length must be even because
        the identity is dense-coded two bits per EPR pair.
    owner:
        Informational owner label ("alice", "bob", or an attacker name).
    """

    bits: Bits
    owner: str = ""

    def __post_init__(self):
        validated = validate_bits(self.bits)
        if len(validated) == 0:
            raise ProtocolError("an identity needs at least two bits")
        if len(validated) % 2 != 0:
            raise ProtocolError(
                f"identity length must be even (2 bits per EPR pair), got {len(validated)}"
            )
        object.__setattr__(self, "bits", validated)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def random(cls, num_pairs: int, owner: str = "", rng=None) -> "Identity":
        """Generate a fresh random identity spanning *num_pairs* EPR pairs (2l bits)."""
        if num_pairs < 1:
            raise ProtocolError("an identity needs at least one pair")
        return cls(bits=random_bits(2 * num_pairs, rng=rng), owner=owner)

    @classmethod
    def from_string(cls, bitstring: str, owner: str = "") -> "Identity":
        """Parse an identity from a string of '0'/'1' characters."""
        return cls(bits=bitstring_to_bits(bitstring), owner=owner)

    # -- views ---------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Total number of secret bits (``2l``)."""
        return len(self.bits)

    @property
    def num_pairs(self) -> int:
        """Number of EPR pairs needed to encode the identity (``l``)."""
        return len(self.bits) // 2

    def chunks(self) -> list[Bits]:
        """The identity split into the 2-bit groups encoded on each pair."""
        return chunk_bits(self.bits, 2)

    def to_string(self) -> str:
        """The identity as a bitstring."""
        return bits_to_str(self.bits)

    # -- comparisons -----------------------------------------------------------------
    def matches(self, other: "Identity") -> bool:
        """Exact equality of the secret bits (owner labels are ignored)."""
        return self.bits == other.bits

    def mismatch_fraction(self, other: "Identity") -> float:
        """Fraction of bits that differ from another identity of the same length."""
        if other.num_bits != self.num_bits:
            raise ProtocolError("cannot compare identities of different lengths")
        return hamming_distance(self.bits, other.bits) / self.num_bits

    def __str__(self) -> str:
        return f"Identity(owner={self.owner or '?'}, bits={self.to_string()})"
