"""Protocol outcomes: abort reasons, phase reports and the final result object."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.protocol.chsh import CHSHEstimate
from repro.utils.bits import Bits, bits_to_str

__all__ = ["AbortReason", "PhaseReport", "ProtocolResult"]


class AbortReason(Enum):
    """Why a protocol session terminated without delivering the message."""

    NONE = "none"
    ROUND1_CHSH_FAILED = "round1_chsh_failed"
    ROUND2_CHSH_FAILED = "round2_chsh_failed"
    BOB_AUTHENTICATION_FAILED = "bob_authentication_failed"
    ALICE_AUTHENTICATION_FAILED = "alice_authentication_failed"
    MESSAGE_INTEGRITY_FAILED = "message_integrity_failed"


@dataclass
class PhaseReport:
    """Outcome of one protocol phase (kept in the result for auditing)."""

    name: str
    passed: bool
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class ProtocolResult:
    """Everything a caller needs to know about one protocol session.

    Attributes
    ----------
    success:
        True if the message was delivered and every check passed.
    abort_reason:
        Which check failed (``AbortReason.NONE`` on success).
    delivered_message:
        The message Bob decoded (None if the protocol aborted before
        decoding).  On a noisy-but-honest channel this may contain bit errors;
        compare against ``sent_message``.
    sent_message:
        The message Alice intended to send.
    chsh_round1, chsh_round2:
        The two DI security-check estimates (None if not reached).
    bob_authentication_error, alice_authentication_error:
        Fraction of identity pairs whose Bell outcome disagreed with the
        expectation during each verification (None if not reached).
    check_bit_error_rate:
        Fraction of check bits that disagreed during message verification.
    message_bit_error_rate:
        Fraction of delivered message bits differing from the sent message
        (diagnostic; a real receiver cannot compute it).
    phases:
        Ordered list of :class:`PhaseReport` entries.
    pair_summary:
        Number of pairs consumed per role.
    metadata:
        Free-form extras (channel name, attack name, timings, ...).
    """

    success: bool
    abort_reason: AbortReason
    sent_message: Bits
    delivered_message: Bits | None = None
    chsh_round1: CHSHEstimate | None = None
    chsh_round2: CHSHEstimate | None = None
    bob_authentication_error: float | None = None
    alice_authentication_error: float | None = None
    check_bit_error_rate: float | None = None
    message_bit_error_rate: float | None = None
    phases: list[PhaseReport] = field(default_factory=list)
    pair_summary: dict[str, int] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- convenience views ----------------------------------------------------------
    @property
    def delivered_message_string(self) -> str | None:
        """Delivered message as a bitstring (None if not delivered)."""
        if self.delivered_message is None:
            return None
        return bits_to_str(self.delivered_message)

    @property
    def sent_message_string(self) -> str:
        """Sent message as a bitstring."""
        return bits_to_str(self.sent_message)

    @property
    def aborted(self) -> bool:
        """True if the session terminated at a security check."""
        return self.abort_reason is not AbortReason.NONE

    @property
    def eavesdropper_detected(self) -> bool:
        """True if any security mechanism fired (CHSH, authentication or integrity)."""
        return self.aborted

    def message_delivered_correctly(self) -> bool:
        """True if the delivered message equals the sent message bit for bit."""
        return self.delivered_message is not None and tuple(self.delivered_message) == tuple(
            self.sent_message
        )

    def phase(self, name: str) -> PhaseReport:
        """Look up a phase report by name."""
        for report in self.phases:
            if report.name == name:
                return report
        raise KeyError(f"no phase named {name!r}")

    def summary(self) -> dict[str, Any]:
        """A compact JSON-friendly summary used by the experiment harness."""
        return {
            "success": self.success,
            "abort_reason": self.abort_reason.value,
            "sent_message": self.sent_message_string,
            "delivered_message": self.delivered_message_string,
            "chsh_round1": None if self.chsh_round1 is None else self.chsh_round1.value,
            "chsh_round2": None if self.chsh_round2 is None else self.chsh_round2.value,
            "bob_authentication_error": self.bob_authentication_error,
            "alice_authentication_error": self.alice_authentication_error,
            "check_bit_error_rate": self.check_bit_error_rate,
            "message_bit_error_rate": self.message_bit_error_rate,
            "pair_summary": dict(self.pair_summary),
            "metadata": dict(self.metadata),
        }
