"""The UA-DI-QSDC protocol: the paper's primary contribution.

Public API::

    from repro.protocol import ProtocolConfig, UADIQSDCProtocol

    config = ProtocolConfig.default(message_length=16, seed=7)
    result = UADIQSDCProtocol(config).run("1011001110001111")
    assert result.success
    assert result.delivered_message_string == "1011001110001111"

The subpackage is organised by protocol concern:

* :mod:`repro.protocol.identity` — pre-shared ``2l``-bit identities;
* :mod:`repro.protocol.encoding` — dense-coding tables, cover operations and
  the check-bit message pipeline;
* :mod:`repro.protocol.chsh` — the two DI security-check rounds;
* :mod:`repro.protocol.pairs` — role assignment of the ``N + 2l + 2d`` pairs;
* :mod:`repro.protocol.source` — the (untrusted) entanglement source;
* :mod:`repro.protocol.parties` — Alice and Bob;
* :mod:`repro.protocol.config` / :mod:`repro.protocol.results` /
  :mod:`repro.protocol.transcript` — session configuration and outcomes;
* :mod:`repro.protocol.runner` — the end-to-end orchestration.
"""

from repro.protocol.chsh import CHSHEstimate, CHSHSettings, DISecurityCheck
from repro.protocol.config import ProtocolConfig
from repro.protocol.efficiency import ResourceAccount, account_for_config
from repro.protocol.encoding import (
    BELL_STATE_TO_BITS,
    BITS_TO_BELL_STATE,
    BITS_TO_PAULI,
    EncodedMessage,
    MessageEncoder,
    PAULI_TO_BITS,
    decode_bell_state_to_bits,
    encode_bits_to_pauli,
    expected_bell_state,
    random_cover_operations,
)
from repro.protocol.identity import Identity
from repro.protocol.pairs import EPRPairRegister, PairRole
from repro.protocol.parties import Alice, Bob
from repro.protocol.results import AbortReason, PhaseReport, ProtocolResult
from repro.protocol.runner import UADIQSDCProtocol
from repro.protocol.source import EntanglementSource
from repro.protocol.transcript import ProtocolTranscript

__all__ = [
    "CHSHEstimate",
    "CHSHSettings",
    "DISecurityCheck",
    "ProtocolConfig",
    "ResourceAccount",
    "account_for_config",
    "BELL_STATE_TO_BITS",
    "BITS_TO_BELL_STATE",
    "BITS_TO_PAULI",
    "EncodedMessage",
    "MessageEncoder",
    "PAULI_TO_BITS",
    "decode_bell_state_to_bits",
    "encode_bits_to_pauli",
    "expected_bell_state",
    "random_cover_operations",
    "Identity",
    "EPRPairRegister",
    "PairRole",
    "Alice",
    "Bob",
    "AbortReason",
    "PhaseReport",
    "ProtocolResult",
    "UADIQSDCProtocol",
    "EntanglementSource",
    "ProtocolTranscript",
]
