"""Entanglement source.

In the device-independent threat model the EPR source is untrusted — Eve may
even control it.  :class:`EntanglementSource` therefore supports three modes:

* the honest source emitting perfect ``|Φ+⟩`` pairs (qubit 0 → Alice,
  qubit 1 → Bob);
* a noisy-but-honest source that applies a configurable preparation-noise
  channel to each emitted pair (state-preparation errors of the NISQ
  emulation);
* an adversarial source whose emission is overridden by an attack hook.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ProtocolError
from repro.quantum.bell import BellState, bell_state
from repro.quantum.channels import KrausChannel
from repro.quantum.density import DensityMatrix

__all__ = ["EntanglementSource"]


class EntanglementSource:
    """Emits two-qubit entangled pairs for the protocol.

    Parameters
    ----------
    bell_state_kind:
        Which Bell state the honest source emits (the paper uses ``|Φ+⟩``).
    preparation_noise:
        Optional :class:`~repro.quantum.channels.KrausChannel` (1- or 2-qubit)
        applied to every emitted pair to model state-preparation error.
    override:
        Optional callable ``(pair_index) -> DensityMatrix`` replacing the
        emission entirely; used by attack models that control the source.
    """

    def __init__(
        self,
        bell_state_kind: BellState = BellState.PHI_PLUS,
        preparation_noise: KrausChannel | None = None,
        override: Callable[[int], DensityMatrix] | None = None,
    ):
        if not isinstance(bell_state_kind, BellState):
            raise ProtocolError("bell_state_kind must be a BellState")
        if preparation_noise is not None and preparation_noise.num_qubits not in (1, 2):
            raise ProtocolError("preparation noise must act on one or two qubits")
        self.bell_state_kind = bell_state_kind
        self.preparation_noise = preparation_noise
        self.override = override
        self.emitted = 0

    def emit(self, pair_index: int = 0) -> DensityMatrix:
        """Emit one pair (qubit 0 is Alice's half, qubit 1 is Bob's half)."""
        self.emitted += 1
        if self.override is not None:
            state = self.override(pair_index)
            if not isinstance(state, DensityMatrix) or state.num_qubits != 2:
                raise ProtocolError("source override must return a two-qubit DensityMatrix")
            return state
        state = bell_state(self.bell_state_kind).density_matrix()
        if self.preparation_noise is None:
            return state
        if self.preparation_noise.num_qubits == 2:
            return self.preparation_noise.apply(state)
        noisy = self.preparation_noise.apply(state, [0])
        return self.preparation_noise.apply(noisy, [1])

    def emit_many(self, count: int) -> list[DensityMatrix]:
        """Emit *count* pairs in order.

        Without an override hook the emission is a deterministic CPTP map, so
        every pair carries an identical state: it is prepared once and the
        (immutable — :class:`DensityMatrix` operations never mutate in place)
        instance is shared across all *count* slots.  Attack overrides keep
        the per-index emission path.
        """
        if count < 0:
            raise ProtocolError("count must be non-negative")
        if self.override is not None or count == 0:
            return [self.emit(index) for index in range(count)]
        state = self.emit(0)
        self.emitted += count - 1
        return [state] * count

    def __repr__(self) -> str:
        mode = "override" if self.override else (
            "noisy" if self.preparation_noise else "ideal"
        )
        return f"EntanglementSource(state={self.bell_state_kind.name}, mode={mode})"
