"""Orchestration of the full UA-DI-QSDC protocol (paper §II, steps 1–6).

:class:`UADIQSDCProtocol` wires together the source, the channels, the two
parties, the DI security checks and the transcript, and executes one complete
session:

1. entanglement sharing of ``N + 2l + 2d`` pairs;
2. first DI security check (CHSH) on ``d`` random pairs;
3. Alice's encoding (message on ``M_A``, ``id_A`` on ``C_A``, cover
   operations on ``D_A``);
4. transmission of Alice's qubits to Bob, then mutual identity
   authentication (Bob encodes ``id_B`` on ``D_B``, measures and announces;
   Bob then verifies ``id_A`` on ``C_A`` without announcing);
5. second DI security check on the reserved ``d`` pairs;
6. Bell-state decoding of the message and check-bit verification.

Every abort point of the paper maps onto an
:class:`~repro.protocol.results.AbortReason`.  Attack models plug in through
four optional hooks (see :class:`repro.attacks.base.Attack`): source
interception, transmission interception, classical-channel observation and
party impersonation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.channel.memory import QuantumMemory
from repro.exceptions import (
    AuthenticationFailure,
    ProtocolAbort,
    ProtocolError,
    SecurityCheckFailure,
)
from repro.protocol.chsh import CHSHEstimate, DISecurityCheck
from repro.protocol.config import ProtocolConfig
from repro.protocol.encoding import MessageEncoder
from repro.protocol.pairs import EPRPairRegister
from repro.protocol.parties import ALICE_QUBIT, Alice, Bob
from repro.protocol.results import AbortReason, ProtocolResult
from repro.protocol.transcript import ProtocolTranscript
from repro.quantum.density import DensityMatrix
from repro.telemetry import runtime as telemetry
from repro.utils.bits import Bits, bits_to_str, bitstring_to_bits, hamming_distance, validate_bits
from repro.utils.rng import as_rng, derive_rng

__all__ = ["SessionCaches", "UADIQSDCProtocol", "run_session_batch"]


@dataclass
class SessionCaches:
    """Memoisation state shared by a batch of protocol sessions.

    A sweep or service wave runs many sessions whose pairs carry the same
    handful of quantum states (the Pauli encodings of one channel output) and
    whose security checks measure the same states under the same settings.
    Each session's fast path already memoises those statistics *within* the
    session; threading one :class:`SessionCaches` through a batch hoists the
    memo across sessions, so the eigendecompositions and projector
    applications run once per batch instead of once per session.

    Sharing is exact: cache keys are configuration-independent (state bytes,
    plus the CHSH settings for branch statistics), the cached floats are the
    very values a solo session would compute, and per-pair RNG consumption is
    unchanged — so batched sessions are bit-identical to unbatched ones
    (asserted by ``tests/protocol/test_simulator_backend.py``).

    Only engaged on the fast path (``simulator_backend != "dense"``); dense
    reference sessions never memoise.
    """

    chsh_branches: dict = field(default_factory=dict)
    bell_probabilities: dict = field(default_factory=dict)


def run_session_batch(
    sessions: "list[tuple[ProtocolConfig, Any, str | Bits]]",
    caches: SessionCaches | None = None,
) -> list:
    """Run ``(config, attack, message)`` sessions sharing one memo state.

    The fused counterpart of a per-session loop over
    ``UADIQSDCProtocol(config, attack).run(message)``: each session still
    consumes only its own seed-derived randomness (results are bit-identical
    to solo runs), but state-dependent measurement statistics are computed
    once per batch through *caches* (a fresh :class:`SessionCaches` when not
    supplied).
    """
    if caches is None:
        caches = SessionCaches()
    return [
        UADIQSDCProtocol(config, attack=attack, caches=caches).run(message)
        for config, attack, message in sessions
    ]


class UADIQSDCProtocol:
    """One configurable, runnable instance of the UA-DI-QSDC protocol.

    Parameters
    ----------
    config:
        The session parameters (validated on construction).
    attack:
        Optional attack model implementing any subset of the hooks documented
        in :class:`repro.attacks.base.Attack`.  ``None`` runs an honest session.
    caches:
        Optional :class:`SessionCaches` shared with other sessions of a
        batch (see :func:`run_session_batch`).  Only consulted on the fast
        path; bit-identical to running without it.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        attack: Any | None = None,
        caches: "SessionCaches | None" = None,
    ):
        self.config = config.validate()
        self.attack = attack
        self.caches = caches

    # -- public API ----------------------------------------------------------------
    def run(self, message: "str | Bits") -> ProtocolResult:
        """Execute the protocol end to end for the given secret message."""
        with telemetry.span(
            "protocol.session",
            "protocol",
            {"backend": self.config.simulator_backend},
        ) as span:
            result = self._run(message)
            span.attributes["success"] = result.success
            if result.abort_reason is not AbortReason.NONE:
                span.attributes["abort_reason"] = result.abort_reason.value
        return result

    def _run(self, message: "str | Bits") -> ProtocolResult:
        message_bits = self._coerce_message(message)
        rng = as_rng(self.config.seed)
        alice_rng = derive_rng(rng, "alice")
        bob_rng = derive_rng(rng, "bob")
        chsh_rng = derive_rng(rng, "chsh")
        attack_rng = derive_rng(rng, "attack")

        # An explicit attack object wins; otherwise a declarative scenario on
        # the config builds one per run from seed-derived randomness, which is
        # what makes scenario-driven sessions exactly reproducible.  Scenario
        # construction only touches attack_rng, so scenario-less sessions stay
        # bit-identical to the historical path.
        attack = self.attack
        if attack is None:
            schedule = self.config.resolved_scenario()
            if schedule is not None:
                attack = schedule.build(attack_rng)

        identity_alice, identity_bob = self.config.materialise_identities(rng)
        encoding_identity_alice, encoding_identity_bob = self._apply_impersonation(
            identity_alice, identity_bob, attack_rng, attack
        )

        # "dense" runs the unmemoised reference engines; "auto"/"stabilizer"
        # engage the structure-sharing fast paths, which are bit-identical to
        # the reference by construction (see ProtocolConfig.simulator_backend).
        fast_path = self.config.simulator_backend != "dense"
        caches = self.caches if fast_path else None
        alice = Alice(
            identity=encoding_identity_alice, peer_identity=identity_bob, rng=alice_rng
        )
        bob = Bob(
            identity=encoding_identity_bob,
            peer_identity=identity_alice,
            rng=bob_rng,
            memoize=fast_path,
            shared_probability_cache=None if caches is None else caches.bell_probabilities,
        )

        transcript = ProtocolTranscript()
        if attack is not None and hasattr(attack, "observe_announcement"):
            transcript.classical_channel.add_tap(attack.observe_announcement)

        register = EPRPairRegister(
            num_message_pairs=self.config.num_message_pairs,
            num_identity_pairs=self.config.identity_pairs,
            num_check_pairs=self.config.check_pairs_per_round,
        )

        # ----- Step 1: entanglement sharing -------------------------------------------
        pairs = self._share_entanglement(register, attack)
        transcript.record_phase(
            "entanglement_sharing", True, num_pairs=register.total_pairs
        )

        # ----- Step 2: first DI security check ------------------------------------------
        round1_positions = register.assign_round1_check(rng=alice_rng)
        transcript.announce("alice", "round1_check_positions", list(round1_positions))
        security_check = DISecurityCheck(
            self.config.chsh_settings,
            memoize=fast_path,
            shared_branch_cache=None if caches is None else caches.chsh_branches,
        )
        chsh_round1 = security_check.estimate(
            [pairs[p] for p in round1_positions], rng=chsh_rng
        )
        transcript.announce("both", "round1_chsh_value", chsh_round1.value)
        transcript.record_phase(
            "round1_security_check",
            chsh_round1.passed(),
            chsh_value=chsh_round1.value,
            epsilon=chsh_round1.epsilon,
        )
        for position in round1_positions:
            pairs.pop(position)
        if not chsh_round1.passed():
            return self._abort(
                attack,
                AbortReason.ROUND1_CHSH_FAILED,
                message_bits,
                transcript,
                register,
                chsh_round1=chsh_round1,
            )

        # ----- Hold period: Alice stores her halves between check and encoding ---------------
        pairs = self._memory_hold(pairs, transcript)

        # ----- Step 3: Alice's encoding -----------------------------------------------------
        round2_positions = register.assign_round2_check(rng=alice_rng)
        message_positions = register.assign_message(rng=alice_rng)
        alice_id_positions = register.assign_alice_identity(rng=alice_rng)
        bob_id_positions = register.assign_bob_identity(rng=alice_rng)

        encoder = MessageEncoder(self.config.num_check_bits)
        encoded = encoder.encode(message_bits, rng=alice_rng)
        if encoded.num_pairs != len(message_positions):
            raise ProtocolError(
                f"encoded message needs {encoded.num_pairs} pairs but "
                f"{len(message_positions)} were reserved"
            )
        encoding_plan = {}
        encoding_plan.update(alice.message_pauli_plan(encoded.pauli_labels, message_positions))
        encoding_plan.update(alice.identity_pauli_plan(alice_id_positions))
        encoding_plan.update(alice.cover_plan(bob_id_positions))
        pairs = Alice.apply_plan(pairs, encoding_plan)
        transcript.record_phase(
            "encoding",
            True,
            message_pairs=len(message_positions),
            identity_pairs=len(alice_id_positions),
            cover_pairs=len(bob_id_positions),
        )

        # ----- Step 4: transmission and authentication -----------------------------------------
        pairs = self._transmit(pairs, attack)
        transcript.record_phase(
            "transmission", True, channel=self.config.channel.name,
            transmitted_pairs=len(pairs),
        )

        transcript.announce("alice", "bob_identity_positions", list(bob_id_positions))
        pairs = Bob.apply_plan(pairs, bob.identity_pauli_plan(bob_id_positions))
        announced_outcomes = bob.bell_measure(pairs, bob_id_positions)
        transcript.announce(
            "bob",
            "authentication_bsm_results",
            {position: outcome.value for position, outcome in announced_outcomes.items()},
        )
        for position in bob_id_positions:
            pairs.pop(position)
        bob_auth_error = alice.verify_bob(announced_outcomes, bob_id_positions)
        bob_auth_passed = bob_auth_error <= self.config.authentication_tolerance
        transcript.record_phase(
            "bob_authentication", bob_auth_passed, error_rate=bob_auth_error
        )
        if not bob_auth_passed:
            return self._abort(
                attack,
                AbortReason.BOB_AUTHENTICATION_FAILED,
                message_bits,
                transcript,
                register,
                chsh_round1=chsh_round1,
                bob_authentication_error=bob_auth_error,
            )

        transcript.announce("alice", "alice_identity_positions", list(alice_id_positions))
        alice_id_outcomes = bob.bell_measure(pairs, alice_id_positions)
        # The C_A outcomes are deliberately NOT announced so id_A stays reusable.
        for position in alice_id_positions:
            pairs.pop(position)
        alice_auth_error = bob.verify_alice(alice_id_outcomes, alice_id_positions)
        alice_auth_passed = alice_auth_error <= self.config.authentication_tolerance
        transcript.record_phase(
            "alice_authentication", alice_auth_passed, error_rate=alice_auth_error
        )
        if not alice_auth_passed:
            return self._abort(
                attack,
                AbortReason.ALICE_AUTHENTICATION_FAILED,
                message_bits,
                transcript,
                register,
                chsh_round1=chsh_round1,
                bob_authentication_error=bob_auth_error,
                alice_authentication_error=alice_auth_error,
            )

        # ----- Step 5: second DI security check -----------------------------------------------------
        transcript.announce("alice", "round2_check_positions", list(round2_positions))
        chsh_round2 = security_check.estimate(
            [pairs[p] for p in round2_positions], rng=chsh_rng
        )
        transcript.announce("bob", "round2_chsh_value", chsh_round2.value)
        transcript.record_phase(
            "round2_security_check",
            chsh_round2.passed(),
            chsh_value=chsh_round2.value,
            epsilon=chsh_round2.epsilon,
        )
        for position in round2_positions:
            pairs.pop(position)
        if not chsh_round2.passed():
            return self._abort(
                attack,
                AbortReason.ROUND2_CHSH_FAILED,
                message_bits,
                transcript,
                register,
                chsh_round1=chsh_round1,
                chsh_round2=chsh_round2,
                bob_authentication_error=bob_auth_error,
                alice_authentication_error=alice_auth_error,
            )

        # ----- Step 6: message decoding ----------------------------------------------------------------
        message_outcomes = bob.bell_measure(pairs, message_positions)
        combined = Bob.decode_message_bits(message_outcomes, message_positions)
        transcript.announce(
            "alice",
            "check_bit_disclosure",
            {
                "positions": list(encoded.check_positions),
                "values": list(encoded.check_bits),
            },
        )
        decoded_message, decoded_check = MessageEncoder.split_message_and_check(
            combined, encoded.check_positions
        )
        if encoded.check_bits:
            check_bit_error = hamming_distance(decoded_check, encoded.check_bits) / len(
                encoded.check_bits
            )
        else:
            check_bit_error = 0.0
        integrity_passed = check_bit_error <= self.config.check_bit_tolerance
        transcript.record_phase(
            "message_decoding", integrity_passed, check_bit_error_rate=check_bit_error
        )
        if not integrity_passed:
            return self._abort(
                attack,
                AbortReason.MESSAGE_INTEGRITY_FAILED,
                message_bits,
                transcript,
                register,
                chsh_round1=chsh_round1,
                chsh_round2=chsh_round2,
                bob_authentication_error=bob_auth_error,
                alice_authentication_error=alice_auth_error,
                check_bit_error_rate=check_bit_error,
            )

        message_bit_error = (
            hamming_distance(decoded_message, message_bits) / len(message_bits)
        )
        return ProtocolResult(
            success=True,
            abort_reason=AbortReason.NONE,
            sent_message=message_bits,
            delivered_message=decoded_message,
            chsh_round1=chsh_round1,
            chsh_round2=chsh_round2,
            bob_authentication_error=bob_auth_error,
            alice_authentication_error=alice_auth_error,
            check_bit_error_rate=check_bit_error,
            message_bit_error_rate=message_bit_error,
            phases=list(transcript.phases),
            pair_summary=register.summary(),
            metadata=self._metadata(attack),
        )

    # -- helpers -----------------------------------------------------------------------
    @staticmethod
    def _coerce_message(message: "str | Bits") -> Bits:
        if isinstance(message, str):
            return bitstring_to_bits(message)
        return validate_bits(message)

    def _apply_impersonation(self, identity_alice, identity_bob, attack_rng, attack):
        """Swap in the attacker's guessed identity when Eve impersonates a party."""
        encoding_alice, encoding_bob = identity_alice, identity_bob
        if attack is None:
            return encoding_alice, encoding_bob
        impersonates = getattr(attack, "impersonates", None)
        if impersonates == "alice":
            encoding_alice = attack.forged_identity(
                identity_alice.num_pairs, rng=attack_rng
            )
        elif impersonates == "bob":
            encoding_bob = attack.forged_identity(
                identity_bob.num_pairs, rng=attack_rng
            )
        return encoding_alice, encoding_bob

    def _share_entanglement(
        self, register: EPRPairRegister, attack
    ) -> dict[int, DensityMatrix]:
        """Emit every pair and distribute Bob's halves (batched channel pass).

        The honest source emits the same ``|Φ+⟩`` state for every index, so
        the distribution channel is applied through
        :meth:`~repro.channel.quantum_channel.QuantumChannel.transmit_batch`,
        which collapses identical inputs to a single Kraus application.  The
        attack's source hook (if any) still sees every pair individually, in
        index order, after distribution — the same observation point as the
        sequential implementation.
        """
        emitted = self.config.source.emit_many(register.total_pairs)
        if self.config.distribution_channel is not None:
            emitted = self.config.distribution_channel.transmit_batch(emitted, 1)
        if attack is not None and hasattr(attack, "intercept_source"):
            emitted = [
                attack.intercept_source(index, state)
                for index, state in enumerate(emitted)
            ]
        return dict(enumerate(emitted))

    def _memory_hold(
        self, pairs: dict[int, DensityMatrix], transcript: ProtocolTranscript
    ) -> dict[int, DensityMatrix]:
        """Hold Alice's halves in quantum memory while the round-1 check runs.

        Every surviving pair is stored in a :class:`QuantumMemory`, the memory
        clock advances by ``config.memory_hold_time``, and the pairs are
        retrieved again — which applies the configured storage-decoherence
        channel once per stored qubit per elapsed time unit.  With the default
        ideal memory (no decoherence channel, zero hold time) the retrieval
        is an exact pass-through and no phase is recorded, so results stay
        bit-identical to the paper's ideal-memory sessions.

        The decoherence application is batched over *distinct* pair states
        (same structure-sharing trick as ``transmit_batch``): after step 2 all
        surviving pairs carry the same post-distribution state, so a
        decohering hold costs one Kraus application instead of one per pair.
        """
        decoherence = self.config.memory_decoherence
        hold_time = self.config.memory_hold_time
        memory = QuantumMemory(decoherence)
        for position in pairs:
            memory.store(position, (ALICE_QUBIT,))
        memory.advance_time(hold_time)
        evolved_cache: dict[bytes, DensityMatrix] = {}
        held: dict[int, DensityMatrix] = {}
        for position, state in pairs.items():
            key = state.matrix.tobytes()
            cached = evolved_cache.get(key)
            if cached is None:
                _, cached = memory.retrieve(position, state)
                evolved_cache[key] = cached
            else:
                memory.retrieve(position)
            held[position] = cached
        if decoherence is not None or hold_time > 0:
            transcript.record_phase(
                "memory_hold",
                True,
                hold_time=hold_time,
                ideal=decoherence is None,
                stored_pairs=len(held),
            )
        return held

    def _transmit(
        self, pairs: dict[int, DensityMatrix], attack
    ) -> dict[int, DensityMatrix]:
        """Send Alice's halves through the quantum channel (and any attack).

        The channel pass is batched over identical pair states; the attack's
        transmission hook (if any) then intercepts each transmitted pair in
        position order, exactly as in the sequential implementation.
        """
        positions = list(pairs)
        transmitted = self.config.channel.transmit_batch(
            [pairs[position] for position in positions], ALICE_QUBIT
        )
        if attack is not None and hasattr(attack, "intercept_transmission"):
            transmitted = [
                attack.intercept_transmission(position, state)
                for position, state in zip(positions, transmitted)
            ]
        return dict(zip(positions, transmitted))

    def _metadata(self, attack) -> dict[str, Any]:
        return {
            "channel": self.config.channel.name,
            "attack": None if attack is None else getattr(attack, "name", "attack"),
            "identity_pairs": self.config.identity_pairs,
            "check_pairs_per_round": self.config.check_pairs_per_round,
            "message_length": self.config.message_length,
            "num_check_bits": self.config.num_check_bits,
            "simulator_backend": self.config.simulator_backend,
            "session_fast_path": self.config.simulator_backend != "dense",
        }

    def _abort(
        self,
        attack,
        reason: AbortReason,
        message_bits: Bits,
        transcript: ProtocolTranscript,
        register: EPRPairRegister,
        chsh_round1: CHSHEstimate | None = None,
        chsh_round2: CHSHEstimate | None = None,
        bob_authentication_error: float | None = None,
        alice_authentication_error: float | None = None,
        check_bit_error_rate: float | None = None,
    ) -> ProtocolResult:
        if self.config.raise_on_abort:
            message = f"protocol aborted: {reason.value}"
            if reason in (
                AbortReason.ROUND1_CHSH_FAILED,
                AbortReason.ROUND2_CHSH_FAILED,
            ):
                raise SecurityCheckFailure(reason.value, message)
            if reason in (
                AbortReason.BOB_AUTHENTICATION_FAILED,
                AbortReason.ALICE_AUTHENTICATION_FAILED,
            ):
                raise AuthenticationFailure(reason.value, message)
            raise ProtocolAbort(reason.value, message)
        return ProtocolResult(
            success=False,
            abort_reason=reason,
            sent_message=message_bits,
            delivered_message=None,
            chsh_round1=chsh_round1,
            chsh_round2=chsh_round2,
            bob_authentication_error=bob_authentication_error,
            alice_authentication_error=alice_authentication_error,
            check_bit_error_rate=check_bit_error_rate,
            message_bit_error_rate=None,
            phases=list(transcript.phases),
            pair_summary=register.summary(),
            metadata=self._metadata(attack),
        )
