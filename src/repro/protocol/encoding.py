"""Dense-coding maps: classical bits ↔ Pauli operations ↔ Bell states.

The protocol encodes two classical bits per EPR pair by applying one of the
four Pauli operators to Alice's half of a ``|Φ+⟩`` pair (Table: 00 → I,
01 → σz, 10 → σx, 11 → iσy).  Bob decodes by Bell-state measurement: the
observed Bell state identifies the applied Pauli and therefore the two bits.
Cover operations — uniformly random Paulis Alice applies on the ``D_A``
qubits — reuse the same algebra: the Bell state observed after Bob encodes
``id_B`` on his half is determined by the *composition* of the cover Pauli
(on qubit 0) and Bob's Pauli (on qubit 1), which :func:`expected_bell_state`
computes.

This module also provides :class:`MessageEncoder`, the check-bit pipeline
that turns Alice's ``n``-bit message ``m`` into the ``2N``-bit string ``m'``
and back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProtocolError
from repro.quantum.bell import BellState, bell_state
from repro.quantum.operators import Operator, PAULI_MATRICES
from repro.utils.bits import (
    Bits,
    bits_to_str,
    chunk_bits,
    insert_check_bits,
    random_bits,
    remove_check_bits,
    validate_bits,
)
from repro.utils.rng import as_rng

__all__ = [
    "PAULI_LABELS",
    "BITS_TO_PAULI",
    "PAULI_TO_BITS",
    "BELL_STATE_TO_BITS",
    "BITS_TO_BELL_STATE",
    "pauli_operator",
    "encode_bits_to_pauli",
    "decode_bell_state_to_bits",
    "expected_bell_state",
    "random_cover_operations",
    "EncodedMessage",
    "MessageEncoder",
]

#: The four encoding operations in the paper's order.
PAULI_LABELS = ("I", "Z", "X", "Y")

#: Paper's dense-coding table: two bits → Pauli label (11 uses i·σy; the global
#: phase is irrelevant to every Bell-state outcome, so the label is "Y").
BITS_TO_PAULI: dict[Bits, str] = {
    (0, 0): "I",
    (0, 1): "Z",
    (1, 0): "X",
    (1, 1): "Y",
}

#: Inverse of :data:`BITS_TO_PAULI`.
PAULI_TO_BITS: dict[str, Bits] = {label: bits for bits, label in BITS_TO_PAULI.items()}


def pauli_operator(label: str) -> Operator:
    """The single-qubit Operator for a Pauli label (``"I"``, ``"X"``, ``"Y"``, ``"Z"``)."""
    key = label.upper()
    if key not in PAULI_MATRICES:
        raise ProtocolError(f"unknown Pauli label {label!r}")
    return Operator(PAULI_MATRICES[key])


def encode_bits_to_pauli(two_bits: Bits) -> str:
    """Map a 2-bit chunk to the Pauli label Alice applies to her qubit."""
    key = validate_bits(two_bits)
    if key not in BITS_TO_PAULI:
        raise ProtocolError(f"dense coding requires exactly two bits, got {two_bits!r}")
    return BITS_TO_PAULI[key]


def _compute_bell_state_map() -> dict[tuple[str, str], BellState]:
    """Precompute which Bell state results from Paulis on each half of |Φ+⟩."""
    mapping: dict[tuple[str, str], BellState] = {}
    reference = {which: bell_state(which) for which in BellState}
    for first in PAULI_LABELS:
        for second in PAULI_LABELS:
            state = bell_state(BellState.PHI_PLUS)
            state = state.apply_operator(PAULI_MATRICES[first], [0])
            state = state.apply_operator(PAULI_MATRICES[second], [1])
            for which, target in reference.items():
                if state.fidelity(target) > 1 - 1e-9:
                    mapping[(first, second)] = which
                    break
            else:  # pragma: no cover - defensive; Paulis always map Bell to Bell
                raise ProtocolError(
                    f"Pauli pair ({first}, {second}) did not map |Φ+⟩ to a Bell state"
                )
    return mapping


#: (Pauli on Alice's qubit, Pauli on Bob's qubit) → resulting Bell state.
_PAULI_PAIR_TO_BELL: dict[tuple[str, str], BellState] = _compute_bell_state_map()

#: Bell state → two decoded bits (single-sided encoding on Alice's qubit).
BELL_STATE_TO_BITS: dict[BellState, Bits] = {
    _PAULI_PAIR_TO_BELL[(label, "I")]: bits for bits, label in BITS_TO_PAULI.items()
}

#: Two bits → Bell state (inverse of :data:`BELL_STATE_TO_BITS`).
BITS_TO_BELL_STATE: dict[Bits, BellState] = {
    bits: state for state, bits in BELL_STATE_TO_BITS.items()
}


def decode_bell_state_to_bits(which: BellState) -> Bits:
    """Map a Bell-measurement outcome back to the two encoded bits."""
    if which not in BELL_STATE_TO_BITS:
        raise ProtocolError(f"unknown Bell state {which!r}")
    return BELL_STATE_TO_BITS[which]


def expected_bell_state(alice_pauli: str, bob_pauli: str = "I") -> BellState:
    """Bell state observed after Alice applies *alice_pauli* and Bob *bob_pauli*.

    Used twice in the protocol: Alice predicts the authentication outcome of a
    ``D_A`` pair from her cover operation and Bob's identity chunk, and Bob
    predicts the outcome of a ``C_A`` pair from Alice's identity chunk.
    """
    key = (alice_pauli.upper(), bob_pauli.upper())
    if key not in _PAULI_PAIR_TO_BELL:
        raise ProtocolError(f"unknown Pauli pair {key!r}")
    return _PAULI_PAIR_TO_BELL[key]


def random_cover_operations(count: int, rng=None) -> tuple[str, ...]:
    """Draw *count* uniformly random cover Paulis from {I, Z, X, Y}."""
    if count < 0:
        raise ProtocolError("count must be non-negative")
    generator = as_rng(rng)
    indices = generator.integers(0, len(PAULI_LABELS), size=count)
    return tuple(PAULI_LABELS[int(i)] for i in indices)


@dataclass(frozen=True)
class EncodedMessage:
    """The classical side of Alice's encoding step.

    Attributes
    ----------
    message:
        The original ``n``-bit secret message.
    combined:
        The ``2N``-bit string ``m'`` (message plus check bits).
    check_positions:
        Indices of the check bits inside ``combined``.
    check_bits:
        The random check-bit values, ordered as ``check_positions``.
    pauli_labels:
        One Pauli label per EPR pair (``N`` labels).
    """

    message: Bits
    combined: Bits
    check_positions: tuple[int, ...]
    check_bits: Bits
    pauli_labels: tuple[str, ...]

    @property
    def num_pairs(self) -> int:
        """Number of EPR pairs consumed by the message (``N``)."""
        return len(self.pauli_labels)

    def message_string(self) -> str:
        """The original message as a bitstring."""
        return bits_to_str(self.message)


class MessageEncoder:
    """Check-bit insertion and dense-coding chunking for the secret message.

    Parameters
    ----------
    num_check_bits:
        Number ``c`` of random check bits scattered into the message.  The
        total ``n + c`` must be even so it maps onto ``N = (n + c) / 2`` pairs;
        the encoder enforces that by requiring an even total and raising
        otherwise (callers pick ``c`` accordingly — see
        :meth:`repro.protocol.config.ProtocolConfig.default`).
    """

    def __init__(self, num_check_bits: int):
        if num_check_bits < 0:
            raise ProtocolError("the number of check bits cannot be negative")
        self.num_check_bits = int(num_check_bits)

    # -- encoding ---------------------------------------------------------------------
    def encode(self, message: "Bits | str", rng=None) -> EncodedMessage:
        """Insert check bits at random positions and derive the Pauli labels."""
        bits = validate_bits(
            message if not isinstance(message, str) else tuple(int(ch) for ch in message)
        )
        if len(bits) == 0:
            raise ProtocolError("cannot encode an empty message")
        total = len(bits) + self.num_check_bits
        if total % 2 != 0:
            raise ProtocolError(
                f"message ({len(bits)} bits) plus check bits ({self.num_check_bits}) "
                "must be even to dense-code two bits per pair"
            )
        generator = as_rng(rng)
        check_bits = random_bits(self.num_check_bits, rng=generator)
        positions = tuple(
            int(p)
            for p in np.sort(
                generator.choice(total, size=self.num_check_bits, replace=False)
            )
        )
        combined = insert_check_bits(bits, check_bits, positions)
        labels = tuple(encode_bits_to_pauli(chunk) for chunk in chunk_bits(combined, 2))
        return EncodedMessage(
            message=bits,
            combined=combined,
            check_positions=positions,
            check_bits=check_bits,
            pauli_labels=labels,
        )

    # -- decoding ---------------------------------------------------------------------
    @staticmethod
    def decode_bell_outcomes(outcomes: list[BellState]) -> Bits:
        """Concatenate the two-bit decodings of a sequence of Bell outcomes."""
        decoded: list[int] = []
        for which in outcomes:
            decoded.extend(decode_bell_state_to_bits(which))
        return tuple(decoded)

    @staticmethod
    def split_message_and_check(
        combined: Bits, check_positions: tuple[int, ...]
    ) -> tuple[Bits, Bits]:
        """Recover ``(message, check_bits)`` from the combined string ``m'``."""
        return remove_check_bits(combined, check_positions)
