"""The two legitimate parties of the protocol.

:class:`Alice` (the sender) and :class:`Bob` (the receiver) hold the
pre-shared identities and perform the quantum operations of their respective
protocol steps on the shared pair states.  The orchestration order — who acts
when, what is announced — lives in :class:`~repro.protocol.runner.UADIQSDCProtocol`;
the parties only implement the individual operations so that attack models can
substitute or impersonate either side cleanly.

Pair states are handled as a mapping ``position -> DensityMatrix`` where
qubit 0 of each two-qubit state is the half originating at Alice and qubit 1
is Bob's half.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ProtocolError
from repro.protocol.encoding import (
    decode_bell_state_to_bits,
    encode_bits_to_pauli,
    expected_bell_state,
    pauli_operator,
    random_cover_operations,
)
from repro.protocol.identity import Identity
from repro.quantum.bell import BellState
from repro.quantum.density import DensityMatrix
from repro.quantum.measurement import (
    bell_basis_probability_vector,
    bell_measurement,
    sample_bell_outcome,
)
from repro.utils.bits import Bits
from repro.utils.rng import as_rng

__all__ = ["Alice", "Bob"]

#: Qubit index (within a pair state) of the half Alice initially holds.
ALICE_QUBIT = 0

#: Qubit index (within a pair state) of the half Bob initially holds.
BOB_QUBIT = 1


def _apply_pauli(state: DensityMatrix, label: str, qubit: int) -> DensityMatrix:
    """Apply a single-qubit Pauli by label to one half of a pair state."""
    if label.upper() == "I":
        return state
    return state.evolve(pauli_operator(label), [qubit])


@dataclass
class Alice:
    """The sender: encodes the message and her identity, verifies Bob's identity.

    Attributes
    ----------
    identity:
        Alice's own secret ``id_A``.
    peer_identity:
        Bob's secret ``id_B`` (pre-shared with Alice so she can verify him).
    rng:
        Seeded generator for all of Alice's random choices.
    """

    identity: Identity
    peer_identity: Identity
    rng: object = None
    cover_operations: dict[int, str] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.rng = as_rng(self.rng)

    # -- encoding ------------------------------------------------------------------------
    def message_pauli_plan(
        self, message_labels: tuple[str, ...], positions: tuple[int, ...]
    ) -> dict[int, str]:
        """Assign each message Pauli label to a message-pair position (in order)."""
        if len(message_labels) != len(positions):
            raise ProtocolError(
                f"{len(message_labels)} labels cannot be placed on {len(positions)} pairs"
            )
        return dict(zip(positions, message_labels))

    def identity_pauli_plan(self, positions: tuple[int, ...]) -> dict[int, str]:
        """Assign Alice's identity chunks to the ``C_A`` positions (in order)."""
        chunks = self.identity.chunks()
        if len(chunks) != len(positions):
            raise ProtocolError(
                f"identity spans {len(chunks)} pairs but {len(positions)} positions were given"
            )
        return {
            position: encode_bits_to_pauli(chunk)
            for position, chunk in zip(positions, chunks)
        }

    def cover_plan(self, positions: tuple[int, ...]) -> dict[int, str]:
        """Draw and remember random cover operations for the ``D_A`` positions."""
        labels = random_cover_operations(len(positions), rng=self.rng)
        plan = dict(zip(positions, labels))
        self.cover_operations = dict(plan)
        return plan

    @staticmethod
    def apply_plan(
        pairs: dict[int, DensityMatrix], plan: dict[int, str]
    ) -> dict[int, DensityMatrix]:
        """Apply a position → Pauli plan to Alice's halves of the given pairs."""
        updated = dict(pairs)
        for position, label in plan.items():
            if position not in updated:
                raise ProtocolError(f"no pair at position {position}")
            updated[position] = _apply_pauli(updated[position], label, ALICE_QUBIT)
        return updated

    # -- verification of Bob --------------------------------------------------------------
    def expected_authentication_outcomes(
        self, positions: tuple[int, ...]
    ) -> dict[int, BellState]:
        """Bell states Alice expects Bob to announce for the ``D_A`` pairs.

        Determined by her cover operation on each pair and Bob's identity
        chunk on the partner qubit.
        """
        chunks = self.peer_identity.chunks()
        if len(chunks) != len(positions):
            raise ProtocolError("peer identity length does not match the D_A set")
        expected: dict[int, BellState] = {}
        for position, chunk in zip(positions, chunks):
            cover = self.cover_operations.get(position)
            if cover is None:
                raise ProtocolError(
                    f"no cover operation was recorded for position {position}"
                )
            expected[position] = expected_bell_state(cover, encode_bits_to_pauli(chunk))
        return expected

    def verify_bob(
        self, announced: dict[int, BellState], positions: tuple[int, ...]
    ) -> float:
        """Fraction of ``D_A`` pairs whose announced outcome disagrees with the expectation."""
        expected = self.expected_authentication_outcomes(positions)
        if set(announced) != set(expected):
            raise ProtocolError("announced outcomes do not cover the D_A positions")
        mismatches = sum(
            1 for position in positions if announced[position] is not expected[position]
        )
        return mismatches / len(positions)


@dataclass
class Bob:
    """The receiver: encodes his identity, measures Bell states, decodes the message.

    ``memoize`` (default True) caches the Bell-outcome probability vector per
    distinct pair state during :meth:`bell_measure`: the pairs of one session
    carry only a handful of distinct states (four Pauli encodings of one
    channel output), so the Bell-basis projections collapse to a few
    evaluations.  Sampling consumes the same single draw per pair from the
    same floats, so outcomes are bit-identical to the unmemoised path
    (``memoize=False``, the reference used by the protocol's ``dense``
    simulator backend).

    ``shared_probability_cache`` optionally replaces the per-call cache with
    an externally owned dict so a batch of sessions (``run_session_batch``,
    ``BatchBackend``) computes each distinct state's Bell-outcome
    probability vector once per batch.  The key — the state's matrix bytes —
    is configuration-independent, so sharing across sessions with different
    identities or seeds is exact.
    """

    identity: Identity
    peer_identity: Identity
    rng: object = None
    memoize: bool = True
    shared_probability_cache: "dict[bytes, object] | None" = None

    def __post_init__(self):
        self.rng = as_rng(self.rng)

    # -- identity encoding -------------------------------------------------------------------
    def identity_pauli_plan(self, positions: tuple[int, ...]) -> dict[int, str]:
        """Assign Bob's identity chunks to the ``D_B`` (partner of ``D_A``) positions."""
        chunks = self.identity.chunks()
        if len(chunks) != len(positions):
            raise ProtocolError(
                f"identity spans {len(chunks)} pairs but {len(positions)} positions were given"
            )
        return {
            position: encode_bits_to_pauli(chunk)
            for position, chunk in zip(positions, chunks)
        }

    @staticmethod
    def apply_plan(
        pairs: dict[int, DensityMatrix], plan: dict[int, str]
    ) -> dict[int, DensityMatrix]:
        """Apply a position → Pauli plan to Bob's halves of the given pairs."""
        updated = dict(pairs)
        for position, label in plan.items():
            if position not in updated:
                raise ProtocolError(f"no pair at position {position}")
            updated[position] = _apply_pauli(updated[position], label, BOB_QUBIT)
        return updated

    # -- measurements ----------------------------------------------------------------------------
    def bell_measure(
        self, pairs: dict[int, DensityMatrix], positions: tuple[int, ...]
    ) -> dict[int, BellState]:
        """Bell-state measurement of the listed pairs (one shot per pair)."""
        outcomes: dict[int, BellState] = {}
        probability_cache: dict[bytes, object] | None = None
        if self.memoize:
            probability_cache = (
                self.shared_probability_cache
                if self.shared_probability_cache is not None
                else {}
            )
        for position in positions:
            if position not in pairs:
                raise ProtocolError(f"no pair at position {position}")
            state = pairs[position]
            if probability_cache is None:
                result = bell_measurement(state, [ALICE_QUBIT, BOB_QUBIT], rng=self.rng)
            else:
                key = state.matrix.tobytes()
                probabilities = probability_cache.get(key)
                if probabilities is None:
                    probabilities = bell_basis_probability_vector(
                        state, [ALICE_QUBIT, BOB_QUBIT]
                    )
                    probability_cache[key] = probabilities
                result = sample_bell_outcome(probabilities, rng=self.rng)
            outcomes[position] = result.bell_state
        return outcomes

    # -- verification of Alice ----------------------------------------------------------------------
    def verify_alice(
        self, outcomes: dict[int, BellState], positions: tuple[int, ...]
    ) -> float:
        """Fraction of ``C_A`` pairs whose Bell outcome disagrees with ``id_A``."""
        chunks = self.peer_identity.chunks()
        if len(chunks) != len(positions):
            raise ProtocolError("peer identity length does not match the C_A set")
        mismatches = 0
        for position, chunk in zip(positions, chunks):
            if position not in outcomes:
                raise ProtocolError(f"no measurement outcome for position {position}")
            expected = expected_bell_state(encode_bits_to_pauli(chunk), "I")
            if outcomes[position] is not expected:
                mismatches += 1
        return mismatches / len(positions)

    # -- decoding -------------------------------------------------------------------------------------
    @staticmethod
    def decode_message_bits(
        outcomes: dict[int, BellState], positions: tuple[int, ...]
    ) -> Bits:
        """Decode the combined bit string ``m'`` from Bell outcomes at *positions* (in order)."""
        decoded: list[int] = []
        for position in positions:
            if position not in outcomes:
                raise ProtocolError(f"no measurement outcome for position {position}")
            decoded.extend(decode_bell_state_to_bits(outcomes[position]))
        return tuple(decoded)
