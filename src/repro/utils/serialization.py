"""Lightweight JSON serialization for experiment results.

Experiment harnesses and protocol results carry numpy scalars/arrays and
dataclasses; :func:`to_json` converts them to plain JSON-compatible types so
results can be written to disk and compared across runs, and :func:`from_json`
parses them back into dictionaries/lists.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any

import numpy as np

__all__ = ["to_json", "from_json", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert *obj* into JSON-serialisable built-in types."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, complex) or isinstance(obj, np.complexfloating):
        return {"real": float(obj.real), "imag": float(obj.imag)}
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    raise TypeError(f"cannot serialise object of type {type(obj).__name__}")


def to_json(obj: Any, indent: int | None = 2) -> str:
    """Serialise *obj* (results, dataclasses, numpy values) to a JSON string."""
    return json.dumps(to_jsonable(obj), indent=indent, sort_keys=True)


def from_json(text: str) -> Any:
    """Parse a JSON string produced by :func:`to_json`."""
    return json.loads(text)
