"""Shared utilities: bitstrings, random number plumbing, serialization, logging."""

from repro.utils.bits import (
    bits_to_int,
    bits_to_str,
    bitstring_to_bits,
    chunk_bits,
    hamming_distance,
    insert_check_bits,
    int_to_bits,
    pad_bits,
    random_bits,
    remove_check_bits,
    xor_bits,
)
from repro.utils.rng import as_rng, derive_rng, spawn_rngs
from repro.utils.serialization import from_json, to_json

__all__ = [
    "bits_to_int",
    "bits_to_str",
    "bitstring_to_bits",
    "chunk_bits",
    "hamming_distance",
    "insert_check_bits",
    "int_to_bits",
    "pad_bits",
    "random_bits",
    "remove_check_bits",
    "xor_bits",
    "as_rng",
    "derive_rng",
    "spawn_rngs",
    "from_json",
    "to_json",
]
