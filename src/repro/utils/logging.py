"""Library logging configuration.

The library never configures the root logger; it logs under the ``repro``
namespace and leaves handler configuration to applications.  The helper
:func:`enable_console_logging` is a convenience for examples and experiment
scripts.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("protocol.runner")`` returns ``repro.protocol.runner``.
    """
    if not name:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler with a compact format to the library logger."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
