"""Library logging configuration.

The library never configures the root logger; it logs under the ``repro``
namespace and leaves handler configuration to applications.  The helper
:func:`enable_console_logging` is a convenience for examples and experiment
scripts; it is idempotent per configuration — calling it again with the same
level and format reuses the handler it installed, and calling it with a
different level/format reconfigures that handler in place instead of
stacking a second one (repeated CLI invocations in one process would
otherwise duplicate every log line).

Every handler installed here carries :class:`TraceIdFilter`, which stamps
``record.trace_id`` with the id of the innermost open telemetry span (or
``-`` when telemetry is off), so a ``%(trace_id)s`` format correlates log
lines with exported trace spans.
"""

from __future__ import annotations

import logging

__all__ = [
    "get_logger",
    "enable_console_logging",
    "TraceIdFilter",
    "DEFAULT_FORMAT",
    "TRACE_FORMAT",
]

_LIBRARY_LOGGER_NAME = "repro"

DEFAULT_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
TRACE_FORMAT = "%(asctime)s %(name)s %(levelname)s [span=%(trace_id)s]: %(message)s"

#: Marker attribute identifying handlers installed by this module.
_HANDLER_MARKER = "_repro_console_handler"


class TraceIdFilter(logging.Filter):
    """Stamp every record with the current telemetry span id (``-`` if none).

    Implemented as a filter rather than a formatter so any format string —
    with or without ``%(trace_id)s`` — works on the same handler.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        from repro.telemetry.runtime import current_trace_id

        trace_id = current_trace_id()
        record.trace_id = "-" if trace_id is None else trace_id
        return True


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("protocol.runner")`` returns ``repro.protocol.runner``.
    """
    if not name:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(
    level: int = logging.INFO, fmt: str | None = None
) -> logging.Logger:
    """Attach (or reconfigure) the library's console handler.

    Idempotent per configuration: at most one handler installed by this
    function ever exists on the ``repro`` logger.  Repeat calls with the
    same ``(level, fmt)`` are no-ops; calls with a different configuration
    update the existing handler instead of adding another.  Handlers the
    application attached itself are never touched.
    """
    if fmt is None:
        fmt = DEFAULT_FORMAT
    logger = get_logger()
    logger.setLevel(level)

    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_MARKER, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler()
        setattr(handler, _HANDLER_MARKER, True)
        handler.addFilter(TraceIdFilter())
        logger.addHandler(handler)
    handler.setLevel(level)
    current = handler.formatter._fmt if handler.formatter is not None else None
    if current != fmt:
        handler.setFormatter(logging.Formatter(fmt))
    return logger
