"""Bitstring helpers used throughout the protocol layer.

The protocol manipulates classical bit sequences in several places: the
secret message ``m``, the check-bit-augmented message ``m'``, the pre-shared
identities ``id_A`` and ``id_B`` (``2l`` bits each), and the two-bit chunks
that are dense-coded onto single EPR pairs.  This module centralises the
conversions between representations so the rest of the code can work with a
single canonical type: a ``tuple`` of ``int`` values each equal to 0 or 1.

The canonical bit order is *big-endian*: index 0 of the tuple is the leftmost
character of the equivalent string and the most significant bit of the
equivalent integer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.utils.rng import as_rng

__all__ = [
    "Bits",
    "validate_bits",
    "bits_to_str",
    "bitstring_to_bits",
    "bits_to_int",
    "int_to_bits",
    "random_bits",
    "xor_bits",
    "hamming_distance",
    "chunk_bits",
    "pad_bits",
    "insert_check_bits",
    "remove_check_bits",
]

#: Canonical bit-sequence type used across the library.
Bits = tuple[int, ...]


def validate_bits(bits: Iterable[int]) -> Bits:
    """Return *bits* as a canonical tuple, raising if any value is not 0/1.

    Accepts any iterable of integers (including numpy integers and booleans).
    """
    out = tuple(int(b) for b in bits)
    for b in out:
        if b not in (0, 1):
            raise ReproError(f"bit values must be 0 or 1, got {b!r}")
    return out


def bits_to_str(bits: Iterable[int]) -> str:
    """Render a bit sequence as a compact string, e.g. ``(1, 0, 1) -> '101'``."""
    return "".join(str(b) for b in validate_bits(bits))


def bitstring_to_bits(bitstring: str) -> Bits:
    """Parse a string of ``'0'``/``'1'`` characters into a bit tuple."""
    if not all(ch in "01" for ch in bitstring):
        raise ReproError(f"bitstring must contain only '0'/'1', got {bitstring!r}")
    return tuple(int(ch) for ch in bitstring)


def bits_to_int(bits: Iterable[int]) -> int:
    """Interpret a big-endian bit sequence as a non-negative integer."""
    value = 0
    for b in validate_bits(bits):
        value = (value << 1) | b
    return value


def int_to_bits(value: int, width: int) -> Bits:
    """Return the *width*-bit big-endian representation of *value*.

    Raises if *value* does not fit in *width* bits or is negative.
    """
    if value < 0:
        raise ReproError(f"value must be non-negative, got {value}")
    if width < 0:
        raise ReproError(f"width must be non-negative, got {width}")
    if value >= (1 << width) and width > 0:
        raise ReproError(f"value {value} does not fit in {width} bits")
    if width == 0:
        if value != 0:
            raise ReproError("width 0 can only represent value 0")
        return ()
    return tuple((value >> shift) & 1 for shift in range(width - 1, -1, -1))


def random_bits(n: int, rng=None) -> Bits:
    """Generate *n* uniformly random bits using the given RNG or seed."""
    if n < 0:
        raise ReproError(f"number of bits must be non-negative, got {n}")
    generator = as_rng(rng)
    return tuple(int(b) for b in generator.integers(0, 2, size=n))


def xor_bits(a: Iterable[int], b: Iterable[int]) -> Bits:
    """Bitwise XOR of two equal-length bit sequences."""
    ta, tb = validate_bits(a), validate_bits(b)
    if len(ta) != len(tb):
        raise ReproError(
            f"cannot XOR bit sequences of different lengths ({len(ta)} vs {len(tb)})"
        )
    return tuple(x ^ y for x, y in zip(ta, tb))


def hamming_distance(a: Iterable[int], b: Iterable[int]) -> int:
    """Number of positions at which two equal-length bit sequences differ."""
    return sum(xor_bits(a, b))


def chunk_bits(bits: Iterable[int], chunk_size: int) -> list[Bits]:
    """Split a bit sequence into consecutive chunks of *chunk_size* bits.

    The length of *bits* must be a multiple of *chunk_size*; the protocol
    always works with two-bit chunks on an even-length ``m'``.
    """
    tbits = validate_bits(bits)
    if chunk_size <= 0:
        raise ReproError(f"chunk_size must be positive, got {chunk_size}")
    if len(tbits) % chunk_size != 0:
        raise ReproError(
            f"bit sequence of length {len(tbits)} is not divisible by {chunk_size}"
        )
    return [tbits[i:i + chunk_size] for i in range(0, len(tbits), chunk_size)]


def pad_bits(bits: Iterable[int], multiple: int, rng=None) -> tuple[Bits, int]:
    """Pad *bits* with random bits so its length is a multiple of *multiple*.

    Returns ``(padded_bits, n_padding)``.  Padding is appended at the end and
    drawn from *rng* so that it carries no information about the message.
    """
    tbits = validate_bits(bits)
    if multiple <= 0:
        raise ReproError(f"multiple must be positive, got {multiple}")
    remainder = len(tbits) % multiple
    if remainder == 0:
        return tbits, 0
    n_pad = multiple - remainder
    return tbits + random_bits(n_pad, rng), n_pad


def insert_check_bits(
    message: Iterable[int],
    check_bits: Iterable[int],
    positions: Sequence[int],
) -> Bits:
    """Insert *check_bits* into *message* at the given final positions.

    ``positions[i]`` is the index of ``check_bits[i]`` in the *resulting*
    sequence.  Positions must be unique and lie within the final length
    ``len(message) + len(check_bits)``.  This implements the paper's step of
    forming ``m'`` from ``m`` by scattering ``c`` check bits at random
    positions.
    """
    msg = validate_bits(message)
    chk = validate_bits(check_bits)
    pos = [int(p) for p in positions]
    total = len(msg) + len(chk)
    if len(pos) != len(chk):
        raise ReproError(
            f"got {len(chk)} check bits but {len(pos)} positions"
        )
    if len(set(pos)) != len(pos):
        raise ReproError("check-bit positions must be unique")
    if any(p < 0 or p >= total for p in pos):
        raise ReproError(f"check-bit positions must lie in [0, {total})")

    result: list[int | None] = [None] * total
    for p, bit in zip(pos, chk):
        result[p] = bit
    msg_iter = iter(msg)
    for i in range(total):
        if result[i] is None:
            result[i] = next(msg_iter)
    return tuple(int(b) for b in result)


def remove_check_bits(
    combined: Iterable[int], positions: Sequence[int]
) -> tuple[Bits, Bits]:
    """Split a combined sequence back into ``(message, check_bits)``.

    Inverse of :func:`insert_check_bits`: *positions* are the indices of the
    check bits inside *combined*.  Check bits are returned in the order given
    by *positions*.
    """
    seq = validate_bits(combined)
    pos = [int(p) for p in positions]
    if len(set(pos)) != len(pos):
        raise ReproError("check-bit positions must be unique")
    if any(p < 0 or p >= len(seq) for p in pos):
        raise ReproError(f"check-bit positions must lie in [0, {len(seq)})")
    pos_set = set(pos)
    message = tuple(b for i, b in enumerate(seq) if i not in pos_set)
    check = tuple(seq[p] for p in pos)
    return message, check


def random_positions(total: int, count: int, rng=None) -> tuple[int, ...]:
    """Choose *count* distinct positions uniformly at random from ``range(total)``."""
    if count < 0 or total < 0:
        raise ReproError("total and count must be non-negative")
    if count > total:
        raise ReproError(f"cannot choose {count} positions from {total}")
    generator = as_rng(rng)
    chosen = generator.choice(total, size=count, replace=False)
    return tuple(int(p) for p in np.sort(chosen))
