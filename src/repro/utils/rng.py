"""Random-number-generator plumbing.

All stochastic behaviour in the library (measurement sampling, random basis
selection, noise realisations, random identities, attack randomness) flows
through :class:`numpy.random.Generator` objects.  Functions accept either an
existing generator, an integer seed, or ``None`` (fresh entropy) and convert
via :func:`as_rng`.  Deterministic reproduction of an experiment therefore
requires passing a seed only at the top level; sub-components derive
independent child generators with :func:`derive_rng` / :func:`spawn_rngs`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngLike", "as_rng", "derive_rng", "spawn_rngs"]

#: Anything convertible to a :class:`numpy.random.Generator`.
RngLike = "np.random.Generator | int | None"


def as_rng(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Coerce *rng* into a :class:`numpy.random.Generator`.

    ``None`` creates a generator from fresh OS entropy; an ``int`` seeds a new
    generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {type(rng).__name__} as a random generator")


def derive_rng(rng: np.random.Generator | int | None, *tags: object) -> np.random.Generator:
    """Derive a child generator from *rng*, namespaced by *tags*.

    The derivation is deterministic given the parent generator state: it draws
    one 64-bit integer from the parent and mixes in a stable hash of the tags.
    Use this to hand independent streams to sub-components (e.g. one stream
    for Alice's basis choices and another for channel noise) while keeping a
    single top-level seed.
    """
    parent = as_rng(rng)
    base = int(parent.integers(0, 2**63 - 1))
    mix = 0
    for tag in tags:
        for ch in str(tag):
            mix = (mix * 1_000_003 + ord(ch)) % (2**63 - 1)
    return np.random.default_rng((base ^ mix) % (2**63 - 1))


def spawn_rngs(rng: np.random.Generator | int | None, count: int) -> list[np.random.Generator]:
    """Spawn *count* statistically independent child generators from *rng*."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
