"""Feature descriptions of DI-QSDC protocols (the columns of Table I).

Table I of the paper compares the proposed UA-DI-QSDC protocol with four
existing DI-QSDC protocols along four axes: the quantum resource type, the
measurement used for decoding, the number of qubits consumed per message bit
and whether user authentication is provided.  :class:`ProtocolFeatures` is the
row type; each baseline module exposes its own instance, and
:mod:`repro.baselines.comparison` assembles the full table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ResourceType", "DecodingMeasurement", "ProtocolFeatures"]


class ResourceType(Enum):
    """Quantum resource consumed by a DI-QSDC protocol."""

    ENTANGLEMENT = "Entanglement"
    HYPERENTANGLEMENT = "Hyper-entanglement"
    SINGLE_QUBITS = "Single qubits"


class DecodingMeasurement(Enum):
    """Measurement the receiver uses to decode the message."""

    BSM = "BSM"
    HYPER_BSM = "HBSM"


@dataclass(frozen=True)
class ProtocolFeatures:
    """One row of Table I.

    Attributes
    ----------
    name:
        Short protocol name used in reports.
    reference:
        Citation string (author, year).
    resource_type:
        Quantum resource the protocol consumes.
    decoding_measurement:
        Measurement used by the receiver to decode.
    qubits_per_message_bit:
        Transmitted qubits consumed per useful message bit (1/2 for the
        hyper-encoding protocol, 2 for the single-photon-source protocol).
    user_authentication:
        Whether the protocol authenticates the communicating parties.
    """

    name: str
    reference: str
    resource_type: ResourceType
    decoding_measurement: DecodingMeasurement
    qubits_per_message_bit: float
    user_authentication: bool

    def as_row(self) -> dict[str, str]:
        """Render the features as the strings Table I prints."""
        ratio = self.qubits_per_message_bit
        if ratio == int(ratio):
            qubits = str(int(ratio))
        else:
            qubits = f"{ratio.as_integer_ratio()[0]}/{ratio.as_integer_ratio()[1]}"
        return {
            "Protocol": self.name,
            "Resource type": self.resource_type.value,
            "Measurement for decoding": self.decoding_measurement.value,
            "No. of qubits per message bit": qubits,
            "UA": "Yes" if self.user_authentication else "No",
        }
