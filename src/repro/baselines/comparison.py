"""Table I: feature comparison of DI-QSDC protocols.

:func:`table1_features` assembles the feature rows of the four prior DI-QSDC
protocols plus the proposed UA-DI-QSDC protocol, in the order of the paper's
Table I; :func:`render_table1` renders them as a fixed-width text table; and
:func:`run_functional_comparison` actually runs every baseline plus the
proposed protocol on the same channel so the feature claims (and message
delivery) are backed by executing code.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.baselines.base import BaselineResult, DIQSDCBaseline
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.baselines.zeng2023_hyperencoding import Zeng2023HyperEncodingDIQSDC
from repro.baselines.zhou2020 import Zhou2020DIQSDC
from repro.baselines.zhou2022_onestep import Zhou2022OneStepDIQSDC
from repro.baselines.zhou2023_single_photon import Zhou2023SinglePhotonDIQSDC
from repro.channel.quantum_channel import QuantumChannel
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol

__all__ = [
    "PROPOSED_FEATURES",
    "BASELINE_BUILDERS",
    "all_baselines",
    "table1_features",
    "render_table1",
    "FunctionalComparison",
    "run_functional_comparison",
]

#: Feature row of the proposed UA-DI-QSDC protocol (last row of Table I).
PROPOSED_FEATURES = ProtocolFeatures(
    name="Proposed protocol (UA-DI-QSDC)",
    reference="Das, Basu, Paul, Rao (2024)",
    resource_type=ResourceType.ENTANGLEMENT,
    decoding_measurement=DecodingMeasurement.BSM,
    qubits_per_message_bit=1.0,
    user_authentication=True,
)


#: Constructors of the prior protocols in Table I row order, keyed by the
#: scenario names the functional-comparison sweep uses.  Workers look the
#: constructor up by name, so baseline classes themselves never cross a
#: process boundary (the worker's bound message/channel/check_pairs context
#: still must stay picklable).  This is the single source of truth for the
#: baseline set; :func:`all_baselines` instantiates from it.
BASELINE_BUILDERS: dict[str, type[DIQSDCBaseline]] = {
    "zhou2020": Zhou2020DIQSDC,
    "zhou2022_onestep": Zhou2022OneStepDIQSDC,
    "zhou2023_single_photon": Zhou2023SinglePhotonDIQSDC,
    "zeng2023_hyperencoding": Zeng2023HyperEncodingDIQSDC,
}


def all_baselines(check_pairs: int = 128) -> list[DIQSDCBaseline]:
    """Instantiate the four prior DI-QSDC protocols in Table I order."""
    return [
        builder(check_pairs=check_pairs) for builder in BASELINE_BUILDERS.values()
    ]


def table1_features() -> list[ProtocolFeatures]:
    """Feature rows of Table I: the four baselines followed by the proposed protocol."""
    return [baseline.features for baseline in all_baselines()] + [PROPOSED_FEATURES]


def render_table1(rows: list[ProtocolFeatures] | None = None) -> str:
    """Render the Table I comparison as a fixed-width text table."""
    rows = rows if rows is not None else table1_features()
    rendered = [features.as_row() for features in rows]
    headers = list(rendered[0].keys())
    widths = {
        header: max(len(header), *(len(row[header]) for row in rendered))
        for header in headers
    }
    lines = [
        " | ".join(header.ljust(widths[header]) for header in headers),
        "-+-".join("-" * widths[header] for header in headers),
    ]
    for row in rendered:
        lines.append(" | ".join(row[header].ljust(widths[header]) for header in headers))
    return "\n".join(lines)


@dataclass
class FunctionalComparison:
    """Result of running every protocol in Table I on the same channel.

    Attributes
    ----------
    features:
        The static feature rows (Table I proper).
    baseline_results:
        One :class:`~repro.baselines.base.BaselineResult` per prior protocol.
    proposed_result_summary:
        Summary dict of the proposed protocol's run on the same channel.
    """

    features: list[ProtocolFeatures]
    baseline_results: list[BaselineResult] = field(default_factory=list)
    proposed_result_summary: dict = field(default_factory=dict)

    def delivered_correctly(self) -> dict[str, bool]:
        """Which protocol delivered the message without bit errors."""
        outcome = {
            result.protocol: result.message_delivered_correctly()
            for result in self.baseline_results
        }
        outcome[PROPOSED_FEATURES.name] = bool(
            self.proposed_result_summary.get("success")
            and self.proposed_result_summary.get("delivered_message")
            == self.proposed_result_summary.get("sent_message")
        )
        return outcome


def _comparison_worker(
    params: dict,
    seed: int,
    message: str,
    channel: QuantumChannel | None,
    check_pairs: int,
):
    """Run one Table I protocol (module-level so process pools can import it)."""
    protocol = params["protocol"]
    if protocol == "proposed":
        config = ProtocolConfig.default(
            message_length=len(message),
            seed=seed,
            check_pairs_per_round=check_pairs,
        )
        if channel is not None:
            config = config.with_channel(channel)
        return UADIQSDCProtocol(config).run(message).summary()
    baseline = BASELINE_BUILDERS[protocol](check_pairs=check_pairs)
    return baseline.transmit(message, channel=channel, rng=seed)


def run_functional_comparison(
    message: str = "1011001110001111",
    channel: QuantumChannel | None = None,
    check_pairs: int = 96,
    seed: int | None = 7,
    executor: str = "serial",
    max_workers: int | None = None,
) -> FunctionalComparison:
    """Run every Table I protocol once on the same message and channel.

    The five protocols (four baselines plus the proposed UA-DI-QSDC) are
    independent sweep points with deterministic per-protocol seeds, so the
    comparison is identical whether it runs serially or fanned across
    ``concurrent.futures`` workers.
    """
    from repro.experiments.sweep import parameter_grid, resolve_base_seed, run_sweep

    base_seed = resolve_base_seed(seed)
    worker = functools.partial(
        _comparison_worker, message=message, channel=channel, check_pairs=check_pairs
    )
    swept = run_sweep(
        worker,
        parameter_grid(protocol=list(BASELINE_BUILDERS) + ["proposed"]),
        base_seed=base_seed,
        executor=executor,
        max_workers=max_workers,
    )
    baseline_results = []
    proposed_summary: dict = {}
    for point, value in swept:
        if point.params["protocol"] == "proposed":
            proposed_summary = value
        else:
            baseline_results.append(value)
    return FunctionalComparison(
        features=table1_features(),
        baseline_results=baseline_results,
        proposed_result_summary=proposed_summary,
    )
