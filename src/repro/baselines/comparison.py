"""Table I: feature comparison of DI-QSDC protocols.

:func:`table1_features` assembles the feature rows of the four prior DI-QSDC
protocols plus the proposed UA-DI-QSDC protocol, in the order of the paper's
Table I; :func:`render_table1` renders them as a fixed-width text table; and
:func:`run_functional_comparison` actually runs every baseline plus the
proposed protocol on the same channel so the feature claims (and message
delivery) are backed by executing code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import BaselineResult, DIQSDCBaseline
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.baselines.zeng2023_hyperencoding import Zeng2023HyperEncodingDIQSDC
from repro.baselines.zhou2020 import Zhou2020DIQSDC
from repro.baselines.zhou2022_onestep import Zhou2022OneStepDIQSDC
from repro.baselines.zhou2023_single_photon import Zhou2023SinglePhotonDIQSDC
from repro.channel.quantum_channel import QuantumChannel
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol
from repro.utils.rng import as_rng

__all__ = [
    "PROPOSED_FEATURES",
    "all_baselines",
    "table1_features",
    "render_table1",
    "FunctionalComparison",
    "run_functional_comparison",
]

#: Feature row of the proposed UA-DI-QSDC protocol (last row of Table I).
PROPOSED_FEATURES = ProtocolFeatures(
    name="Proposed protocol (UA-DI-QSDC)",
    reference="Das, Basu, Paul, Rao (2024)",
    resource_type=ResourceType.ENTANGLEMENT,
    decoding_measurement=DecodingMeasurement.BSM,
    qubits_per_message_bit=1.0,
    user_authentication=True,
)


def all_baselines(check_pairs: int = 128) -> list[DIQSDCBaseline]:
    """Instantiate the four prior DI-QSDC protocols in Table I order."""
    return [
        Zhou2020DIQSDC(check_pairs=check_pairs),
        Zhou2022OneStepDIQSDC(check_pairs=check_pairs),
        Zhou2023SinglePhotonDIQSDC(check_pairs=check_pairs),
        Zeng2023HyperEncodingDIQSDC(check_pairs=check_pairs),
    ]


def table1_features() -> list[ProtocolFeatures]:
    """Feature rows of Table I: the four baselines followed by the proposed protocol."""
    return [baseline.features for baseline in all_baselines()] + [PROPOSED_FEATURES]


def render_table1(rows: list[ProtocolFeatures] | None = None) -> str:
    """Render the Table I comparison as a fixed-width text table."""
    rows = rows if rows is not None else table1_features()
    rendered = [features.as_row() for features in rows]
    headers = list(rendered[0].keys())
    widths = {
        header: max(len(header), *(len(row[header]) for row in rendered))
        for header in headers
    }
    lines = [
        " | ".join(header.ljust(widths[header]) for header in headers),
        "-+-".join("-" * widths[header] for header in headers),
    ]
    for row in rendered:
        lines.append(" | ".join(row[header].ljust(widths[header]) for header in headers))
    return "\n".join(lines)


@dataclass
class FunctionalComparison:
    """Result of running every protocol in Table I on the same channel.

    Attributes
    ----------
    features:
        The static feature rows (Table I proper).
    baseline_results:
        One :class:`~repro.baselines.base.BaselineResult` per prior protocol.
    proposed_result_summary:
        Summary dict of the proposed protocol's run on the same channel.
    """

    features: list[ProtocolFeatures]
    baseline_results: list[BaselineResult] = field(default_factory=list)
    proposed_result_summary: dict = field(default_factory=dict)

    def delivered_correctly(self) -> dict[str, bool]:
        """Which protocol delivered the message without bit errors."""
        outcome = {
            result.protocol: result.message_delivered_correctly()
            for result in self.baseline_results
        }
        outcome[PROPOSED_FEATURES.name] = bool(
            self.proposed_result_summary.get("success")
            and self.proposed_result_summary.get("delivered_message")
            == self.proposed_result_summary.get("sent_message")
        )
        return outcome


def run_functional_comparison(
    message: str = "1011001110001111",
    channel: QuantumChannel | None = None,
    check_pairs: int = 96,
    seed: int | None = 7,
) -> FunctionalComparison:
    """Run every Table I protocol once on the same message and channel."""
    generator = as_rng(seed)
    baseline_results = [
        baseline.transmit(message, channel=channel, rng=generator)
        for baseline in all_baselines(check_pairs=check_pairs)
    ]

    config = ProtocolConfig.default(
        message_length=len(message),
        seed=None if seed is None else seed + 1,
        check_pairs_per_round=check_pairs,
    )
    if channel is not None:
        config = config.with_channel(channel)
    proposed_result = UADIQSDCProtocol(config).run(message)

    return FunctionalComparison(
        features=table1_features(),
        baseline_results=baseline_results,
        proposed_result_summary=proposed_result.summary(),
    )
