"""Common interface for the DI-QSDC baselines compared in Table I.

Each baseline implements a *functional* (if simplified) simulation of its
protocol on top of the same quantum substrate the proposed protocol uses, so
that feature claims of Table I — resource type, decoding measurement, qubit
cost per message bit, presence of user authentication — are backed by running
code, and so that the comparison benches can put all protocols on the same
channel models.

The baseline simulations intentionally skip the engineering details that do
not affect the compared features (e.g. exact photon-loss bookkeeping of the
original papers); every simplification is documented in the respective
module's docstring.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.baselines.features import ProtocolFeatures
from repro.channel.quantum_channel import NoiselessChannel, QuantumChannel
from repro.exceptions import ProtocolError
from repro.utils.bits import Bits, bits_to_str, bitstring_to_bits, hamming_distance, validate_bits

__all__ = ["BaselineResult", "DIQSDCBaseline"]


@dataclass
class BaselineResult:
    """Outcome of one baseline protocol run.

    Attributes
    ----------
    protocol:
        Baseline name.
    sent_message / delivered_message:
        The message the sender encoded and the message the receiver decoded.
    bit_error_rate:
        Fraction of delivered bits differing from the sent bits.
    chsh_values:
        The CHSH estimates of the protocol's DI security checks (empty for
        aborted runs that never reached a check).
    aborted:
        True if a DI check failed and the run terminated early.
    qubits_transmitted:
        Number of qubits that crossed the quantum channel.
    authenticated:
        Whether the run performed any user authentication (always False for
        the prior protocols — the feature the paper adds).
    metadata:
        Baseline-specific extras.
    """

    protocol: str
    sent_message: Bits
    delivered_message: Bits | None
    bit_error_rate: float | None
    chsh_values: list[float] = field(default_factory=list)
    aborted: bool = False
    qubits_transmitted: int = 0
    authenticated: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def delivered_message_string(self) -> str | None:
        """Delivered message as a bitstring."""
        return None if self.delivered_message is None else bits_to_str(self.delivered_message)

    def message_delivered_correctly(self) -> bool:
        """True if the delivered message equals the sent message."""
        return self.delivered_message is not None and tuple(self.delivered_message) == tuple(
            self.sent_message
        )


class DIQSDCBaseline(ABC):
    """Base class of the Table I baselines.

    Parameters
    ----------
    check_pairs:
        Number of resource states sampled per DI security-check round.
    chsh_threshold:
        Abort threshold for the CHSH estimate.
    """

    #: Feature row of Table I; concrete baselines override this class attribute.
    features: ProtocolFeatures

    def __init__(self, check_pairs: int = 128, chsh_threshold: float = 2.0):
        if check_pairs < 1:
            raise ProtocolError("check_pairs must be at least 1")
        if not 0 < chsh_threshold < 2.83:
            raise ProtocolError("chsh_threshold must lie in (0, 2√2)")
        self.check_pairs = int(check_pairs)
        self.chsh_threshold = float(chsh_threshold)

    # -- shared helpers -----------------------------------------------------------------
    @staticmethod
    def _coerce_message(message: "str | Bits") -> Bits:
        bits = (
            bitstring_to_bits(message) if isinstance(message, str) else validate_bits(message)
        )
        if not bits:
            raise ProtocolError("cannot transmit an empty message")
        return bits

    @staticmethod
    def _bit_error_rate(sent: Bits, delivered: Bits) -> float:
        if len(sent) != len(delivered):
            raise ProtocolError("sent and delivered messages differ in length")
        return hamming_distance(sent, delivered) / len(sent)

    # -- interface -----------------------------------------------------------------------
    @abstractmethod
    def transmit(
        self,
        message: "str | Bits",
        channel: QuantumChannel | None = None,
        rng=None,
    ) -> BaselineResult:
        """Run the baseline protocol to send *message* over *channel*."""

    def name(self) -> str:
        """Short protocol name (defaults to the feature row's name)."""
        return self.features.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(check_pairs={self.check_pairs})"


def default_channel(channel: QuantumChannel | None) -> QuantumChannel:
    """Use the supplied channel or fall back to a noiseless one."""
    return channel if channel is not None else NoiselessChannel()
