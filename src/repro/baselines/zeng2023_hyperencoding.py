"""Zeng et al. (2023): high-capacity DI-QSDC based on hyper-encoding.

Reference: H. Zeng, M.-M. Du, W. Zhong, L. Zhou, Y.-B. Sheng, "High-capacity
device-independent quantum secure direct communication based on
hyper-encoding", Fundamental Research (2023).

The protocol hyper-encodes classical information in two degrees of freedom of
each photon pair and decodes with a hyperentanglement Bell-state measurement
(HBSM) that resolves the product of both DOF Bell states at once.  Four bits
travel per transmitted photon, i.e. 1/2 transmitted qubit per message bit —
the "high capacity" column of Table I.

Simulation model: each photon pair is represented by two ``|Φ+⟩`` qubit pairs
(one per DOF); both DOF halves are encoded with Paulis and traverse the
channel in the same use; the HBSM is modelled as simultaneous Bell-state
analysis of both DOF pairs.  Losses and the hyperentanglement-assisted
complete-HBSM optics are abstracted away — they affect throughput constants,
not the compared features.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, DIQSDCBaseline, default_channel
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.channel.quantum_channel import QuantumChannel
from repro.protocol.chsh import CHSHSettings, DISecurityCheck
from repro.protocol.encoding import decode_bell_state_to_bits, encode_bits_to_pauli, pauli_operator
from repro.quantum.bell import BellState, bell_state
from repro.quantum.measurement import bell_measurement
from repro.utils.bits import chunk_bits, random_bits
from repro.utils.rng import as_rng

__all__ = ["Zeng2023HyperEncodingDIQSDC"]


class Zeng2023HyperEncodingDIQSDC(DIQSDCBaseline):
    """Hyper-encoding DI-QSDC with HBSM decoding (no user authentication)."""

    features = ProtocolFeatures(
        name="Zeng et al. 2023 (hyper-encoding)",
        reference="Zeng, Du, Zhong, Zhou, Sheng, Fundamental Research (2023)",
        resource_type=ResourceType.HYPERENTANGLEMENT,
        decoding_measurement=DecodingMeasurement.HYPER_BSM,
        qubits_per_message_bit=0.5,
        user_authentication=False,
    )

    def __init__(self, check_pairs: int = 128, chsh_threshold: float = 2.0,
                 chsh_settings: CHSHSettings | None = None):
        super().__init__(check_pairs=check_pairs, chsh_threshold=chsh_threshold)
        self.chsh_settings = chsh_settings or CHSHSettings()

    def transmit(
        self,
        message: "str | tuple[int, ...]",
        channel: QuantumChannel | None = None,
        rng=None,
    ) -> BaselineResult:
        """Send *message*, four bits per hyper-encoded photon pair."""
        generator = as_rng(rng)
        channel = default_channel(channel)
        bits = self._coerce_message(message)

        remainder = len(bits) % 4
        padded = bits + random_bits((4 - remainder) % 4, rng=generator)

        security_check = DISecurityCheck(self.chsh_settings)

        round1_states = [
            bell_state(BellState.PHI_PLUS).density_matrix() for _ in range(self.check_pairs)
        ]
        chsh_round1 = security_check.estimate(round1_states, rng=generator)
        if chsh_round1.value <= self.chsh_threshold:
            return BaselineResult(
                protocol=self.features.name,
                sent_message=bits,
                delivered_message=None,
                bit_error_rate=None,
                chsh_values=[chsh_round1.value],
                aborted=True,
                metadata={"abort": "round1_chsh"},
            )

        decoded: list[int] = []
        photon_pairs = 0
        for four_bits in chunk_bits(padded, 4):
            photon_pairs += 1
            hbsm_outcome: list[int] = []
            for dof_chunk in chunk_bits(four_bits, 2):
                dof_pair = bell_state(BellState.PHI_PLUS).density_matrix()
                label = encode_bits_to_pauli(dof_chunk)
                if label != "I":
                    dof_pair = dof_pair.evolve(pauli_operator(label), [0])
                dof_pair = channel.transmit(dof_pair, 0)
                outcome = bell_measurement(dof_pair, [0, 1], rng=generator)
                hbsm_outcome.extend(decode_bell_state_to_bits(outcome.bell_state))
            decoded.extend(hbsm_outcome)

        round2_states = [
            channel.transmit(bell_state(BellState.PHI_PLUS).density_matrix(), 0)
            for _ in range(self.check_pairs)
        ]
        chsh_round2 = security_check.estimate(round2_states, rng=generator)
        if chsh_round2.value <= self.chsh_threshold:
            return BaselineResult(
                protocol=self.features.name,
                sent_message=bits,
                delivered_message=None,
                bit_error_rate=None,
                chsh_values=[chsh_round1.value, chsh_round2.value],
                aborted=True,
                qubits_transmitted=photon_pairs,
                metadata={"abort": "round2_chsh"},
            )

        delivered = tuple(decoded)[: len(bits)]
        return BaselineResult(
            protocol=self.features.name,
            sent_message=bits,
            delivered_message=delivered,
            bit_error_rate=self._bit_error_rate(bits, delivered),
            chsh_values=[chsh_round1.value, chsh_round2.value],
            aborted=False,
            qubits_transmitted=photon_pairs + 2 * self.check_pairs,
            authenticated=False,
            metadata={
                "photon_pairs": photon_pairs,
                "bits_per_transmitted_photon": 4,
            },
        )
