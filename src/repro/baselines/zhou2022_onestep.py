"""Zhou & Sheng (2022): one-step DI-QSDC based on hyperentanglement.

Reference: L. Zhou, Y.-B. Sheng, "One-step device-independent quantum secure
direct communication", Science China Physics, Mechanics & Astronomy 65,
250311 (2022).

The original protocol entangles photon pairs simultaneously in two degrees of
freedom (polarisation and spatial mode).  Because both DOFs are transmitted in
a single photon round trip, the whole message is delivered in "one step",
without the quantum-memory storage round of the 2020 protocol, and each photon
pair carries 4 bits (2 per DOF).

Simulation model: one hyperentangled photon pair is modelled as two
independent ``|Φ+⟩`` qubit pairs (one per DOF) that traverse the channel
together — the polarisation DOF and the spatial DOF of the same photon see
the same channel use.  Dense coding and Bell-state analysis are applied per
DOF.  Photon-loss post-selection and the hyperentanglement source details of
the original paper are abstracted away; they do not affect the Table I
features (hyperentanglement resource, BSM decoding, 1 transmitted qubit per
message bit, no user authentication).
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, DIQSDCBaseline, default_channel
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.channel.quantum_channel import QuantumChannel
from repro.protocol.chsh import CHSHSettings, DISecurityCheck
from repro.protocol.encoding import decode_bell_state_to_bits, encode_bits_to_pauli, pauli_operator
from repro.quantum.bell import BellState, bell_state
from repro.quantum.measurement import bell_measurement
from repro.utils.bits import chunk_bits, random_bits
from repro.utils.rng import as_rng

__all__ = ["Zhou2022OneStepDIQSDC"]

#: Number of qubit-like degrees of freedom carried by one hyperentangled photon pair.
_DOFS_PER_PAIR = 2


class Zhou2022OneStepDIQSDC(DIQSDCBaseline):
    """One-step hyperentanglement DI-QSDC (no user authentication)."""

    features = ProtocolFeatures(
        name="Zhou et al. 2022 (one-step)",
        reference="Zhou, Sheng, Sci. China Phys. Mech. Astron. 65, 250311 (2022)",
        resource_type=ResourceType.HYPERENTANGLEMENT,
        decoding_measurement=DecodingMeasurement.BSM,
        qubits_per_message_bit=1.0,
        user_authentication=False,
    )

    def __init__(self, check_pairs: int = 128, chsh_threshold: float = 2.0,
                 chsh_settings: CHSHSettings | None = None):
        super().__init__(check_pairs=check_pairs, chsh_threshold=chsh_threshold)
        self.chsh_settings = chsh_settings or CHSHSettings()

    def transmit(
        self,
        message: "str | tuple[int, ...]",
        channel: QuantumChannel | None = None,
        rng=None,
    ) -> BaselineResult:
        """Send *message* in a single transmission round using both DOFs."""
        generator = as_rng(rng)
        channel = default_channel(channel)
        bits = self._coerce_message(message)

        bits_per_pair = 2 * _DOFS_PER_PAIR
        remainder = len(bits) % bits_per_pair
        padding = (bits_per_pair - remainder) % bits_per_pair
        padded = bits + random_bits(padding, rng=generator)

        # Single DI check round: the one-step protocol has no storage round, so
        # the check happens on pairs that traversed the channel alongside the data.
        security_check = DISecurityCheck(self.chsh_settings)
        check_states = [
            channel.transmit(bell_state(BellState.PHI_PLUS).density_matrix(), 0)
            for _ in range(self.check_pairs)
        ]
        chsh = security_check.estimate(check_states, rng=generator)
        if chsh.value <= self.chsh_threshold:
            return BaselineResult(
                protocol=self.features.name,
                sent_message=bits,
                delivered_message=None,
                bit_error_rate=None,
                chsh_values=[chsh.value],
                aborted=True,
                qubits_transmitted=self.check_pairs,
                metadata={"abort": "chsh"},
            )

        decoded: list[int] = []
        photon_pairs = 0
        for pair_chunk in chunk_bits(padded, bits_per_pair):
            photon_pairs += 1
            # Each DOF of the hyperentangled pair carries one 2-bit chunk.
            for dof_chunk in chunk_bits(pair_chunk, 2):
                dof_pair = bell_state(BellState.PHI_PLUS).density_matrix()
                label = encode_bits_to_pauli(dof_chunk)
                if label != "I":
                    dof_pair = dof_pair.evolve(pauli_operator(label), [0])
                dof_pair = channel.transmit(dof_pair, 0)
                outcome = bell_measurement(dof_pair, [0, 1], rng=generator)
                decoded.extend(decode_bell_state_to_bits(outcome.bell_state))

        delivered = tuple(decoded)[: len(bits)]
        return BaselineResult(
            protocol=self.features.name,
            sent_message=bits,
            delivered_message=delivered,
            bit_error_rate=self._bit_error_rate(bits, delivered),
            chsh_values=[chsh.value],
            aborted=False,
            qubits_transmitted=photon_pairs + self.check_pairs,
            authenticated=False,
            metadata={"photon_pairs": photon_pairs, "transmission_rounds": 1},
        )
