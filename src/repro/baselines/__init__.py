"""Prior DI-QSDC protocols compared against in Table I, plus the comparison harness."""

from repro.baselines.base import BaselineResult, DIQSDCBaseline
from repro.baselines.comparison import (
    FunctionalComparison,
    PROPOSED_FEATURES,
    all_baselines,
    render_table1,
    run_functional_comparison,
    table1_features,
)
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.baselines.zeng2023_hyperencoding import Zeng2023HyperEncodingDIQSDC
from repro.baselines.zhou2020 import Zhou2020DIQSDC
from repro.baselines.zhou2022_onestep import Zhou2022OneStepDIQSDC
from repro.baselines.zhou2023_single_photon import Zhou2023SinglePhotonDIQSDC

__all__ = [
    "BaselineResult",
    "DIQSDCBaseline",
    "FunctionalComparison",
    "PROPOSED_FEATURES",
    "all_baselines",
    "render_table1",
    "run_functional_comparison",
    "table1_features",
    "DecodingMeasurement",
    "ProtocolFeatures",
    "ResourceType",
    "Zeng2023HyperEncodingDIQSDC",
    "Zhou2020DIQSDC",
    "Zhou2022OneStepDIQSDC",
    "Zhou2023SinglePhotonDIQSDC",
]
