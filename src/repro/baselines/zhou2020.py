"""Zhou, Sheng, Long (2020): the original entanglement-based DI-QSDC protocol.

Reference: L. Zhou, Y.-B. Sheng, G.-L. Long, "Device-independent quantum
secure direct communication against collective attacks", Science Bulletin 65,
12–20 (2020).

Model implemented here (the structure the paper's Table I compares against):

1. Alice and Bob share ``|Φ+⟩`` pairs.
2. A first CHSH check over a random subset certifies device-independent
   security of the distribution.
3. Alice dense-codes two message bits per pair with a Pauli operation and
   sends her qubits to Bob through the quantum channel.
4. A second CHSH check over a reserved subset certifies the transmission.
5. Bob decodes by Bell-state measurement.

There is **no user authentication** — that is exactly the gap the proposed
UA-DI-QSDC protocol fills.  Simplifications relative to the original paper:
photon loss and the entanglement-purification subroutine are not modelled
(they do not change the Table I features), and the message is padded with a
random bit when its length is odd.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, DIQSDCBaseline, default_channel
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.channel.quantum_channel import QuantumChannel
from repro.protocol.chsh import CHSHSettings, DISecurityCheck
from repro.protocol.encoding import decode_bell_state_to_bits, encode_bits_to_pauli, pauli_operator
from repro.quantum.bell import BellState, bell_state
from repro.quantum.measurement import bell_measurement
from repro.utils.bits import chunk_bits, random_bits
from repro.utils.rng import as_rng

__all__ = ["Zhou2020DIQSDC"]


class Zhou2020DIQSDC(DIQSDCBaseline):
    """Entanglement-based DI-QSDC without user authentication."""

    features = ProtocolFeatures(
        name="Zhou et al. 2020",
        reference="Zhou, Sheng, Long, Science Bulletin 65, 12 (2020)",
        resource_type=ResourceType.ENTANGLEMENT,
        decoding_measurement=DecodingMeasurement.BSM,
        qubits_per_message_bit=1.0,
        user_authentication=False,
    )

    def __init__(self, check_pairs: int = 128, chsh_threshold: float = 2.0,
                 chsh_settings: CHSHSettings | None = None):
        super().__init__(check_pairs=check_pairs, chsh_threshold=chsh_threshold)
        self.chsh_settings = chsh_settings or CHSHSettings()

    def transmit(
        self,
        message: "str | tuple[int, ...]",
        channel: QuantumChannel | None = None,
        rng=None,
    ) -> BaselineResult:
        """Send *message* through *channel* with the 2020 DI-QSDC flow."""
        generator = as_rng(rng)
        channel = default_channel(channel)
        bits = self._coerce_message(message)
        padded = bits if len(bits) % 2 == 0 else bits + random_bits(1, rng=generator)

        security_check = DISecurityCheck(self.chsh_settings)

        # Round 1: check the freshly distributed pairs.
        round1_pairs = [
            bell_state(BellState.PHI_PLUS).density_matrix() for _ in range(self.check_pairs)
        ]
        chsh_round1 = security_check.estimate(round1_pairs, rng=generator)
        if chsh_round1.value <= self.chsh_threshold:
            return BaselineResult(
                protocol=self.features.name,
                sent_message=bits,
                delivered_message=None,
                bit_error_rate=None,
                chsh_values=[chsh_round1.value],
                aborted=True,
                qubits_transmitted=0,
                metadata={"abort": "round1_chsh"},
            )

        # Encoding + transmission of Alice's qubits.
        message_pairs = []
        for chunk in chunk_bits(padded, 2):
            pair = bell_state(BellState.PHI_PLUS).density_matrix()
            label = encode_bits_to_pauli(chunk)
            if label != "I":
                pair = pair.evolve(pauli_operator(label), [0])
            message_pairs.append(channel.transmit(pair, 0))

        # Round 2: check a reserved subset after transmission.
        round2_pairs = [
            channel.transmit(bell_state(BellState.PHI_PLUS).density_matrix(), 0)
            for _ in range(self.check_pairs)
        ]
        chsh_round2 = security_check.estimate(round2_pairs, rng=generator)
        if chsh_round2.value <= self.chsh_threshold:
            return BaselineResult(
                protocol=self.features.name,
                sent_message=bits,
                delivered_message=None,
                bit_error_rate=None,
                chsh_values=[chsh_round1.value, chsh_round2.value],
                aborted=True,
                qubits_transmitted=len(message_pairs) + self.check_pairs,
                metadata={"abort": "round2_chsh"},
            )

        # Bell-state decoding.
        decoded: list[int] = []
        for pair in message_pairs:
            outcome = bell_measurement(pair, [0, 1], rng=generator)
            decoded.extend(decode_bell_state_to_bits(outcome.bell_state))
        delivered = tuple(decoded)[: len(bits)]

        return BaselineResult(
            protocol=self.features.name,
            sent_message=bits,
            delivered_message=delivered,
            bit_error_rate=self._bit_error_rate(bits, delivered),
            chsh_values=[chsh_round1.value, chsh_round2.value],
            aborted=False,
            qubits_transmitted=len(message_pairs) + 2 * self.check_pairs,
            authenticated=False,
            metadata={"pairs_used": len(message_pairs)},
        )
