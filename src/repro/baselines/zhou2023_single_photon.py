"""Zhou et al. (2023): DI-QSDC with practical single-photon sources.

Reference: L. Zhou, B.-W. Xu, W. Zhong, Y.-B. Sheng, "Device-independent
quantum secure direct communication with single-photon sources", Physical
Review Applied 19, 014036 (2023).

Instead of distributing entangled pairs, the sender uses heralded
single-photon sources: Alice and Bob each emit single photons that interfere
at a middle station, and post-selected coincidences establish effective
entanglement on which the DI check and the dense-coding-like message encoding
are performed.  The practical consequence captured by Table I is the resource
cost: **two transmitted qubits per message bit**, with Bell-state-measurement
decoding and no user authentication.

Simulation model: each message bit consumes two single-qubit transmissions
that are post-selected into one effective ``|Φ+⟩`` pair at the measurement
station (success is deterministic here; heralding efficiency only rescales
throughput).  The message bit is encoded as ``I``/``σx`` on the effective
pair — one bit per pair, i.e. two transmitted qubits per bit — and decoded by
BSM.  The CHSH check runs on effective pairs that crossed the same channel.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, DIQSDCBaseline, default_channel
from repro.baselines.features import DecodingMeasurement, ProtocolFeatures, ResourceType
from repro.channel.quantum_channel import QuantumChannel
from repro.protocol.chsh import CHSHSettings, DISecurityCheck
from repro.protocol.encoding import decode_bell_state_to_bits, pauli_operator
from repro.quantum.bell import BellState, bell_state
from repro.quantum.measurement import bell_measurement
from repro.utils.rng import as_rng

__all__ = ["Zhou2023SinglePhotonDIQSDC"]


class Zhou2023SinglePhotonDIQSDC(DIQSDCBaseline):
    """Single-photon-source DI-QSDC (2 transmitted qubits per message bit, no UA)."""

    features = ProtocolFeatures(
        name="Zhou et al. 2023 (single-photon)",
        reference="Zhou, Xu, Zhong, Sheng, Phys. Rev. Applied 19, 014036 (2023)",
        resource_type=ResourceType.SINGLE_QUBITS,
        decoding_measurement=DecodingMeasurement.BSM,
        qubits_per_message_bit=2.0,
        user_authentication=False,
    )

    def __init__(self, check_pairs: int = 128, chsh_threshold: float = 2.0,
                 chsh_settings: CHSHSettings | None = None,
                 heralding_efficiency: float = 1.0):
        super().__init__(check_pairs=check_pairs, chsh_threshold=chsh_threshold)
        if not 0.0 < heralding_efficiency <= 1.0:
            raise ValueError("heralding_efficiency must lie in (0, 1]")
        self.chsh_settings = chsh_settings or CHSHSettings()
        self.heralding_efficiency = float(heralding_efficiency)

    def transmit(
        self,
        message: "str | tuple[int, ...]",
        channel: QuantumChannel | None = None,
        rng=None,
    ) -> BaselineResult:
        """Send *message*, one bit per post-selected effective pair."""
        generator = as_rng(rng)
        channel = default_channel(channel)
        bits = self._coerce_message(message)

        security_check = DISecurityCheck(self.chsh_settings)
        check_states = []
        for _ in range(self.check_pairs):
            effective = bell_state(BellState.PHI_PLUS).density_matrix()
            # Both photons contributing to the effective pair crossed a channel.
            effective = channel.transmit(effective, 0)
            effective = channel.transmit(effective, 1)
            check_states.append(effective)
        chsh = security_check.estimate(check_states, rng=generator)
        if chsh.value <= self.chsh_threshold:
            return BaselineResult(
                protocol=self.features.name,
                sent_message=bits,
                delivered_message=None,
                bit_error_rate=None,
                chsh_values=[chsh.value],
                aborted=True,
                qubits_transmitted=2 * self.check_pairs,
                metadata={"abort": "chsh"},
            )

        decoded: list[int] = []
        attempts = 0
        for bit in bits:
            # Post-selection: retry until the heralding succeeds.
            while True:
                attempts += 1
                if generator.random() <= self.heralding_efficiency:
                    break
            effective = bell_state(BellState.PHI_PLUS).density_matrix()
            if bit == 1:
                effective = effective.evolve(pauli_operator("X"), [0])
            effective = channel.transmit(effective, 0)
            effective = channel.transmit(effective, 1)
            outcome = bell_measurement(effective, [0, 1], rng=generator)
            two_bits = decode_bell_state_to_bits(outcome.bell_state)
            # Only the bit-flip (first) component carries the message bit.
            decoded.append(two_bits[0])

        delivered = tuple(decoded)
        return BaselineResult(
            protocol=self.features.name,
            sent_message=bits,
            delivered_message=delivered,
            bit_error_rate=self._bit_error_rate(bits, delivered),
            chsh_values=[chsh.value],
            aborted=False,
            qubits_transmitted=2 * attempts + 2 * self.check_pairs,
            authenticated=False,
            metadata={
                "transmitted_qubits_per_bit": 2,
                "heralding_attempts": attempts,
            },
        )
