"""Pluggable execution backends for the messaging-service facade.

A backend turns a wave of :class:`FragmentJob` objects (one per fragment
awaiting delivery in the current attempt) into :class:`FragmentDelivery`
outcomes.  Three implementations cover the repository's execution modes:

* :class:`LocalBackend` — one sequential
  :class:`~repro.protocol.runner.UADIQSDCProtocol` session per fragment;
  the reference implementation the others must match bit for bit.
* :class:`BatchBackend` — the same sessions fanned out through
  :func:`repro.experiments.sweep.run_sweep` worker pools for throughput.
  Because every fragment's randomness derives only from its own job seed,
  Local and Batch deliveries are bit-identical under a fixed service seed
  (asserted by ``tests/api/test_service.py``).
* :class:`NetworkBackend` — multi-hop trusted-relay delivery through the
  :class:`~repro.network.scheduler.NetworkScheduler`: each fragment becomes
  one network session carrying the frame bits from ``config.source`` to
  ``config.target``.

Backends are stateless; everything they need arrives with the jobs and the
:class:`~repro.api.config.ServiceConfig`.  New execution modes plug in by
implementing the :class:`Backend` protocol and registering in
:data:`BACKENDS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, Sequence, runtime_checkable

from repro.api.fragmentation import derive_seed
from repro.api.report import AttemptRecord
from repro.exceptions import ConfigurationError
from repro.protocol.runner import SessionCaches, UADIQSDCProtocol
from repro.telemetry import runtime as telemetry
from repro.utils.bits import Bits, bits_to_str, bitstring_to_bits
from repro.utils.rng import as_rng

__all__ = [
    "FragmentJob",
    "FragmentDelivery",
    "Backend",
    "LocalBackend",
    "BatchBackend",
    "NetworkBackend",
    "BACKENDS",
]


@dataclass(frozen=True)
class FragmentJob:
    """One fragment awaiting one delivery attempt.

    Attributes
    ----------
    index:
        Fragment position within the payload.
    bits:
        The wire bits to transport (framed or raw, the backend does not
        care).
    seed:
        Deterministic protocol seed for this attempt (see
        :func:`repro.api.fragmentation.fragment_seed`).
    attempt:
        0 for the first transmission, 1+ for retransmissions.
    """

    index: int
    bits: Bits
    seed: int
    attempt: int


@dataclass
class FragmentDelivery:
    """A backend's outcome for one job."""

    job: FragmentJob
    success: bool
    delivered_bits: "Bits | None"
    record: AttemptRecord


@runtime_checkable
class Backend(Protocol):
    """The pluggable execution contract of the messaging service."""

    name: str

    def deliver(
        self, jobs: Sequence[FragmentJob], config: Any
    ) -> list[FragmentDelivery]:
        """Execute one attempt wave and return one outcome per job, in order."""
        ...


def _execute_fragment(
    job: FragmentJob, config: Any, caches: "SessionCaches | None" = None
) -> FragmentDelivery:
    """Run one fragment as a single protocol session (Local/Batch shared path).

    Keeping this as the one code path both single-link backends call is what
    makes Local-vs-Batch parity exact rather than statistical.  An optional
    :class:`~repro.protocol.runner.SessionCaches` fuses the wave's sessions
    through one memo state; each session still consumes only its own
    seed-derived randomness, so deliveries are bit-identical with or
    without it.
    """
    protocol_config = config.protocol_config(len(job.bits), seed=job.seed)
    attack = None
    if config.attack_factory is not None:
        attack_rng = as_rng(derive_seed(job.seed, stream="attack"))
        attack = config.attack_factory(job.index, job.attempt, attack_rng)
    with telemetry.span(
        "service.fragment_attempt",
        "service",
        {"fragment": job.index, "attempt": job.attempt},
    ) as span:
        telemetry.counter_inc("service.fragment_attempts")
        result = UADIQSDCProtocol(protocol_config, attack=attack, caches=caches).run(
            job.bits
        )
        span.attributes["success"] = result.success
    return FragmentDelivery(
        job=job,
        success=result.success,
        delivered_bits=result.delivered_message,
        record=AttemptRecord.from_protocol_result(job.attempt, job.seed, result),
    )


class LocalBackend:
    """Sequential single-link sessions — the reference backend.

    The wave's sessions share one :class:`SessionCaches`, so state-dependent
    measurement statistics are computed once per wave instead of once per
    fragment (bit-identical either way; see
    :class:`~repro.protocol.runner.SessionCaches`).
    """

    name = "local"

    def deliver(
        self, jobs: Sequence[FragmentJob], config: Any
    ) -> list[FragmentDelivery]:
        caches = SessionCaches()
        return [_execute_fragment(job, config, caches=caches) for job in jobs]


class BatchBackend:
    """Fragment fan-out through the parallel sweep substrate.

    Each job becomes one point of a :func:`repro.experiments.sweep.run_sweep`
    grid; the worker ignores the sweep-derived seed and uses the job's own,
    so results are bit-identical to :class:`LocalBackend` whatever executor
    or worker count runs the pool.

    The wave shares one :class:`SessionCaches`: fully across sessions on the
    serial and thread executors, per worker process otherwise.  Caches only
    memoise state-dependent floats that every session would compute
    identically, so the executor choice cannot affect delivery outcomes.
    """

    name = "batch"

    def deliver(
        self, jobs: Sequence[FragmentJob], config: Any
    ) -> list[FragmentDelivery]:
        # Imported lazily: the experiments package imports modules that are
        # being rewired onto this API (e2e), so a module-level import would
        # close an import cycle.
        from repro.experiments.sweep import run_sweep

        if not jobs:
            return []
        by_key = {(job.index, job.attempt): job for job in jobs}
        caches = SessionCaches()

        def worker(params: dict[str, Any], _sweep_seed: int) -> FragmentDelivery:
            job = by_key[(params["fragment"], params["attempt"])]
            return _execute_fragment(job, config, caches=caches)

        grid = [{"fragment": job.index, "attempt": job.attempt} for job in jobs]
        sweep = run_sweep(
            worker,
            grid,
            base_seed=0,
            executor=config.executor,
            max_workers=config.max_workers,
        )
        return list(sweep.values)


class NetworkBackend:
    """Multi-hop trusted-relay delivery through the network scheduler.

    Every job becomes one :class:`~repro.network.sessions.SessionRequest`
    carrying the frame bits as its explicit message and the job seed as its
    explicit per-session seed; the scheduler then applies its usual
    admission control, routing and (optional) queueing-induced memory
    decoherence before the hop-by-hop protocol runs.
    """

    name = "network"

    def deliver(
        self, jobs: Sequence[FragmentJob], config: Any
    ) -> list[FragmentDelivery]:
        from repro.network.scheduler import NetworkScheduler
        from repro.network.sessions import SessionParameters, SessionRequest

        if not jobs:
            return []
        source, target = self._endpoints(config)
        # The service-level simulator_backend applies to every hop unless the
        # caller supplied an explicit fleet-wide SessionParameters (which then
        # owns the per-hop engine choice).
        session_params = config.session_params
        if session_params is None:
            session_params = SessionParameters(
                simulator_backend=config.simulator_backend
            )
        requests = [
            SessionRequest(
                session_id=position,
                source=source,
                target=target,
                message_length=len(job.bits),
                arrival_time=0.0,
                message=bits_to_str(job.bits),
                seed=job.seed,
                scenario=config.scenario,
            )
            for position, job in enumerate(jobs)
        ]
        scheduler = NetworkScheduler(
            config.topology,
            routing_policy=config.routing_policy,
            session_params=session_params,
            max_wait=config.max_wait,
            seed=derive_seed(jobs[0].seed, stream="network"),
            executor=config.executor,
            max_workers=config.max_workers,
        )
        result = scheduler.run(_StaticTraffic(requests))
        by_id = {record.session_id: record for record in result.records}
        deliveries = []
        for position, job in enumerate(jobs):
            record = by_id[position]
            delivered = (
                None
                if record.delivered_message is None
                else bitstring_to_bits(record.delivered_message)
            )
            deliveries.append(
                FragmentDelivery(
                    job=job,
                    success=record.delivered and delivered is not None,
                    delivered_bits=delivered,
                    record=AttemptRecord.from_session_record(
                        job.attempt, job.seed, record
                    ),
                )
            )
        return deliveries

    @staticmethod
    def _endpoints(config: Any) -> tuple[str, str]:
        topology = config.topology
        names = topology.node_names
        source = config.source if config.source is not None else names[0]
        target = config.target if config.target is not None else names[-1]
        if source == target:
            raise ConfigurationError(
                f"network delivery needs distinct endpoints, got {source!r} twice"
            )
        return source, target


class _StaticTraffic:
    """A traffic generator that replays a fixed request list (ignores rng)."""

    def __init__(self, requests: Sequence[Any]):
        self.requests = list(requests)

    def generate(self, topology: Any, rng: Any = None) -> list[Any]:
        for request in self.requests:
            topology.node(request.source)
            topology.node(request.target)
        return list(self.requests)


#: Registry of backend constructors, keyed by ``ServiceConfig.backend`` name.
BACKENDS = {
    "local": LocalBackend,
    "batch": BatchBackend,
    "network": NetworkBackend,
}
