"""Payload fragmentation: framing, integrity checking and per-fragment seeds.

A :class:`~repro.api.service.MessagingService` payload can be far longer than
one protocol session comfortably carries, so the service splits it into
protocol-sized *fragments*.  Each fragment travels as one framed bit sequence:

====================  =====  ====================================================
field                 bits   meaning
====================  =====  ====================================================
``index``             16     fragment position (0-based)
``total``             16     total number of fragments of the payload
``length``            16     number of payload bits in this fragment
``crc``               16     CRC-16/CCITT of the payload bits
payload               ≤2¹⁶−1 the fragment's slice of the payload
====================  =====  ====================================================

The header makes reassembly self-describing and the CRC turns *undetected*
channel bit errors into detected ones: a fragment whose delivered frame fails
:meth:`ParsedFrame.intact` is treated exactly like a protocol abort and
scheduled for retransmission.

Seeds are derived per ``(fragment, attempt)`` with :func:`fragment_seed`, a
SHA-256 construction in the style of
:func:`repro.experiments.sweep.point_seed` (re-implemented here so the API
layer does not import the experiments package at module scope): the same
service seed always produces the same fragment seeds, the same retransmission
seeds, and therefore a bit-identical delivery — the determinism contract the
API tests pin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.utils.bits import Bits, bits_to_int, int_to_bits, validate_bits

__all__ = [
    "HEADER_BITS",
    "MAX_FRAGMENT_BITS",
    "MAX_FRAGMENTS",
    "crc16",
    "derive_seed",
    "fragment_seed",
    "FragmentFrame",
    "ParsedFrame",
    "fragment_payload",
    "reassemble",
]

#: Bits per header field (index, total, length, crc).
_FIELD_BITS = 16
#: Total framing overhead per fragment.
HEADER_BITS = 4 * _FIELD_BITS
#: Largest payload one fragment can carry (length field is 16 bits).
MAX_FRAGMENT_BITS = 2**_FIELD_BITS - 1
#: Largest number of fragments one payload can span (index field is 16 bits).
MAX_FRAGMENTS = 2**_FIELD_BITS


def crc16(bits: Bits) -> int:
    """CRC-16/CCITT-FALSE of a bit sequence (poly 0x1021, init 0xFFFF).

    Computed directly over bits rather than bytes so fragments of any length
    (not just whole bytes) are covered.
    """
    register = 0xFFFF
    for bit in validate_bits(bits):
        top = (register >> 15) & 1
        register = (register << 1) & 0xFFFF
        if top ^ bit:
            register ^= 0x1021
    return register


def derive_seed(base_seed: int, **tags: "int | str") -> int:
    """Derive a deterministic 63-bit seed from a base seed and named tags.

    Same construction as :func:`repro.experiments.sweep.point_seed`: a
    SHA-256 digest of the base seed and the sorted ``(name, value)`` pairs.
    The result depends only on its inputs — never on call order — which is
    what makes retransmission schedules reproducible.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode())
    for name in sorted(tags):
        value = tags[name]
        if isinstance(value, str):
            token = f"s:{value}"
        else:
            token = f"i:{int(value)}"
        digest.update(b"\x00")
        digest.update(str(name).encode())
        digest.update(b"\x01")
        digest.update(token.encode())
    return int.from_bytes(digest.digest()[:8], "big") % (2**63 - 1)


def fragment_seed(base_seed: int, index: int, attempt: int = 0) -> int:
    """The protocol seed for one delivery attempt of one fragment.

    ``attempt`` 0 is the first transmission; each retransmission increments
    it, so a retried fragment re-runs the protocol with fresh (but still
    deterministic) randomness instead of replaying the aborted session.
    """
    return derive_seed(
        base_seed, stream="fragment", fragment=int(index), attempt=int(attempt)
    )


@dataclass(frozen=True)
class FragmentFrame:
    """One framed fragment, ready for transmission."""

    index: int
    total: int
    payload: Bits

    def __post_init__(self):
        if not 0 <= self.index < self.total:
            raise ReproError(
                f"fragment index {self.index} outside [0, {self.total})"
            )
        if self.total > MAX_FRAGMENTS:
            raise ReproError(
                f"{self.total} fragments exceed the {MAX_FRAGMENTS}-fragment limit"
            )
        if not 1 <= len(self.payload) <= MAX_FRAGMENT_BITS:
            raise ReproError(
                f"fragment payload must hold 1..{MAX_FRAGMENT_BITS} bits, "
                f"got {len(self.payload)}"
            )

    def to_bits(self) -> Bits:
        """Serialise the frame: 64 header bits followed by the payload."""
        return (
            int_to_bits(self.index, _FIELD_BITS)
            + int_to_bits(self.total % MAX_FRAGMENTS, _FIELD_BITS)
            + int_to_bits(len(self.payload), _FIELD_BITS)
            + int_to_bits(crc16(self.payload), _FIELD_BITS)
            + self.payload
        )


@dataclass(frozen=True)
class ParsedFrame:
    """A received frame split back into its fields (possibly corrupted)."""

    index: int
    total: int
    length: int
    crc: int
    payload: Bits

    @property
    def intact(self) -> bool:
        """True if the payload is self-consistent with the header."""
        return len(self.payload) == self.length and crc16(self.payload) == self.crc

    def matches(self, index: int, total: int) -> bool:
        """True if the frame is intact *and* is the frame the receiver expected."""
        return (
            self.intact
            and self.index == index
            and self.total == total % MAX_FRAGMENTS
        )

    @classmethod
    def parse(cls, bits: Bits) -> "ParsedFrame":
        """Split delivered bits into header fields and payload.

        Never raises on corrupted content — corruption is reported through
        :attr:`intact` / :meth:`matches` so the service can schedule a
        retransmission.  Only a frame too short to contain a header is a
        caller error.
        """
        tbits = validate_bits(bits)
        if len(tbits) < HEADER_BITS + 1:
            raise ReproError(
                f"frame of {len(tbits)} bits is shorter than header + 1 payload bit"
            )
        fields = [
            bits_to_int(tbits[i * _FIELD_BITS:(i + 1) * _FIELD_BITS])
            for i in range(4)
        ]
        return cls(
            index=fields[0],
            total=fields[1],
            length=fields[2],
            crc=fields[3],
            payload=tbits[HEADER_BITS:],
        )


def fragment_payload(bits: Bits, fragment_bits: int) -> list[FragmentFrame]:
    """Split payload bits into framed fragments of at most *fragment_bits* each.

    The last fragment carries the remainder (its ``length`` field says how
    many bits, so no padding is needed).
    """
    tbits = validate_bits(bits)
    if not tbits:
        raise ReproError("cannot fragment an empty payload")
    if not 1 <= fragment_bits <= MAX_FRAGMENT_BITS:
        raise ReproError(
            f"fragment_bits must lie in 1..{MAX_FRAGMENT_BITS}, got {fragment_bits}"
        )
    total = (len(tbits) + fragment_bits - 1) // fragment_bits
    if total > MAX_FRAGMENTS:
        raise ReproError(
            f"payload of {len(tbits)} bits needs {total} fragments, "
            f"more than the {MAX_FRAGMENTS}-fragment limit; raise fragment_bits"
        )
    return [
        FragmentFrame(
            index=index,
            total=total,
            payload=tbits[index * fragment_bits:(index + 1) * fragment_bits],
        )
        for index in range(total)
    ]


def reassemble(payloads: "dict[int, Bits]", total: int) -> Bits:
    """Concatenate verified fragment payloads back into the original bits.

    Parameters
    ----------
    payloads:
        Mapping of fragment index to that fragment's (already verified)
        payload bits.
    total:
        Expected fragment count; every index in ``range(total)`` must be
        present.
    """
    missing = [index for index in range(total) if index not in payloads]
    if missing:
        raise ReproError(f"cannot reassemble: missing fragments {missing}")
    return tuple(
        bit for index in range(total) for bit in validate_bits(payloads[index])
    )
