"""Unified delivery outcomes for the messaging-service facade.

The three execution paths of the repository historically returned three
incompatible result types:

* a single session → :class:`repro.protocol.results.ProtocolResult`;
* a batched fan-out → :class:`repro.experiments.sweep.SweepResult` values;
* a network delivery → :class:`repro.network.metrics.SessionRecord`.

:class:`AttemptRecord` normalises any of them into one flat metrics row
(:meth:`AttemptRecord.from_protocol_result` /
:meth:`AttemptRecord.from_session_record`), :class:`FragmentRecord` stacks the
attempts of one fragment (first transmission plus retransmissions), and
:class:`DeliveryReport` aggregates the whole payload delivery — the single
outcome type every :meth:`repro.api.service.MessagingService.send` returns,
whatever backend executed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.bits import Bits

__all__ = ["AttemptRecord", "FragmentRecord", "DeliveryReport"]


def _mean(values: list[float]) -> "float | None":
    return sum(values) / len(values) if values else None


@dataclass
class AttemptRecord:
    """One delivery attempt of one fragment, normalised across backends.

    Attributes
    ----------
    attempt:
        0 for the first transmission, 1+ for retransmissions.
    seed:
        The deterministic protocol seed of this attempt.
    success:
        True if the execution layer delivered bits (protocol success or
        network delivery; bit errors allowed — frame integrity is judged
        separately by the service).
    frame_intact:
        True if the delivered frame passed header + CRC verification (set by
        the service after parsing; equal to ``success`` in unframed mode).
    abort_reason:
        The protocol/network abort reason (``"none"`` when delivered).
    source:
        ``"protocol"`` for Local/Batch executions, ``"network"`` for
        multi-hop deliveries.
    chsh_round1, chsh_round2, bob_authentication_error,
    alice_authentication_error, check_bit_error_rate:
        Protocol security metrics (network attempts report the mean over
        executed hops where applicable, or None).
    details:
        Backend-specific extras (route, failed hop, wait time, ...).
    raw:
        The original result object (``ProtocolResult`` or ``SessionRecord``)
        for callers that need the full audit trail; excluded from
        :meth:`summary`.
    """

    attempt: int
    seed: int
    success: bool
    abort_reason: str
    source: str
    frame_intact: bool = False
    chsh_round1: "float | None" = None
    chsh_round2: "float | None" = None
    bob_authentication_error: "float | None" = None
    alice_authentication_error: "float | None" = None
    check_bit_error_rate: "float | None" = None
    details: dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    @classmethod
    def from_protocol_result(
        cls, attempt: int, seed: int, result: Any
    ) -> "AttemptRecord":
        """Normalise a :class:`~repro.protocol.results.ProtocolResult`."""
        return cls(
            attempt=attempt,
            seed=seed,
            success=bool(result.success),
            abort_reason=result.abort_reason.value,
            source="protocol",
            chsh_round1=None if result.chsh_round1 is None else result.chsh_round1.value,
            chsh_round2=None if result.chsh_round2 is None else result.chsh_round2.value,
            bob_authentication_error=result.bob_authentication_error,
            alice_authentication_error=result.alice_authentication_error,
            check_bit_error_rate=result.check_bit_error_rate,
            details={"attack": result.metadata.get("attack")},
            raw=result,
        )

    @classmethod
    def from_session_record(
        cls, attempt: int, seed: int, record: Any
    ) -> "AttemptRecord":
        """Normalise a :class:`~repro.network.metrics.SessionRecord`."""
        chsh1 = [r.chsh_round1 for r in record.hop_reports if r.chsh_round1 is not None]
        chsh2 = [r.chsh_round2 for r in record.hop_reports if r.chsh_round2 is not None]
        qber = [
            r.check_bit_error_rate
            for r in record.hop_reports
            if r.success and r.check_bit_error_rate is not None
        ]
        if record.delivered:
            abort_reason = "none"
        else:
            abort_reason = record.abort_reason or record.status
        return cls(
            attempt=attempt,
            seed=seed,
            success=bool(record.delivered),
            abort_reason=abort_reason,
            source="network",
            chsh_round1=_mean(chsh1),
            chsh_round2=_mean(chsh2),
            check_bit_error_rate=_mean(qber),
            details={
                "status": record.status,
                "route": None if record.route_nodes is None else list(record.route_nodes),
                "failed_hop": record.failed_hop,
                "wait_time": record.wait_time,
                "hops": [report.summary() for report in record.hop_reports],
            },
            raw=record,
        )

    def summary(self) -> dict[str, Any]:
        """JSON-friendly view (the unit compared by the determinism tests)."""
        return {
            "attempt": self.attempt,
            "seed": self.seed,
            "success": self.success,
            "frame_intact": self.frame_intact,
            "abort_reason": self.abort_reason,
            "source": self.source,
            "chsh_round1": self.chsh_round1,
            "chsh_round2": self.chsh_round2,
            "bob_authentication_error": self.bob_authentication_error,
            "alice_authentication_error": self.alice_authentication_error,
            "check_bit_error_rate": self.check_bit_error_rate,
            "details": self.details,
        }


@dataclass
class FragmentRecord:
    """Delivery history of one fragment: first transmission + retransmissions."""

    index: int
    num_payload_bits: int
    delivered: bool = False
    payload: "Bits | None" = None
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def retransmissions(self) -> int:
        """Attempts beyond the first (0 when the fragment landed immediately)."""
        return max(0, len(self.attempts) - 1)

    def summary(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "num_payload_bits": self.num_payload_bits,
            "delivered": self.delivered,
            "attempts": [attempt.summary() for attempt in self.attempts],
        }


@dataclass
class DeliveryReport:
    """The outcome of one :meth:`MessagingService.send` call.

    Attributes
    ----------
    success:
        True if every fragment was delivered with an intact frame and the
        payload was reassembled.
    backend:
        Name of the backend that executed the delivery
        (``"local"``/``"batch"``/``"network"``).
    payload_kind:
        How the payload was encoded (see :mod:`repro.api.codec`).
    sent_payload, delivered_payload:
        The original payload and its decoded counterpart (None on failure).
        On a noisy channel the delivered payload can differ from the sent
        one only if the corruption defeated both the protocol's check bits
        and the frame CRC.
    num_payload_bits, num_fragments:
        Size of the encoded payload and how many fragments carried it.
    fragments:
        Per-fragment delivery histories.
    metadata:
        Service configuration echo (seed, fragment size, retry budget, ...).
    """

    success: bool
    backend: str
    payload_kind: str
    sent_payload: Any
    delivered_payload: Any
    num_payload_bits: int
    num_fragments: int
    fragments: list[FragmentRecord] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- aggregates --------------------------------------------------------------
    @property
    def total_attempts(self) -> int:
        """Protocol/network sessions executed across all fragments."""
        return sum(fragment.num_attempts for fragment in self.fragments)

    @property
    def retransmissions(self) -> int:
        """Sessions re-run because an attempt aborted or failed verification."""
        return sum(fragment.retransmissions for fragment in self.fragments)

    @property
    def undelivered_fragments(self) -> list[int]:
        return [f.index for f in self.fragments if not f.delivered]

    @property
    def mean_chsh_round1(self) -> "float | None":
        """Mean first-round CHSH value across every attempt that reached it."""
        return _mean(
            [
                attempt.chsh_round1
                for fragment in self.fragments
                for attempt in fragment.attempts
                if attempt.chsh_round1 is not None
            ]
        )

    @property
    def mean_qber(self) -> "float | None":
        """Mean check-bit error rate across successful attempts."""
        return _mean(
            [
                attempt.check_bit_error_rate
                for fragment in self.fragments
                for attempt in fragment.attempts
                if attempt.success and attempt.check_bit_error_rate is not None
            ]
        )

    def abort_reasons(self) -> dict[str, int]:
        """Histogram of abort reasons over failed attempts."""
        histogram: dict[str, int] = {}
        for fragment in self.fragments:
            for attempt in fragment.attempts:
                if not (attempt.success and attempt.frame_intact):
                    reason = attempt.abort_reason
                    if attempt.success and not attempt.frame_intact:
                        reason = "frame_verification_failed"
                    histogram[reason] = histogram.get(reason, 0) + 1
        return histogram

    @property
    def payload_matches(self) -> bool:
        """Diagnostic: delivered payload equals the sent one exactly.

        A real receiver cannot compute this (it does not know the sent
        payload); the simulation reports it for experiment bookkeeping, like
        ``ProtocolResult.message_bit_error_rate``.
        """
        return self.success and self.delivered_payload == self.sent_payload

    def summary(self) -> dict[str, Any]:
        """Canonical JSON-friendly view of the whole delivery.

        Two sends with the same configuration and seed produce *equal*
        summaries whichever backend/executor ran them — the determinism
        contract ``tests/api`` pins.
        """
        return {
            "success": self.success,
            "backend": self.backend,
            "payload_kind": self.payload_kind,
            "num_payload_bits": self.num_payload_bits,
            "num_fragments": self.num_fragments,
            "total_attempts": self.total_attempts,
            "retransmissions": self.retransmissions,
            "undelivered_fragments": self.undelivered_fragments,
            "abort_reasons": self.abort_reasons(),
            "mean_chsh_round1": self.mean_chsh_round1,
            "mean_qber": self.mean_qber,
            "fragments": [fragment.summary() for fragment in self.fragments],
            "metadata": dict(self.metadata),
        }
