"""The :class:`MessagingService` facade — one entry point for every backend.

The service turns an application payload into protocol traffic::

    from repro import MessagingService, ServiceConfig

    service = MessagingService(ServiceConfig.ideal(seed=7))
    report = service.send("любой text 🙂")
    assert report.success and report.delivered_payload == "любой text 🙂"

Pipeline of one :meth:`MessagingService.send` call:

1. **Encode** — the payload (bytes / text / bits) becomes a bit sequence
   (:mod:`repro.api.codec`).
2. **Fragment** — the bits are split into protocol-sized fragments with
   framing headers and CRCs (:mod:`repro.api.fragmentation`); with
   ``framing=False`` the payload travels as one raw fragment instead.
3. **Deliver** — each attempt wave hands the outstanding fragments to the
   configured :class:`~repro.api.backends.Backend` with deterministic
   per-``(fragment, attempt)`` seeds.
4. **Verify** — delivered frames are parsed and checked (header fields +
   CRC); a fragment whose session aborted *or* whose frame failed
   verification is retransmitted with the next attempt seed, up to
   ``max_retries`` times.
5. **Reassemble** — verified fragment payloads are concatenated and decoded
   back into the payload type, and everything observed along the way is
   returned as one :class:`~repro.api.report.DeliveryReport`.

Determinism: given a fixed :class:`~repro.api.config.ServiceConfig` seed the
whole delivery — fragment seeds, retransmission schedule, delivered bits —
is reproducible, and the local and batch backends are bit-identical.
"""

from __future__ import annotations

from typing import Any

from repro.api.backends import FragmentJob
from repro.api.codec import decode_payload, encode_payload
from repro.api.config import ServiceConfig
from repro.api.fragmentation import (
    HEADER_BITS,
    FragmentFrame,
    ParsedFrame,
    fragment_payload,
    fragment_seed,
    reassemble,
)
from repro.api.report import DeliveryReport, FragmentRecord
from repro.telemetry import runtime as telemetry
from repro.utils.bits import Bits
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

__all__ = ["MessagingService"]

_log = get_logger("api.service")


class MessagingService:
    """Service-level facade over the UA-DI-QSDC reproduction.

    Parameters
    ----------
    config:
        The service configuration (validated on construction); defaults to
        :meth:`ServiceConfig.paper_default`.

    Thread safety
    -------------
    One service instance may serve concurrent :meth:`send` calls — the
    contract the delivery runtime's worker pool
    (:class:`~repro.runtime.engine.DeliveryEngine`) builds on:

    * :meth:`send` itself keeps all per-send state (seeds, fragment records,
      RNG streams) in locals; ``self.config`` is a frozen dataclass and is
      never mutated after construction (``to=`` overrides produce a copy).
    * The local/batch/network backends construct their protocol sessions,
      schedulers and simulator backends per ``deliver()`` call from the
      job's own seed, so concurrent sends share no mutable protocol state.
      Shared :class:`~repro.quantum.batch.PropagatorCache` instances are
      internally locked.
    * An unseeded send (no per-send seed, no config seed) draws fresh
      entropy per call, which is thread-safe but irreproducible.
    * Telemetry counters/spans go through the module-level session, whose
      tracer and metrics registry carry their own locks.

    ``tests/api/test_service_threadsafety.py`` pins this: 16 threads
    hammering one service produce reports byte-identical to serial sends.
    """

    def __init__(self, config: "ServiceConfig | None" = None):
        self.config = (config or ServiceConfig.paper_default()).validate()
        self._backend = self.config.create_backend()

    # -- public API --------------------------------------------------------------
    def send(
        self,
        payload: Any,
        *,
        to: "str | None" = None,
        kind: str = "auto",
        seed: "int | None" = None,
    ) -> DeliveryReport:
        """Deliver *payload* and return the unified :class:`DeliveryReport`.

        Parameters
        ----------
        payload:
            ``bytes``, ``str`` (UTF-8 text), or a bit sequence; see
            :func:`repro.api.codec.encode_payload`.
        to:
            Target node name for the network backend (overrides
            ``config.target``); recorded as metadata for the others.
        kind:
            Payload kind override (``"auto"`` detects from the type; pass
            ``"bits"`` to send a ``'0'``/``'1'`` string as raw bits).
        seed:
            Per-send seed override (defaults to ``config.seed``; None there
            too draws fresh entropy, making the send irreproducible).
        """
        config = self.config
        backend = self._backend
        if to is not None and config.backend == "network":
            config = config.with_network(target=to)

        base_seed = seed if seed is not None else config.seed
        if base_seed is None:
            base_seed = int(as_rng(None).integers(0, 2**63 - 1))
        base_seed = int(base_seed)

        payload_bits, resolved_kind = encode_payload(payload, kind)
        if config.framing:
            frames = fragment_payload(payload_bits, config.fragment_bits)
        else:
            frames = [None]

        with telemetry.span(
            "service.send",
            "service",
            {
                "backend": backend.name,
                "fragments": len(frames),
                "payload_bits": len(payload_bits),
            },
        ) as send_span:
            report = self._deliver(
                config, backend, payload, payload_bits, resolved_kind, frames, base_seed, to
            )
            send_span.attributes["success"] = report.success
        return report

    def _deliver(
        self,
        config: ServiceConfig,
        backend: Any,
        payload: Any,
        payload_bits: Bits,
        resolved_kind: str,
        frames: list,
        base_seed: int,
        to: "str | None",
    ) -> DeliveryReport:
        """The attempt-wave loop of one send (split out to sit inside the span)."""
        records = {
            index: FragmentRecord(
                index=index,
                num_payload_bits=(
                    len(payload_bits) if frame is None else len(frame.payload)
                ),
            )
            for index, frame in enumerate(frames)
        }
        delivered_payloads: dict[int, Bits] = {}
        pending = set(records)

        for attempt in range(config.max_retries + 1):
            # In unframed mode the first attempt uses the service seed
            # directly, so a single-fragment facade send reproduces a direct
            # ``UADIQSDCProtocol(config).run(...)`` session bit for bit — the
            # guarantee the migrated ``e2e`` experiment and the
            # facade-overhead benchmark rely on.  Framed sends (and every
            # retransmission) derive well-separated per-(fragment, attempt)
            # seeds instead.
            jobs = [
                FragmentJob(
                    index=index,
                    bits=self._wire_bits(frames[index], payload_bits),
                    seed=(
                        base_seed
                        if not config.framing and attempt == 0
                        else fragment_seed(base_seed, index, attempt)
                    ),
                    attempt=attempt,
                )
                for index in sorted(pending)
            ]
            if attempt > 0:
                telemetry.counter_inc(
                    "service.retransmissions", len(jobs), backend=backend.name
                )
                _log.info(
                    "retransmitting %d fragment(s) %s attempt=%d (trace_id=%s)",
                    len(jobs),
                    sorted(pending),
                    attempt,
                    telemetry.current_trace_id(),
                )
            with telemetry.span(
                "service.attempt_wave",
                "service",
                {"attempt": attempt, "fragments": len(jobs)},
            ):
                deliveries = backend.deliver(jobs, config)
            for delivery in deliveries:
                index = delivery.job.index
                record = delivery.record
                payload_ok, fragment_bits_out = self._verify(
                    delivery.success,
                    delivery.delivered_bits,
                    frames[index],
                    len(frames),
                )
                record.frame_intact = payload_ok
                records[index].attempts.append(record)
                if delivery.success and not payload_ok:
                    # The session delivered bits but the frame failed
                    # verification (header mismatch or CRC) — the condition
                    # the crc_failures counter tracks.
                    telemetry.counter_inc(
                        "service.crc_failures", backend=backend.name
                    )
                    _log.debug(
                        "fragment %d attempt %d failed frame verification"
                        " (trace_id=%s)",
                        index,
                        attempt,
                        telemetry.current_trace_id(),
                    )
                if payload_ok and fragment_bits_out is not None:
                    delivered_payloads[index] = fragment_bits_out
                    records[index].delivered = True
                    records[index].payload = fragment_bits_out
                    pending.discard(index)
            if not pending:
                break

        success = not pending
        delivered_payload = None
        if success:
            assembled = reassemble(delivered_payloads, len(frames))
            delivered_payload = decode_payload(assembled, resolved_kind)

        return DeliveryReport(
            success=success,
            backend=backend.name,
            payload_kind=resolved_kind,
            sent_payload=payload,
            delivered_payload=delivered_payload,
            num_payload_bits=len(payload_bits),
            num_fragments=len(frames),
            fragments=[records[index] for index in sorted(records)],
            metadata={
                **config.describe(),
                "seed": base_seed,
                "to": to,
            },
        )

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _wire_bits(frame: "FragmentFrame | None", payload_bits: Bits) -> Bits:
        """The bits one fragment puts on the wire (framed or raw)."""
        return payload_bits if frame is None else frame.to_bits()

    @staticmethod
    def _verify(
        success: bool,
        delivered: "Bits | None",
        frame: "FragmentFrame | None",
        total: int,
    ) -> "tuple[bool, Bits | None]":
        """Judge one delivered fragment; return (accepted, fragment payload).

        Framed mode parses the delivered bits and checks every header field
        against what the receiver expects plus the payload CRC; raw mode
        (framing disabled) accepts whatever the protocol session delivered,
        matching direct-``UADIQSDCProtocol`` semantics.
        """
        if not success or delivered is None:
            return False, None
        if frame is None:
            return True, delivered
        if len(delivered) != HEADER_BITS + len(frame.payload):
            return False, None
        parsed = ParsedFrame.parse(delivered)
        if not parsed.matches(frame.index, total):
            return False, None
        return True, parsed.payload
