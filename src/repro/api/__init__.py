"""Service-level public API: one facade over every execution mode.

This package is the recommended entry point for *using* the reproduction as
a messaging system (the research surfaces — :mod:`repro.protocol`,
:mod:`repro.experiments` — remain available for studying it)::

    from repro.api import MessagingService, ServiceConfig

    service = MessagingService(ServiceConfig.noisy_nisq(seed=11))
    report = service.send(b"arbitrary payload bytes")
    assert report.success

Modules:

* :mod:`repro.api.codec` — payload ↔ bit conversions (bytes, UTF-8 text,
  raw bits);
* :mod:`repro.api.fragmentation` — framing headers, CRC-16 integrity,
  deterministic per-fragment/attempt seeds;
* :mod:`repro.api.config` — the fluent :class:`ServiceConfig` builder and
  its presets;
* :mod:`repro.api.backends` — the pluggable execution backends (local,
  batch, network);
* :mod:`repro.api.report` — the unified :class:`DeliveryReport` outcome
  type;
* :mod:`repro.api.service` — the :class:`MessagingService` facade itself.
"""

from repro.api.backends import (
    BACKENDS,
    Backend,
    BatchBackend,
    FragmentDelivery,
    FragmentJob,
    LocalBackend,
    NetworkBackend,
)
from repro.api.codec import (
    PAYLOAD_KINDS,
    bits_to_bytes,
    bits_to_text,
    bytes_to_bits,
    decode_payload,
    encode_payload,
    text_to_bits,
)
from repro.api.config import BACKEND_NAMES, ServiceConfig
from repro.api.fragmentation import (
    HEADER_BITS,
    FragmentFrame,
    ParsedFrame,
    crc16,
    derive_seed,
    fragment_payload,
    fragment_seed,
    reassemble,
)
from repro.api.report import AttemptRecord, DeliveryReport, FragmentRecord
from repro.api.service import MessagingService

__all__ = [
    "MessagingService",
    "ServiceConfig",
    "DeliveryReport",
    "FragmentRecord",
    "AttemptRecord",
    "Backend",
    "LocalBackend",
    "BatchBackend",
    "NetworkBackend",
    "BACKENDS",
    "BACKEND_NAMES",
    "FragmentJob",
    "FragmentDelivery",
    "PAYLOAD_KINDS",
    "bytes_to_bits",
    "bits_to_bytes",
    "text_to_bits",
    "bits_to_text",
    "encode_payload",
    "decode_payload",
    "HEADER_BITS",
    "FragmentFrame",
    "ParsedFrame",
    "crc16",
    "derive_seed",
    "fragment_payload",
    "fragment_seed",
    "reassemble",
]
