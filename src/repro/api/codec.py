"""Payload codecs: arbitrary application payloads ↔ protocol bit sequences.

The UA-DI-QSDC protocol transports *bits*; applications hold *payloads* —
text, raw bytes, or pre-encoded bit sequences.  This module is the single
conversion point between the two worlds, shared by the
:class:`~repro.api.service.MessagingService` facade, the examples and the
tests (the ad-hoc ``text_to_bits``/``bits_to_text`` helpers that used to live
inside ``examples/secure_text_messaging.py`` migrated here).

Three payload *kinds* are supported:

``"bytes"``
    ``bytes``/``bytearray`` payloads, 8 bits per byte, big-endian bit order.
``"text"``
    ``str`` payloads, encoded to bytes first (UTF-8 by default, so non-ASCII
    text round-trips exactly).
``"bits"``
    Pre-encoded bit sequences — a tuple/list of 0/1 integers or a ``'0'``/
    ``'1'`` string.

:func:`encode_payload` auto-detects the kind from the Python type (pass
``kind="bits"`` explicitly to send a bitstring *string*, since a ``str``
otherwise means text) and :func:`decode_payload` inverts the conversion.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ReproError
from repro.utils.bits import Bits, bits_to_str, bitstring_to_bits, validate_bits

__all__ = [
    "PAYLOAD_KINDS",
    "bytes_to_bits",
    "bits_to_bytes",
    "text_to_bits",
    "bits_to_text",
    "encode_payload",
    "decode_payload",
]

#: Payload kinds understood by :func:`encode_payload` / :func:`decode_payload`.
PAYLOAD_KINDS = ("bytes", "text", "bits")


def bytes_to_bits(data: "bytes | bytearray") -> Bits:
    """Encode bytes as a bit tuple, 8 big-endian bits per byte."""
    if not isinstance(data, (bytes, bytearray)):
        raise ReproError(f"expected bytes, got {type(data).__name__}")
    return tuple(
        (byte >> shift) & 1 for byte in bytes(data) for shift in range(7, -1, -1)
    )


def bits_to_bytes(bits: Any) -> bytes:
    """Decode a bit sequence produced by :func:`bytes_to_bits` back into bytes.

    The length of *bits* must be a multiple of 8.
    """
    tbits = validate_bits(bits)
    if len(tbits) % 8 != 0:
        raise ReproError(
            f"bit sequence of length {len(tbits)} is not a whole number of bytes"
        )
    return bytes(
        sum(bit << shift for bit, shift in zip(tbits[i:i + 8], range(7, -1, -1)))
        for i in range(0, len(tbits), 8)
    )


def text_to_bits(text: str, encoding: str = "utf-8") -> str:
    """Encode text as a bitstring (8 bits per encoded byte).

    With the default UTF-8 encoding arbitrary text round-trips exactly; the
    historical ASCII behaviour of the secure-text-messaging example is the
    ASCII-subset special case.
    """
    if not isinstance(text, str):
        raise ReproError(f"expected str, got {type(text).__name__}")
    return bits_to_str(bytes_to_bits(text.encode(encoding)))


def bits_to_text(bits: "str | Bits", encoding: str = "utf-8") -> str:
    """Decode a bitstring produced by :func:`text_to_bits`.

    Undecodable byte sequences (possible after an uncorrected transmission
    error) are replaced rather than raised, mirroring what a receiving
    application would do with a corrupted frame.
    """
    if isinstance(bits, str):
        bits = bitstring_to_bits(bits)
    return bits_to_bytes(bits).decode(encoding, errors="replace")


def _looks_like_bits(payload: Any) -> bool:
    return isinstance(payload, (tuple, list)) or (
        hasattr(payload, "ndim") and hasattr(payload, "tolist")
    )


def encode_payload(payload: Any, kind: str = "auto") -> tuple[Bits, str]:
    """Convert an application payload into protocol bits.

    Parameters
    ----------
    payload:
        ``bytes``/``bytearray``, ``str`` (text), a bit sequence, or — with
        ``kind="bits"`` — a ``'0'``/``'1'`` string.
    kind:
        ``"auto"`` (detect from the Python type), or one of
        :data:`PAYLOAD_KINDS`.

    Returns
    -------
    (bits, kind)
        The canonical bit tuple and the resolved payload kind (so the caller
        can invert the conversion with :func:`decode_payload`).
    """
    if kind == "auto":
        if isinstance(payload, (bytes, bytearray)):
            kind = "bytes"
        elif isinstance(payload, str):
            kind = "text"
        elif _looks_like_bits(payload):
            kind = "bits"
        else:
            raise ReproError(
                f"cannot auto-detect payload kind for {type(payload).__name__}; "
                f"pass kind= one of {PAYLOAD_KINDS}"
            )
    if kind == "bytes":
        bits = bytes_to_bits(payload)
    elif kind == "text":
        bits = bytes_to_bits(str(payload).encode("utf-8"))
    elif kind == "bits":
        bits = (
            bitstring_to_bits(payload)
            if isinstance(payload, str)
            else validate_bits(payload)
        )
    else:
        raise ReproError(f"unknown payload kind {kind!r}; known: {PAYLOAD_KINDS}")
    if not bits:
        raise ReproError("payload must contain at least one bit")
    return bits, kind


def decode_payload(bits: Any, kind: str) -> Any:
    """Convert delivered protocol bits back into a payload of the given kind."""
    tbits = validate_bits(bits)
    if kind == "bytes":
        return bits_to_bytes(tbits)
    if kind == "text":
        return bits_to_text(tbits)
    if kind == "bits":
        return tbits
    raise ReproError(f"unknown payload kind {kind!r}; known: {PAYLOAD_KINDS}")
