"""Service configuration: a fluent builder over every execution mode.

:class:`ServiceConfig` is the one knob surface of the messaging facade.  It
is an immutable dataclass; every ``with_*`` method returns a modified copy,
so configurations compose fluently::

    config = (ServiceConfig.paper_default()
              .with_backend("batch")
              .with_fragment_bits(32)
              .with_seed(7))

Presets
-------
=====================  ========================================================
``paper_default()``    The paper's single-link parameters: η=10 identity-gate
                       channel, 8 identity pairs, 256 check pairs per DI round.
``ideal()``            Noiseless channel, lighter DI rounds (128 check pairs)
                       — the fastest way to demonstrate the protocol logic.
``noisy_nisq()``       η=50 identity-gate channel (≈3 µs NISQ link), 128 check
                       pairs — errors appear but deliveries mostly succeed.
``networked(topology)``  Multi-hop trusted-relay delivery through the network
                       scheduler; pair with ``send(..., to="node")``.
=====================  ========================================================

The protocol-level fields mirror :class:`~repro.protocol.config.ProtocolConfig`
(:meth:`ServiceConfig.protocol_config` performs the mapping per fragment); the
service-level fields control fragmentation, retransmission and backend
selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.api.fragmentation import MAX_FRAGMENT_BITS
from repro.channel.quantum_channel import (
    IdentityChainChannel,
    NoiselessChannel,
    QuantumChannel,
)
from repro.exceptions import ConfigurationError
from repro.protocol.config import ProtocolConfig
from repro.protocol.identity import Identity
from repro.quantum.channels import KrausChannel

__all__ = ["BACKEND_NAMES", "ServiceConfig"]

#: Backend names accepted by :meth:`ServiceConfig.with_backend`.
BACKEND_NAMES = ("local", "batch", "network")

#: Executors the batch/network backends accept (``"process"`` is excluded:
#: fragment workers close over live channel/attack objects, which are not
#: generally picklable — the same constraint as the network scheduler).
API_EXECUTORS = ("serial", "thread")


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable configuration of a :class:`~repro.api.service.MessagingService`.

    Attributes
    ----------
    backend:
        Execution backend: ``"local"`` (sequential single-link sessions),
        ``"batch"`` (fragment fan-out through the parallel sweep substrate)
        or ``"network"`` (multi-hop delivery through the network scheduler).
    fragment_bits:
        Payload bits per fragment (framing overhead is added on top).
    framing:
        If True (default) fragments travel with the 64-bit header + CRC of
        :mod:`repro.api.fragmentation`.  If False the payload is sent as one
        raw, unframed fragment — bit-identical to calling
        :class:`~repro.protocol.runner.UADIQSDCProtocol` directly, at the
        cost of losing reassembly metadata and CRC verification.
    max_retries:
        Retransmissions allowed per fragment after an abort or a failed
        frame verification (0 disables retransmission).
    seed:
        Service-level master seed; every fragment/attempt seed derives from
        it (None = fresh entropy per send).
    channel, distribution_channel, identity_pairs, check_pairs_per_round,
    num_check_bits, authentication_tolerance, check_bit_tolerance,
    memory_decoherence, memory_hold_time, alice_identity, bob_identity,
    simulator_backend:
        Per-fragment protocol parameters, mapped one-to-one onto
        :class:`~repro.protocol.config.ProtocolConfig` (``num_check_bits``
        None = the ``ProtocolConfig.default`` quarter-length rule;
        ``simulator_backend`` selects the pair-state engine — ``"auto"``
        fast paths, ``"dense"`` reference, ``"stabilizer"`` statically
        verified Pauli physics).  On the network backend it applies to
        every hop unless an explicit ``session_params`` is supplied, which
        then owns the per-hop engine choice.
    attack_factory:
        Optional ``(fragment_index, attempt, rng) -> attack | None`` hook for
        security studies through the facade (local/batch backends; network
        nodes are compromised via the topology instead).
    scenario:
        Optional declarative adversary
        (:class:`~repro.attacks.scenarios.AttackScenario`,
        :class:`~repro.attacks.scenarios.ScenarioSchedule`, a serialised
        dict, or a registered preset name).  On the local/batch backends it
        is mapped onto every fragment's
        :attr:`~repro.protocol.config.ProtocolConfig.scenario`, so each
        fragment session builds the attack deterministically from its own
        seed; on the network backend it rides the per-fragment
        :class:`~repro.network.sessions.SessionRequest` and applies to the
        hops its target layer selects.  Mutually exclusive with
        ``attack_factory`` (the imperative spelling).
    executor, max_workers:
        Worker pool for the batch backend and the network scheduler's
        execution pass (``"serial"`` or ``"thread"``; both produce identical
        results).
    topology, source, target, session_params, routing_policy, max_wait:
        Network-backend settings: the graph, default endpoints, fleet-wide
        per-hop protocol parameters, routing policy and admission patience.
    """

    backend: str = "local"
    fragment_bits: int = 64
    framing: bool = True
    max_retries: int = 2
    seed: "int | None" = None
    # -- per-fragment protocol parameters ----------------------------------------
    channel: QuantumChannel = field(default_factory=lambda: IdentityChainChannel(eta=10))
    distribution_channel: "QuantumChannel | None" = None
    identity_pairs: int = 8
    check_pairs_per_round: int = 256
    num_check_bits: "int | None" = None
    authentication_tolerance: float = 0.25
    check_bit_tolerance: float = 0.15
    memory_decoherence: "KrausChannel | None" = None
    memory_hold_time: float = 0.0
    alice_identity: "Identity | None" = None
    bob_identity: "Identity | None" = None
    simulator_backend: str = "auto"
    attack_factory: "Callable[[int, int, Any], Any] | None" = None
    scenario: Any = None
    # -- execution ---------------------------------------------------------------
    executor: str = "thread"
    max_workers: "int | None" = None
    # -- network backend ---------------------------------------------------------
    topology: Any = None
    source: "str | None" = None
    target: "str | None" = None
    session_params: Any = None
    routing_policy: str = "hops"
    max_wait: "float | None" = None

    # -- presets -----------------------------------------------------------------
    @classmethod
    def paper_default(cls, seed: "int | None" = None) -> "ServiceConfig":
        """The paper's single-link parameters (η=10, l=8, d=256)."""
        return cls(seed=seed)

    @classmethod
    def ideal(cls, seed: "int | None" = None) -> "ServiceConfig":
        """Noiseless channel with lighter DI rounds — fast and error-free."""
        return cls(channel=NoiselessChannel(), check_pairs_per_round=128, seed=seed)

    @classmethod
    def noisy_nisq(cls, seed: "int | None" = None, eta: int = 50) -> "ServiceConfig":
        """An η-identity-gate NISQ link (default η=50 ≈ 3 µs of gates)."""
        return cls(
            channel=IdentityChainChannel(eta=eta),
            check_pairs_per_round=128,
            seed=seed,
        )

    @classmethod
    def networked(
        cls,
        topology: Any,
        source: "str | None" = None,
        target: "str | None" = None,
        seed: "int | None" = None,
    ) -> "ServiceConfig":
        """Multi-hop delivery through the PR-2 network scheduler.

        ``source``/``target`` default to the topology's first and last node;
        ``send(..., to=...)`` overrides the target per call.
        """
        return cls(backend="network", topology=topology, source=source,
                   target=target, seed=seed)

    # -- fluent modifiers --------------------------------------------------------
    def with_backend(self, backend: str) -> "ServiceConfig":
        return replace(self, backend=backend)

    def with_fragment_bits(self, fragment_bits: int) -> "ServiceConfig":
        return replace(self, fragment_bits=fragment_bits)

    def with_framing(self, framing: bool) -> "ServiceConfig":
        return replace(self, framing=framing)

    def with_retries(self, max_retries: int) -> "ServiceConfig":
        return replace(self, max_retries=max_retries)

    def with_seed(self, seed: "int | None") -> "ServiceConfig":
        return replace(self, seed=seed)

    def with_channel(self, channel: QuantumChannel) -> "ServiceConfig":
        return replace(self, channel=channel)

    def with_distribution_channel(
        self, channel: "QuantumChannel | None"
    ) -> "ServiceConfig":
        return replace(self, distribution_channel=channel)

    def with_identity_pairs(self, identity_pairs: int) -> "ServiceConfig":
        return replace(self, identity_pairs=identity_pairs)

    def with_check_pairs(self, check_pairs_per_round: int) -> "ServiceConfig":
        return replace(self, check_pairs_per_round=check_pairs_per_round)

    def with_check_bits(self, num_check_bits: "int | None") -> "ServiceConfig":
        return replace(self, num_check_bits=num_check_bits)

    def with_tolerances(
        self,
        authentication_tolerance: "float | None" = None,
        check_bit_tolerance: "float | None" = None,
    ) -> "ServiceConfig":
        updates: dict[str, float] = {}
        if authentication_tolerance is not None:
            updates["authentication_tolerance"] = authentication_tolerance
        if check_bit_tolerance is not None:
            updates["check_bit_tolerance"] = check_bit_tolerance
        return replace(self, **updates)

    def with_memory(
        self, decoherence: "KrausChannel | None", hold_time: float
    ) -> "ServiceConfig":
        return replace(
            self, memory_decoherence=decoherence, memory_hold_time=hold_time
        )

    def with_identities(
        self, alice: "Identity | None", bob: "Identity | None"
    ) -> "ServiceConfig":
        return replace(self, alice_identity=alice, bob_identity=bob)

    def with_attack_factory(
        self, attack_factory: "Callable[[int, int, Any], Any] | None"
    ) -> "ServiceConfig":
        return replace(self, attack_factory=attack_factory)

    def with_scenario(self, scenario: Any) -> "ServiceConfig":
        """A copy with a declarative adversarial scenario (None = honest)."""
        return replace(self, scenario=scenario)

    def with_simulator_backend(self, simulator_backend: str) -> "ServiceConfig":
        return replace(self, simulator_backend=simulator_backend)

    def with_executor(
        self, executor: str, max_workers: "int | None" = None
    ) -> "ServiceConfig":
        return replace(self, executor=executor, max_workers=max_workers)

    def with_network(
        self,
        topology: Any = None,
        source: "str | None" = None,
        target: "str | None" = None,
        session_params: Any = None,
        routing_policy: "str | None" = None,
        max_wait: "float | None" = None,
    ) -> "ServiceConfig":
        """Update network-backend settings (only the arguments given)."""
        updates: dict[str, Any] = {}
        if topology is not None:
            updates["topology"] = topology
        if source is not None:
            updates["source"] = source
        if target is not None:
            updates["target"] = target
        if session_params is not None:
            updates["session_params"] = session_params
        if routing_policy is not None:
            updates["routing_policy"] = routing_policy
        if max_wait is not None:
            updates["max_wait"] = max_wait
        return replace(self, **updates)

    # -- validation and mapping --------------------------------------------------
    def validate(self) -> "ServiceConfig":
        """Raise :class:`ConfigurationError` on any inconsistent setting."""
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; known: {BACKEND_NAMES}"
            )
        if not 1 <= self.fragment_bits <= MAX_FRAGMENT_BITS:
            raise ConfigurationError(
                f"fragment_bits must lie in 1..{MAX_FRAGMENT_BITS}, "
                f"got {self.fragment_bits}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.executor not in API_EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; the service supports "
                f"{API_EXECUTORS}"
            )
        if self.attack_factory is not None and self.scenario is not None:
            raise ConfigurationError(
                "attack_factory and scenario are mutually exclusive; "
                "use the declarative scenario spelling"
            )
        if self.backend == "network":
            if self.topology is None:
                raise ConfigurationError(
                    "the network backend needs a topology; use "
                    "ServiceConfig.networked(topology) or with_network(topology=...)"
                )
            if self.attack_factory is not None:
                raise ConfigurationError(
                    "attack_factory applies to the local/batch backends; "
                    "compromise a topology node or set a scenario for "
                    "network attack studies"
                )
        # Delegate per-fragment parameter validation to ProtocolConfig using a
        # representative even-length fragment.
        self.protocol_config(message_length=2, seed=0).validate()
        return self

    def protocol_config(self, message_length: int, seed: int) -> ProtocolConfig:
        """The :class:`ProtocolConfig` for one fragment of *message_length* bits.

        Check bits follow :meth:`ProtocolConfig.default_check_bits`: the
        quarter-length rule when ``num_check_bits`` is None, and in either
        case an upward parity adjustment so ``n + c`` is even — an explicit
        count may therefore run as ``num_check_bits + 1`` on odd-length
        fragments (the same convention as the network layer's
        :meth:`~repro.network.sessions.SessionParameters.check_bits_for`).
        """
        return ProtocolConfig(
            message_length=message_length,
            num_check_bits=ProtocolConfig.default_check_bits(
                message_length, self.num_check_bits
            ),
            identity_pairs=self.identity_pairs,
            check_pairs_per_round=self.check_pairs_per_round,
            authentication_tolerance=self.authentication_tolerance,
            check_bit_tolerance=self.check_bit_tolerance,
            channel=self.channel,
            distribution_channel=self.distribution_channel,
            memory_decoherence=self.memory_decoherence,
            memory_hold_time=self.memory_hold_time,
            alice_identity=self.alice_identity,
            bob_identity=self.bob_identity,
            seed=seed,
            simulator_backend=self.simulator_backend,
            scenario=self.scenario,
        )

    def create_backend(self) -> Any:
        """Instantiate the configured :class:`~repro.api.backends.Backend`."""
        from repro.api.backends import BACKENDS

        return BACKENDS[self.backend]()

    def describe(self) -> dict[str, Any]:
        """Compact JSON-friendly echo of the service-level settings."""
        scenario_label = None
        if self.scenario is not None:
            from repro.attacks.scenarios import as_schedule

            scenario_label = as_schedule(self.scenario).label
        return {
            "backend": self.backend,
            **({"scenario": scenario_label} if scenario_label else {}),
            "fragment_bits": self.fragment_bits,
            "framing": self.framing,
            "max_retries": self.max_retries,
            "channel": self.channel.name,
            "identity_pairs": self.identity_pairs,
            "check_pairs_per_round": self.check_pairs_per_round,
            "executor": self.executor,
            "simulator_backend": self.simulator_backend,
        }
