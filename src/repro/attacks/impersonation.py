"""Impersonation attack (paper §III-A).

Eve pretends to be Alice (to inject a message) or Bob (to receive the secret
message).  Because she does not know the impersonated party's pre-shared
identity, the best she can do is apply uniformly random Pauli operators on the
identity pairs; the honest verifier, who knows the genuine secret, observes a
wrong Bell state on each pair independently with probability 3/4, so the
attack survives verification only with probability ``(1/4)**l``.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.exceptions import AttackError

__all__ = ["ImpersonationAttack"]


class ImpersonationAttack(Attack):
    """Eve impersonates one of the legitimate parties.

    Parameters
    ----------
    target:
        ``"alice"`` — Eve plays the sender without knowing ``id_A`` (Bob's
        verification of the ``C_A`` pairs catches her); or ``"bob"`` — Eve
        plays the receiver without knowing ``id_B`` (Alice's verification of
        the announced ``(D_A, D_B)`` results catches her).
    rng:
        Seed or generator for Eve's random Pauli guesses.
    """

    def __init__(self, target: str = "bob", rng=None):
        super().__init__(rng=rng)
        target = target.lower()
        if target not in ("alice", "bob"):
            raise AttackError(f"impersonation target must be 'alice' or 'bob', got {target!r}")
        self.impersonates = target
        self.name = f"impersonation({target})"

    # -- analytic predictions -------------------------------------------------------------
    @staticmethod
    def detection_probability(identity_pairs: int) -> float:
        """Paper's detection probability ``1 − (1/4)**l``."""
        if identity_pairs < 0:
            raise AttackError("identity_pairs must be non-negative")
        return 1.0 - 0.25**identity_pairs

    @staticmethod
    def survival_probability(identity_pairs: int) -> float:
        """Probability Eve's random guesses pass verification: ``(1/4)**l``."""
        return 1.0 - ImpersonationAttack.detection_probability(identity_pairs)

    @staticmethod
    def expected_mismatch_fraction() -> float:
        """Expected fraction of identity pairs flagged as wrong: 3/4."""
        return 0.75
