"""Entangle-and-measure attack (paper §III-D).

Eve couples an ancilla qubit to each transmitted qubit (a controlled
interaction with the transmitted qubit as control) and measures the ancilla
later, hoping to learn the encoded information.  By the monogamy of
entanglement, any information-gaining interaction necessarily disturbs the
Alice–Bob entanglement; tracing out Eve's ancilla leaves the pair partially
dephased, the CHSH value drops below the threshold, and the parties abort.

The interaction strength is parameterised by ``strength`` ∈ [0, 1]:
``0`` is no coupling (no information, no disturbance), ``1`` is a full CNOT
onto the ancilla (maximal information about the computational basis, the pair
completely dephases).  For intermediate strengths the off-diagonal elements of
the transmitted qubit are multiplied by ``sqrt(1 - strength)``, interpolating
between the two extremes — the standard phase-covariant cloning trade-off.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import AttackError
from repro.quantum.density import DensityMatrix

__all__ = ["EntangleMeasureAttack"]


class EntangleMeasureAttack(Attack):
    """Couple an ancilla to each transmitted qubit and trace it out.

    Parameters
    ----------
    strength:
        Coupling strength in [0, 1]; 1 corresponds to a full CNOT probe.
    attack_fraction:
        Probability with which each transmitted qubit is probed (1.0 = every
        qubit, the paper's setting); lower values model an adversary probing
        only a random subset of pairs.
    rng:
        Used only for the per-pair attack decision when
        ``attack_fraction < 1``; the probe map itself is deterministic.
    """

    def __init__(self, strength: float = 1.0, attack_fraction: float = 1.0, rng=None):
        super().__init__(rng=rng)
        if not 0.0 <= strength <= 1.0:
            raise AttackError("strength must lie in [0, 1]")
        self.strength = float(strength)
        self.attack_fraction = self.validate_fraction(attack_fraction)
        self.name = (
            f"entangle_measure(strength={self.strength:g}"
            + (f", fraction={self.attack_fraction:g}" if self.attack_fraction < 1.0 else "")
            + ")"
        )

    def _kraus_operators(self) -> list[np.ndarray]:
        """Kraus form of the residual map on the transmitted qubit.

        A controlled coupling ``|0⟩⟨0|⊗I + |1⟩⟨1|⊗U(θ)`` followed by tracing
        out the ancilla (initialised in ``|0⟩``) multiplies the qubit's
        off-diagonal elements by ``⟨0|U(θ)|0⟩ = cos(θ/2)``; choosing
        ``cos(θ/2) = sqrt(1 − strength)`` gives the dephasing factor used here.
        """
        keep = math.sqrt(1.0 - self.strength)
        k0 = np.array([[1, 0], [0, keep]], dtype=complex)
        k1 = np.array([[0, 0], [0, math.sqrt(self.strength)]], dtype=complex)
        return [k0, k1]

    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Apply the entangling probe to Alice's transmitted qubit (qubit 0)."""
        if not self.attacks_this_pair(self.attack_fraction):
            return state
        self.intercepted_pairs += 1
        return state.apply_kraus(self._kraus_operators(), [0])

    # -- analytic predictions -------------------------------------------------------------
    def expected_chsh_after_attack(self) -> float:
        """CHSH value of ``|Φ+⟩`` after the probe, for the paper's settings.

        Dephasing the first qubit with factor ``sqrt(1 − s)`` scales the
        ``XX``/``YY`` correlations by that factor, so
        ``S = 2√2 · sqrt(1 − s)``; a full-strength probe gives ``S = 0 ≤ 2``.
        """
        return 2.0 * math.sqrt(2.0) * math.sqrt(1.0 - self.strength)

    def information_gain(self) -> float:
        """Eve's normalised information gain about the computational basis.

        Reported on a 0–1 scale where 0 means the probe is decoupled and 1
        means a full CNOT probe that perfectly copies the basis value.  The
        linear scale equals the ``strength`` parameter and is used only for
        reporting the information/disturbance trade-off in experiments.
        """
        return self.strength
