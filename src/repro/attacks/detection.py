"""Detection statistics shared by the attack experiments.

Every attack in the paper is "detected" when at least one protocol safeguard
fires: a DI security-check round reports ``S ≤ 2``, an identity verification
exceeds its tolerance, or the check-bit comparison fails.
:func:`evaluate_attack` runs the protocol repeatedly under a given attack
factory and aggregates how often and *where* the attack was caught, which is
exactly what the §IV attack-simulation discussion reports.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AttackError
from repro.protocol.config import ProtocolConfig
from repro.protocol.results import ProtocolResult
from repro.protocol.runner import SessionCaches, UADIQSDCProtocol
from repro.utils.rng import as_rng

__all__ = ["AttackEvaluation", "evaluate_attack", "detection_rate"]


@dataclass
class AttackEvaluation:
    """Aggregated outcome of repeated protocol runs under one attack.

    Attributes
    ----------
    attack_name:
        Name of the evaluated attack (``"none"`` for the honest baseline).
    trials:
        Number of protocol sessions executed.
    detections:
        Number of sessions in which the protocol aborted (attack detected).
    abort_reasons:
        Histogram of abort reasons across the detected sessions.
    mean_chsh_round1 / mean_chsh_round2:
        Average CHSH estimates over the sessions that reached each round.
    mean_bob_authentication_error / mean_alice_authentication_error:
        Average identity-verification error rates over sessions that reached
        the respective verification.
    messages_delivered:
        Number of sessions in which Bob decoded a message (attack missed).
    results:
        The individual :class:`~repro.protocol.results.ProtocolResult` objects.
    """

    attack_name: str
    trials: int
    detections: int
    abort_reasons: dict[str, int]
    mean_chsh_round1: float | None
    mean_chsh_round2: float | None
    mean_bob_authentication_error: float | None
    mean_alice_authentication_error: float | None
    messages_delivered: int
    results: list[ProtocolResult] = field(default_factory=list, repr=False)

    @property
    def detection_rate(self) -> float:
        """Fraction of sessions in which the attack was detected."""
        return self.detections / self.trials if self.trials else 0.0

    def summary(self) -> dict:
        """JSON-friendly summary used by the experiment harness."""
        return {
            "attack": self.attack_name,
            "trials": self.trials,
            "detections": self.detections,
            "detection_rate": self.detection_rate,
            "abort_reasons": dict(self.abort_reasons),
            "mean_chsh_round1": self.mean_chsh_round1,
            "mean_chsh_round2": self.mean_chsh_round2,
            "mean_bob_authentication_error": self.mean_bob_authentication_error,
            "mean_alice_authentication_error": self.mean_alice_authentication_error,
            "messages_delivered": self.messages_delivered,
        }


def detection_rate(results: list[ProtocolResult]) -> float:
    """Fraction of protocol results in which a safeguard fired."""
    if not results:
        raise AttackError("detection_rate needs at least one result")
    return sum(1 for result in results if result.eavesdropper_detected) / len(results)


def evaluate_attack(
    config: ProtocolConfig,
    attack_factory: Callable[[np.random.Generator], object] | None,
    message: str,
    trials: int = 10,
    rng=None,
) -> AttackEvaluation:
    """Run the protocol *trials* times under an attack and aggregate detection statistics.

    Parameters
    ----------
    config:
        Base protocol configuration; each trial gets a fresh seed derived from
        *rng* so the runs are independent yet reproducible.
    attack_factory:
        Callable returning a fresh attack instance per trial (or ``None`` for
        the honest baseline).
    message:
        The message Alice attempts to send in every trial.
    trials:
        Number of independent sessions.
    """
    if trials < 1:
        raise AttackError("trials must be at least 1")
    generator = as_rng(rng)

    results: list[ProtocolResult] = []
    abort_counter: Counter = Counter()
    attack_name = "none"
    # Attack construction consumes the trial RNG sequentially, so trials must
    # stay a loop — but their sessions share one memo state, which computes
    # each distinct measurement statistic once per evaluation instead of once
    # per trial (bit-identical results; see SessionCaches).
    caches = SessionCaches()
    for _ in range(trials):
        attack = attack_factory(generator) if attack_factory is not None else None
        if attack is not None:
            attack_name = getattr(attack, "name", "attack")
        session_config = config.with_seed(int(generator.integers(0, 2**31 - 1)))
        result = UADIQSDCProtocol(session_config, attack=attack, caches=caches).run(
            message
        )
        results.append(result)
        if result.aborted:
            abort_counter[result.abort_reason.value] += 1

    def _mean(values: list[float]) -> float | None:
        return float(np.mean(values)) if values else None

    return AttackEvaluation(
        attack_name=attack_name,
        trials=trials,
        detections=sum(1 for result in results if result.eavesdropper_detected),
        abort_reasons=dict(abort_counter),
        mean_chsh_round1=_mean(
            [r.chsh_round1.value for r in results if r.chsh_round1 is not None]
        ),
        mean_chsh_round2=_mean(
            [r.chsh_round2.value for r in results if r.chsh_round2 is not None]
        ),
        mean_bob_authentication_error=_mean(
            [r.bob_authentication_error for r in results if r.bob_authentication_error is not None]
        ),
        mean_alice_authentication_error=_mean(
            [
                r.alice_authentication_error
                for r in results
                if r.alice_authentication_error is not None
            ]
        ),
        messages_delivered=sum(1 for result in results if result.delivered_message is not None),
        results=results,
    )
