"""Man-in-the-middle attack (paper §III-C).

Eve removes Alice's transmitted qubits from the channel, keeps them, and
forwards a freshly prepared sequence ``Q_E`` of single-qubit states to Bob
instead.  Bob's halves are then completely uncorrelated with what he receives,
so the CHSH value estimated in the second DI security check cannot exceed the
classical bound and the substitution is detected.

The fresh states Eve sends are configurable: random pure states (default),
the fixed ``|0⟩`` state, or maximally mixed qubits.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import AttackError
from repro.quantum.density import DensityMatrix
from repro.quantum.random import haar_random_state
from repro.quantum.states import Statevector

__all__ = ["ManInTheMiddleAttack"]

_STRATEGIES = ("random_pure", "zero", "maximally_mixed")


class ManInTheMiddleAttack(Attack):
    """Substitute Alice's transmitted qubits with Eve's own fresh qubits.

    Parameters
    ----------
    substitute:
        What Eve sends to Bob: ``"random_pure"`` (Haar-random pure states),
        ``"zero"`` (all ``|0⟩``) or ``"maximally_mixed"``.
    attack_fraction:
        Probability with which each transmitted qubit is substituted (1.0 =
        every qubit, the paper's full substitution; lower values model a
        *partial* man in the middle who lets a random subset through to
        dilute the CHSH disturbance).
    rng:
        Seed or generator for Eve's random state preparation and the per-pair
        attack decision when ``attack_fraction < 1``.
    """

    def __init__(
        self, substitute: str = "random_pure", attack_fraction: float = 1.0, rng=None
    ):
        super().__init__(rng=rng)
        if substitute not in _STRATEGIES:
            raise AttackError(
                f"substitute must be one of {_STRATEGIES}, got {substitute!r}"
            )
        self.substitute = substitute
        self.attack_fraction = self.validate_fraction(attack_fraction)
        self.name = (
            f"man_in_the_middle({substitute}"
            + (f", fraction={self.attack_fraction:g}" if self.attack_fraction < 1.0 else "")
            + ")"
        )
        self.kept_states: list[DensityMatrix] = []

    def _fresh_qubit(self) -> DensityMatrix:
        if self.substitute == "random_pure":
            return haar_random_state(1, rng=self.rng).density_matrix()
        if self.substitute == "zero":
            return DensityMatrix(Statevector.from_label("0"))
        return DensityMatrix.maximally_mixed(1)

    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Keep Alice's qubit and forward a fresh uncorrelated qubit to Bob."""
        if not self.attacks_this_pair(self.attack_fraction):
            return state
        self.intercepted_pairs += 1
        # Eve keeps the qubit Alice sent (its reduced state, from her point of view).
        self.kept_states.append(state.partial_trace([0]))
        # Bob's half keeps its own marginal; the forwarded qubit replaces Alice's.
        bob_half = state.partial_trace([1])
        fresh = self._fresh_qubit()
        return DensityMatrix(np.kron(fresh.matrix, bob_half.matrix), validate=False)

    # -- analytic predictions --------------------------------------------------------------
    @staticmethod
    def expected_chsh_after_full_attack() -> float:
        """With uncorrelated qubits the CHSH correlations vanish entirely."""
        return 0.0
