"""Adversarial entanglement source (the source-control threat of paper §III).

The paper's device-independent framing explicitly allows Eve to control the
entanglement source: the parties trust *nothing* about the devices, only the
observed CHSH statistics.  :class:`SourceTamperAttack` models the canonical
source-side adversary — instead of the ideal ``|Φ+⟩`` the source emits a
Werner-mixed state

    ``ρ(s) = (1 − s) |Φ+⟩⟨Φ+| + s · I/4``

interpolating between the honest source (``s = 0``) and a completely
uncorrelated one (``s = 1``).  Because the admixture happens *before*
distribution, both DI security-check rounds sample tampered pairs, so the
round-1 check (which channel attacks cannot touch — they act only after it)
already catches a sufficiently strong source adversary.

The attack's disturbance is analytic: the Werner state's CHSH value is
``S(s) = 2√2 (1 − s)``, dropping below the classical bound of 2 at
``s* = 1 − 1/√2 ≈ 0.293`` — :meth:`SourceTamperAttack.critical_strength`.
The ``fig_security`` experiment sweeps ``s`` across that boundary and pins
the resulting detection cliff.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import AttackError
from repro.quantum.density import DensityMatrix

__all__ = ["SourceTamperAttack"]


class SourceTamperAttack(Attack):
    """Eve's source emits Werner states instead of ideal ``|Φ+⟩`` pairs.

    Parameters
    ----------
    strength:
        Werner mixing parameter ``s`` in [0, 1]: the emitted state is
        ``(1 − s) ρ + s · I/d`` for every pair.  ``0`` is the honest source,
        ``1`` a source with no entanglement at all.
    rng:
        Unused by this deterministic map; accepted for interface uniformity
        with the other strategies.
    """

    def __init__(self, strength: float = 1.0, rng=None):
        super().__init__(rng=rng)
        if not 0.0 <= strength <= 1.0:
            raise AttackError("strength must lie in [0, 1]")
        self.strength = float(strength)
        self.name = f"source_tamper(strength={self.strength:g})"

    def intercept_source(self, index: int, state: DensityMatrix) -> DensityMatrix:
        """Mix the emitted pair toward the maximally mixed state."""
        self.intercepted_pairs += 1
        if self.strength == 0.0:
            return state
        dimension = state.matrix.shape[0]
        mixed = (1.0 - self.strength) * state.matrix + self.strength * np.eye(
            dimension, dtype=complex
        ) / dimension
        return DensityMatrix(mixed, validate=False)

    # -- analytic predictions --------------------------------------------------------------
    def expected_chsh(self) -> float:
        """CHSH value of the emitted Werner state: ``2√2 (1 − s)``."""
        return 2.0 * math.sqrt(2.0) * (1.0 - self.strength)

    @staticmethod
    def critical_strength() -> float:
        """Mixing strength at which the CHSH value hits the classical bound 2.

        ``2√2 (1 − s) = 2`` gives ``s* = 1 − 1/√2 ≈ 0.293``: weaker tampering
        is information-theoretically invisible to the CHSH test alone.
        """
        return 1.0 - 1.0 / math.sqrt(2.0)
