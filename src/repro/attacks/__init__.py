"""Eavesdropping strategies analysed by the paper and their detection statistics.

The five attack families of §III each have a concrete model here:

* :class:`ImpersonationAttack` — Eve pretends to be Alice or Bob without the
  pre-shared identity (§III-A);
* :class:`InterceptResendAttack` — measure-and-resend on the quantum channel
  (§III-B);
* :class:`ManInTheMiddleAttack` — substitution of Alice's qubits with fresh
  uncorrelated qubits (§III-C);
* :class:`EntangleMeasureAttack` — an entangling probe traced out by Eve
  (§III-D);
* :class:`ClassicalEavesdropper` + :func:`run_leakage_experiment` — passive
  reading of the classical channel and the statistical statement that it
  carries no message information (§III-E).

:func:`evaluate_attack` runs the protocol repeatedly under any of these and
aggregates detection rates, which is what the §IV attack simulations report.
"""

from repro.attacks.base import Attack
from repro.attacks.detection import AttackEvaluation, detection_rate, evaluate_attack
from repro.attacks.entangle_measure import EntangleMeasureAttack
from repro.attacks.impersonation import ImpersonationAttack
from repro.attacks.information_leakage import (
    ClassicalEavesdropper,
    LeakageReport,
    run_leakage_experiment,
)
from repro.attacks.intercept_resend import InterceptResendAttack
from repro.attacks.man_in_the_middle import ManInTheMiddleAttack

__all__ = [
    "Attack",
    "AttackEvaluation",
    "detection_rate",
    "evaluate_attack",
    "EntangleMeasureAttack",
    "ImpersonationAttack",
    "ClassicalEavesdropper",
    "LeakageReport",
    "run_leakage_experiment",
    "InterceptResendAttack",
    "ManInTheMiddleAttack",
]
