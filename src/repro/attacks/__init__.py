"""Eavesdropping strategies, the adversarial scenario engine, and detection statistics.

The five attack families of the paper's §III each have a concrete model here:

* :class:`ImpersonationAttack` — Eve pretends to be Alice or Bob without the
  pre-shared identity (§III-A); detection probability ``1 − (1/4)^l``;
* :class:`InterceptResendAttack` — measure-and-resend on the quantum channel
  (§III-B), with basis-bias (Breidbart) and individual/collective variants;
* :class:`ManInTheMiddleAttack` — substitution of Alice's qubits with fresh
  uncorrelated qubits (§III-C), including partial substitution;
* :class:`EntangleMeasureAttack` — an entangling probe traced out by Eve
  (§III-D), with a tunable coupling strength;
* :class:`ClassicalEavesdropper` + :func:`run_leakage_experiment` — passive
  reading of the classical channel and the statistical statement that it
  carries no message information (§III-E);

plus :class:`SourceTamperAttack`, the device-independent threat the paper's
framing allows but does not simulate: an adversarial source emitting Werner
states, caught by the *first* DI check.

On top of the strategy classes sits the **scenario engine**
(:mod:`repro.attacks.scenarios`): declarative :class:`AttackScenario` specs
(strategy × strength × onset/duty-cycle × target layer), composable
:class:`ScenarioSchedule` stacks (:mod:`repro.attacks.schedule`), and
registries of strategies and canonical presets.  The same scenario spec
drives direct protocol sessions (``ProtocolConfig.scenario``), the messaging
facade (``ServiceConfig.with_scenario``) and multi-hop relay runs
(``SessionRequest.scenario``), and is what the ``fig_security`` experiment
sweeps.

:func:`evaluate_attack` runs the protocol repeatedly under any attack (or any
scenario's :meth:`~repro.attacks.scenarios.AttackScenario.attack_factory`)
and aggregates detection rates, which is what the §IV attack simulations and
the security-analysis experiments report.
"""

from repro.attacks.base import Attack
from repro.attacks.detection import AttackEvaluation, detection_rate, evaluate_attack
from repro.attacks.entangle_measure import EntangleMeasureAttack
from repro.attacks.impersonation import ImpersonationAttack
from repro.attacks.information_leakage import (
    ClassicalEavesdropper,
    LeakageReport,
    run_leakage_experiment,
)
from repro.attacks.intercept_resend import InterceptResendAttack
from repro.attacks.man_in_the_middle import ManInTheMiddleAttack
from repro.attacks.scenarios import (
    AttackScenario,
    ScenarioSchedule,
    StrategySpec,
    as_schedule,
    get_scenario,
    get_strategy,
    list_scenarios,
    list_strategies,
    register_scenario,
    register_strategy,
    scenario_from_dict,
)
from repro.attacks.schedule import ComposedAttack, ScheduledAttack
from repro.attacks.source_tamper import SourceTamperAttack

__all__ = [
    "Attack",
    "AttackEvaluation",
    "detection_rate",
    "evaluate_attack",
    "EntangleMeasureAttack",
    "ImpersonationAttack",
    "ClassicalEavesdropper",
    "LeakageReport",
    "run_leakage_experiment",
    "InterceptResendAttack",
    "ManInTheMiddleAttack",
    "SourceTamperAttack",
    "AttackScenario",
    "ScenarioSchedule",
    "StrategySpec",
    "ScheduledAttack",
    "ComposedAttack",
    "as_schedule",
    "scenario_from_dict",
    "register_strategy",
    "get_strategy",
    "list_strategies",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
]
