"""Attack scheduling and composition: onset, duty cycles and multi-adversary stacks.

The paper's §IV simulations run every attack at full strength from the first
pair to the last.  Real adversaries are rarely that polite: Eve may switch on
mid-session (after the first DI check has already sampled clean pairs), attack
in bursts to dilute her disturbance signature, or coordinate several
strategies at once (a partial man-in-the-middle plus a passive classical tap).
This module supplies the two combinators the scenario engine
(:mod:`repro.attacks.scenarios`) uses to express those behaviours on top of
the concrete strategy classes:

* :class:`ScheduledAttack` wraps any :class:`~repro.attacks.base.Attack` and
  gates its quantum hooks by pair index — an *onset* (first attacked index)
  and a *duty cycle* (fraction of each period the attack is live).  Gating is
  purely positional, so a scheduled attack is exactly reproducible under a
  pinned seed and independent of execution order.
* :class:`ComposedAttack` stacks several attacks into one: quantum hooks chain
  in order (each adversary sees the state the previous one left behind),
  classical taps fan out to every member, and at most one member may
  impersonate a party.

Both combinators satisfy the full hook protocol of
:class:`~repro.attacks.base.Attack`, so the protocol runner, the messaging
facade and the network relay layer treat them like any single attack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.attacks.base import Attack
from repro.channel.classical_channel import Announcement
from repro.exceptions import AttackError
from repro.protocol.identity import Identity
from repro.quantum.density import DensityMatrix

__all__ = ["ScheduledAttack", "ComposedAttack"]


class ScheduledAttack(Attack):
    """Gate an inner attack's quantum hooks by pair index.

    Parameters
    ----------
    inner:
        The wrapped attack (any object implementing the
        :class:`~repro.attacks.base.Attack` hooks).
    onset:
        First pair index at which the attack becomes live.  Everything before
        it passes through untouched — the "Eve arrives late" scenario in
        which the round-1 DI check may sample only clean pairs.
    duty_cycle:
        Fraction of each *duty_period*-sized window (counted from *onset*)
        during which the attack is live.  ``1.0`` is continuous operation;
        ``0.25`` attacks the first quarter of every window — the intermittent
        attacker who hopes to stay below the abort thresholds.
    duty_period:
        Window length (in pair indices) over which *duty_cycle* is applied.

    Notes
    -----
    The classical tap (:meth:`observe_announcement`) and impersonation hooks
    are *not* gated: listening and identity forgery are not per-pair
    activities.  Gating is deterministic — ``active(index)`` depends only on
    the index — so scheduled scenarios inherit the engine's reproducibility
    guarantee with no extra RNG draws.
    """

    def __init__(
        self,
        inner: Attack,
        onset: int = 0,
        duty_cycle: float = 1.0,
        duty_period: int = 16,
    ):
        super().__init__(rng=getattr(inner, "rng", None))
        if onset < 0:
            raise AttackError("onset must be non-negative")
        if not 0.0 < duty_cycle <= 1.0:
            raise AttackError("duty_cycle must lie in (0, 1]")
        if duty_period < 1:
            raise AttackError("duty_period must be at least 1")
        self.inner = inner
        self.onset = int(onset)
        self.duty_cycle = float(duty_cycle)
        self.duty_period = int(duty_period)
        self._active_slots = min(
            self.duty_period, int(math.ceil(self.duty_cycle * self.duty_period))
        )
        inner_name = getattr(inner, "name", "attack")
        self.name = (
            f"scheduled({inner_name}, onset={self.onset}, "
            f"duty={self.duty_cycle:g}/{self.duty_period})"
        )

    # -- gating ------------------------------------------------------------------------
    def active(self, index: int) -> bool:
        """True if the attack is live for pair *index* (purely positional)."""
        if index < self.onset:
            return False
        return (index - self.onset) % self.duty_period < self._active_slots

    # -- hook delegation ---------------------------------------------------------------
    def intercept_source(self, index: int, state: DensityMatrix) -> DensityMatrix:
        """Delegate to the inner attack when the schedule is live for *index*."""
        if not self.active(index):
            return state
        state = self.inner.intercept_source(index, state)
        self.intercepted_pairs = getattr(self.inner, "intercepted_pairs", 0)
        return state

    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Delegate to the inner attack when the schedule is live for *position*."""
        if not self.active(position):
            return state
        state = self.inner.intercept_transmission(position, state)
        self.intercepted_pairs = getattr(self.inner, "intercepted_pairs", 0)
        return state

    def observe_announcement(self, announcement: Announcement) -> None:
        """Forward the announcement (listening is never gated by the schedule)."""
        self.overheard_announcements.append(announcement)
        if hasattr(self.inner, "observe_announcement"):
            self.inner.observe_announcement(announcement)

    # -- impersonation pass-through ----------------------------------------------------
    @property
    def impersonates(self) -> "str | None":
        """The inner attack's impersonation target (scheduling does not gate it)."""
        return getattr(self.inner, "impersonates", None)

    def forged_identity(self, num_pairs: int, rng=None) -> Identity:
        """The inner attack's forged identity, unchanged by the schedule."""
        return self.inner.forged_identity(num_pairs, rng=rng)

    def __repr__(self) -> str:
        return f"ScheduledAttack({self.inner!r}, onset={self.onset}, duty={self.duty_cycle:g})"


class ComposedAttack(Attack):
    """Several adversarial strategies acting on the same session.

    Quantum hooks chain in member order — the second attacker intercepts the
    state the first one resent — which models colluding (or independently
    co-located) eavesdroppers.  Classical announcements are forwarded to every
    member.  At most one member may impersonate a party: two simultaneous
    impersonators of the *same* session are not a meaningful threat model and
    are rejected at construction time.
    """

    def __init__(self, attacks: Sequence[Attack]):
        super().__init__(rng=None)
        members = list(attacks)
        if not members:
            raise AttackError("a composed attack needs at least one member")
        impersonators = [
            member
            for member in members
            if getattr(member, "impersonates", None) in ("alice", "bob")
        ]
        if len(impersonators) > 1:
            raise AttackError(
                "a composed attack may contain at most one impersonating member"
            )
        self.attacks = members
        self._impersonator = impersonators[0] if impersonators else None
        self.name = "composed(" + " + ".join(
            getattr(member, "name", "attack") for member in members
        ) + ")"

    # -- hook chaining -----------------------------------------------------------------
    def intercept_source(self, index: int, state: DensityMatrix) -> DensityMatrix:
        """Chain every member's source hook in order over the emitted pair."""
        for member in self.attacks:
            if hasattr(member, "intercept_source"):
                state = member.intercept_source(index, state)
        self._sync_counters()
        return state

    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Chain every member's transmission hook in order over the pair."""
        for member in self.attacks:
            if hasattr(member, "intercept_transmission"):
                state = member.intercept_transmission(position, state)
        self._sync_counters()
        return state

    def observe_announcement(self, announcement: Announcement) -> None:
        """Fan the announcement out to every listening member."""
        self.overheard_announcements.append(announcement)
        for member in self.attacks:
            if hasattr(member, "observe_announcement"):
                member.observe_announcement(announcement)

    def _sync_counters(self) -> None:
        self.intercepted_pairs = sum(
            getattr(member, "intercepted_pairs", 0) for member in self.attacks
        )

    # -- impersonation pass-through ----------------------------------------------------
    @property
    def impersonates(self) -> "str | None":
        """The single impersonating member's target, or None."""
        if self._impersonator is None:
            return None
        return self._impersonator.impersonates

    def forged_identity(self, num_pairs: int, rng=None) -> Identity:
        """The impersonating member's forged identity."""
        if self._impersonator is None:
            raise AttackError(f"{self.name!r} does not impersonate anyone")
        return self._impersonator.forged_identity(num_pairs, rng=rng)

    def __repr__(self) -> str:
        return f"ComposedAttack({self.attacks!r})"
