"""Intercept-and-resend attack (paper §III-B).

Eve intercepts the qubits of ``S_A`` that Alice sends to Bob, measures each in
some orthonormal basis ``{|u⟩, |v⟩}`` and resends the collapsed state.  The
measurement destroys the entanglement — the joint state becomes separable
(``|uu⟩`` or ``|vv⟩`` in the paper's notation for an attack before encoding) —
so the second DI security check finds a CHSH value at or below the classical
bound of 2 and the parties abort.

The measurement basis is parameterised by Bloch angles ``(theta, phi)``:
``|u⟩ = cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩`` and ``|v⟩`` its orthogonal
complement.  ``theta = 0`` is the computational basis; ``theta = π/2, phi = 0``
is the ``|±⟩`` basis; ``theta = π/4`` is the Breidbart basis that balances
Eve's information gain across the conjugate bases.  Eve may also choose to
attack only a fraction of the transmitted qubits, and may operate in one of
two modes:

* ``basis_mode="fixed"`` — the *collective* strategy: one pre-committed basis
  for every intercepted qubit (the paper's presentation);
* ``basis_mode="random"`` — the *individual* strategy: an independent,
  uniformly random choice between the computational and the ``|±⟩`` basis
  per intercepted qubit, the classic BB84-style eavesdropper.

Both collapse the entanglement of every attacked pair, so the DI check bounds
them identically; they differ in the correlation structure Eve's records keep,
which the scenario engine's detection studies compare.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import AttackError
from repro.quantum.density import DensityMatrix

__all__ = ["InterceptResendAttack"]


class InterceptResendAttack(Attack):
    """Measure-and-resend on the Alice→Bob quantum channel.

    Parameters
    ----------
    theta, phi:
        Bloch angles of the measurement basis (``basis_mode="fixed"``).
    attack_fraction:
        Probability with which each transmitted qubit is attacked (1.0 = every
        qubit, the paper's full-strength attack).
    basis_mode:
        ``"fixed"`` (default) measures every intercepted qubit in the
        ``(theta, phi)`` basis — the collective strategy; ``"random"`` draws
        an independent uniform choice between the computational and the
        ``|±⟩`` basis per qubit — the individual strategy.
    rng:
        Seed or generator for Eve's measurement outcomes and attack decisions.
    """

    def __init__(
        self,
        theta: float = 0.0,
        phi: float = 0.0,
        attack_fraction: float = 1.0,
        basis_mode: str = "fixed",
        rng=None,
    ):
        super().__init__(rng=rng)
        self.attack_fraction = self.validate_fraction(attack_fraction)
        if basis_mode not in ("fixed", "random"):
            raise AttackError(
                f"basis_mode must be 'fixed' or 'random', got {basis_mode!r}"
            )
        self.theta = float(theta)
        self.phi = float(phi)
        self.basis_mode = basis_mode
        self.name = (
            f"intercept_resend(theta={self.theta:.3f}, "
            f"fraction={self.attack_fraction:g}, mode={self.basis_mode})"
        )
        self.measurement_record: list[tuple[int, int]] = []

    # -- basis -----------------------------------------------------------------------------
    @staticmethod
    def _basis_for(theta: float, phi: float) -> tuple[np.ndarray, np.ndarray]:
        """The ``(|u⟩, |v⟩)`` basis for the given Bloch angles."""
        u = np.array(
            [math.cos(theta / 2), np.exp(1j * phi) * math.sin(theta / 2)],
            dtype=complex,
        )
        v = np.array(
            [-np.exp(-1j * phi) * math.sin(theta / 2), math.cos(theta / 2)],
            dtype=complex,
        )
        return u, v

    def basis_states(self) -> tuple[np.ndarray, np.ndarray]:
        """The configured fixed measurement basis ``(|u⟩, |v⟩)`` as state vectors."""
        return self._basis_for(self.theta, self.phi)

    # -- hook -------------------------------------------------------------------------------
    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Measure Alice's qubit (qubit 0) in the ``{|u⟩, |v⟩}`` basis and resend it."""
        if not self.attacks_this_pair(self.attack_fraction):
            return state
        self.intercepted_pairs += 1
        if self.basis_mode == "random":
            # Individual attack: flip between the Z and X bases per qubit.
            u, v = self._basis_for(
                0.0 if int(self.rng.integers(2)) == 0 else math.pi / 2, 0.0
            )
        else:
            u, v = self.basis_states()
        projectors = [np.outer(u, u.conj()), np.outer(v, v.conj())]
        probabilities = []
        for projector in projectors:
            probabilities.append(
                max(float(np.real(state.expectation_value(projector, [0]))), 0.0)
            )
        total = sum(probabilities)
        if total <= 0:
            raise AttackError("interception hit a zero-probability branch")
        probabilities = [p / total for p in probabilities]
        outcome = int(self.rng.choice(2, p=probabilities))
        self.measurement_record.append((position, outcome))
        chosen = projectors[outcome]
        # Project qubit 0 onto the observed basis state and renormalise: this is
        # exactly "measure and resend the result".
        from repro.quantum.operators import embed_operator

        full_projector = embed_operator(chosen, [0], state.num_qubits)
        projected = full_projector @ state.matrix @ full_projector
        norm = float(np.real(np.trace(projected)))
        return DensityMatrix(projected / norm, validate=False)

    # -- analytic predictions --------------------------------------------------------------------
    @staticmethod
    def expected_chsh_after_full_attack() -> float:
        """Upper bound on the CHSH value once every pair has been measured (classical: 2)."""
        return 2.0
