"""Intercept-and-resend attack (paper §III-B).

Eve intercepts the qubits of ``S_A`` that Alice sends to Bob, measures each in
some orthonormal basis ``{|u⟩, |v⟩}`` and resends the collapsed state.  The
measurement destroys the entanglement — the joint state becomes separable
(``|uu⟩`` or ``|vv⟩`` in the paper's notation for an attack before encoding) —
so the second DI security check finds a CHSH value at or below the classical
bound of 2 and the parties abort.

The measurement basis is parameterised by Bloch angles ``(theta, phi)``:
``|u⟩ = cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩`` and ``|v⟩`` its orthogonal
complement.  ``theta = 0`` is the computational basis; ``theta = π/2, phi = 0``
is the ``|±⟩`` basis.  Eve may also choose to attack only a fraction of the
transmitted qubits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attacks.base import Attack
from repro.exceptions import AttackError
from repro.quantum.density import DensityMatrix

__all__ = ["InterceptResendAttack"]


class InterceptResendAttack(Attack):
    """Measure-and-resend on the Alice→Bob quantum channel.

    Parameters
    ----------
    theta, phi:
        Bloch angles of the measurement basis.
    attack_fraction:
        Probability with which each transmitted qubit is attacked (1.0 = every
        qubit, the paper's full-strength attack).
    rng:
        Seed or generator for Eve's measurement outcomes and attack decisions.
    """

    def __init__(self, theta: float = 0.0, phi: float = 0.0, attack_fraction: float = 1.0, rng=None):
        super().__init__(rng=rng)
        if not 0.0 <= attack_fraction <= 1.0:
            raise AttackError("attack_fraction must lie in [0, 1]")
        self.theta = float(theta)
        self.phi = float(phi)
        self.attack_fraction = float(attack_fraction)
        self.name = f"intercept_resend(theta={self.theta:.3f}, fraction={self.attack_fraction:g})"
        self.measurement_record: list[tuple[int, int]] = []

    # -- basis -----------------------------------------------------------------------------
    def basis_states(self) -> tuple[np.ndarray, np.ndarray]:
        """The measurement basis ``(|u⟩, |v⟩)`` as state vectors."""
        u = np.array(
            [math.cos(self.theta / 2), np.exp(1j * self.phi) * math.sin(self.theta / 2)],
            dtype=complex,
        )
        v = np.array(
            [-np.exp(-1j * self.phi) * math.sin(self.theta / 2), math.cos(self.theta / 2)],
            dtype=complex,
        )
        return u, v

    # -- hook -------------------------------------------------------------------------------
    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Measure Alice's qubit (qubit 0) in the ``{|u⟩, |v⟩}`` basis and resend it."""
        if self.attack_fraction < 1.0 and self.rng.random() > self.attack_fraction:
            return state
        self.intercepted_pairs += 1
        u, v = self.basis_states()
        projectors = [np.outer(u, u.conj()), np.outer(v, v.conj())]
        probabilities = []
        for projector in projectors:
            probabilities.append(
                max(float(np.real(state.expectation_value(projector, [0]))), 0.0)
            )
        total = sum(probabilities)
        if total <= 0:
            raise AttackError("interception hit a zero-probability branch")
        probabilities = [p / total for p in probabilities]
        outcome = int(self.rng.choice(2, p=probabilities))
        self.measurement_record.append((position, outcome))
        chosen = projectors[outcome]
        # Project qubit 0 onto the observed basis state and renormalise: this is
        # exactly "measure and resend the result".
        from repro.quantum.operators import embed_operator

        full_projector = embed_operator(chosen, [0], state.num_qubits)
        projected = full_projector @ state.matrix @ full_projector
        norm = float(np.real(np.trace(projected)))
        return DensityMatrix(projected / norm, validate=False)

    # -- analytic predictions --------------------------------------------------------------------
    @staticmethod
    def expected_chsh_after_full_attack() -> float:
        """Upper bound on the CHSH value once every pair has been measured (classical: 2)."""
        return 2.0
