"""Declarative adversarial scenarios: strategy × strength × schedule × layer.

The paper's §III threat analysis and its §IV simulations enumerate a handful
of fixed attacks.  The ROADMAP's north star ("as many scenarios as you can
imagine") needs something stronger: a *declarative* description of an
adversary that a single spec can carry through every execution surface —
direct :class:`~repro.protocol.runner.UADIQSDCProtocol` sessions
(``ProtocolConfig.scenario``), the messaging facade
(``ServiceConfig.with_scenario``) and multi-hop relay runs
(``SessionRequest.scenario``) — and that experiments can sweep on a grid.

The three abstractions:

* :class:`AttackScenario` — one adversary: a registered *strategy* name, a
  normalised *strength* knob, an onset/duty-cycle *schedule* (see
  :mod:`repro.attacks.schedule`) and a *target layer* (``source`` /
  ``channel`` / ``relay`` / ``classical``).  Scenarios are immutable,
  JSON-serialisable (:meth:`AttackScenario.to_dict` /
  :meth:`AttackScenario.from_dict`) and build concrete
  :class:`~repro.attacks.base.Attack` instances deterministically from a
  supplied RNG.
* :class:`ScenarioSchedule` — a composable stack of scenarios acting on the
  same session (built as a :class:`~repro.attacks.schedule.ComposedAttack`).
* the **registries** — :func:`register_strategy` maps strategy names to
  builders (all five §III families ship parameterised variants, plus the
  source-control adversary of :mod:`repro.attacks.source_tamper`), and
  :func:`register_scenario` / :func:`get_scenario` name canonical scenario
  presets that experiments, examples and tests share.

The strength knob is strategy-specific but always normalised to [0, 1]:

=========================  ====================================================
strategy                   meaning of ``strength``
=========================  ====================================================
``intercept_resend``       fraction of transmitted qubits measured & resent
``man_in_the_middle``      fraction of transmitted qubits substituted
``entangle_measure``       probe coupling (1 = full CNOT ancilla)
``source_tamper``          Werner mixing of the emitted pairs
``impersonation``          ignored (identity guessing has no partial mode)
``classical_eavesdropper`` ignored (purely passive)
=========================  ====================================================
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.entangle_measure import EntangleMeasureAttack
from repro.attacks.impersonation import ImpersonationAttack
from repro.attacks.information_leakage import ClassicalEavesdropper
from repro.attacks.intercept_resend import InterceptResendAttack
from repro.attacks.man_in_the_middle import ManInTheMiddleAttack
from repro.attacks.schedule import ComposedAttack, ScheduledAttack
from repro.attacks.source_tamper import SourceTamperAttack
from repro.exceptions import AttackError
from repro.utils.rng import as_rng, derive_rng

__all__ = [
    "LAYERS",
    "AttackScenario",
    "ScenarioSchedule",
    "StrategySpec",
    "register_strategy",
    "get_strategy",
    "list_strategies",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "as_schedule",
    "scenario_from_dict",
]

#: The protocol layers an adversary can target.  ``relay`` marks scenarios
#: that only make sense at intermediate trusted-relay nodes of a network
#: route; in a direct two-party session a ``relay`` scenario behaves like a
#: ``channel`` one (the relay *is* the channel from the endpoints' view).
LAYERS = ("source", "channel", "relay", "classical")


# ---------------------------------------------------------------------------
# strategy registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StrategySpec:
    """One registered attack strategy.

    Attributes
    ----------
    name:
        Registry key (the ``strategy`` field of scenarios).
    builder:
        ``builder(scenario, rng) -> Attack`` constructing the concrete model.
    layers:
        The target layers this strategy supports.
    default_layer:
        Layer used when a scenario does not pin one explicitly.
    description:
        One-line human description (shown by docs and the CLI).
    """

    name: str
    builder: Callable[["AttackScenario", np.random.Generator], Attack]
    layers: tuple[str, ...]
    default_layer: str
    description: str


_STRATEGIES: dict[str, StrategySpec] = {}


def register_strategy(spec: StrategySpec) -> StrategySpec:
    """Add a strategy to the registry (names must be unique)."""
    if spec.name in _STRATEGIES:
        raise AttackError(f"strategy {spec.name!r} already registered")
    if spec.default_layer not in spec.layers:
        raise AttackError(
            f"default layer {spec.default_layer!r} not among supported "
            f"layers {spec.layers}"
        )
    for layer in spec.layers:
        if layer not in LAYERS:
            raise AttackError(f"unknown layer {layer!r}; known: {LAYERS}")
    _STRATEGIES[spec.name] = spec
    return spec


def get_strategy(name: str) -> StrategySpec:
    """Look up a strategy by name."""
    if name not in _STRATEGIES:
        raise AttackError(
            f"unknown strategy {name!r}; known: {sorted(_STRATEGIES)}"
        )
    return _STRATEGIES[name]


def list_strategies() -> list[StrategySpec]:
    """All registered strategies sorted by name."""
    return [_STRATEGIES[key] for key in sorted(_STRATEGIES)]


# ---------------------------------------------------------------------------
# the scenario abstraction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AttackScenario:
    """A declarative description of one adversary.

    Attributes
    ----------
    strategy:
        Name of a registered strategy (see :func:`list_strategies`).
    strength:
        Normalised strength in [0, 1] (strategy-specific meaning; see the
        module docstring's table).
    onset:
        First pair index at which the attack is live (0 = from the start).
    duty_cycle:
        Fraction of each *duty_period* window during which the attack is
        live; 1.0 = continuous (see
        :class:`~repro.attacks.schedule.ScheduledAttack`).
    duty_period:
        Window length (pair indices) for the duty cycle.
    target_layer:
        ``"source"``, ``"channel"``, ``"relay"`` or ``"classical"``; ``None``
        uses the strategy's default.  Determines which network hops the
        scenario applies to (see :meth:`applies_to_hop`).
    params:
        Strategy-specific extras (e.g. ``theta``/``phi``/``basis_mode`` for
        intercept-resend, ``substitute`` for MITM, ``target`` for
        impersonation).  Values must be JSON-representable.
    """

    strategy: str
    strength: float = 1.0
    onset: int = 0
    duty_cycle: float = 1.0
    duty_period: int = 16
    target_layer: "str | None" = None
    params: Mapping[str, Any] = field(default_factory=dict)

    # -- validation --------------------------------------------------------------------
    def validate(self) -> "AttackScenario":
        """Raise :class:`AttackError` if the scenario is inconsistent."""
        spec = get_strategy(self.strategy)
        if not 0.0 <= self.strength <= 1.0:
            raise AttackError("strength must lie in [0, 1]")
        if self.onset < 0:
            raise AttackError("onset must be non-negative")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise AttackError("duty_cycle must lie in (0, 1]")
        if self.duty_period < 1:
            raise AttackError("duty_period must be at least 1")
        if self.layer not in spec.layers:
            raise AttackError(
                f"strategy {self.strategy!r} does not operate on layer "
                f"{self.layer!r} (supported: {spec.layers})"
            )
        return self

    # -- derived -----------------------------------------------------------------------
    @property
    def layer(self) -> str:
        """The effective target layer (explicit or the strategy default)."""
        if self.target_layer is not None:
            return self.target_layer
        return get_strategy(self.strategy).default_layer

    @property
    def label(self) -> str:
        """Compact human-readable identifier used in reports and sweeps."""
        parts = [f"s={self.strength:g}"]
        if self.onset:
            parts.append(f"onset={self.onset}")
        if self.duty_cycle < 1.0:
            parts.append(f"duty={self.duty_cycle:g}/{self.duty_period}")
        if self.target_layer is not None:
            parts.append(f"layer={self.target_layer}")
        for key in sorted(self.params):
            parts.append(f"{key}={self.params[key]}")
        return f"{self.strategy}[{', '.join(parts)}]"

    # -- construction ------------------------------------------------------------------
    def build(self, rng=None) -> Attack:
        """Instantiate the concrete attack this scenario describes.

        All randomness flows from *rng*, so a pinned seed reproduces the
        adversary's behaviour exactly — the property the determinism tests
        and the sweep substrate rely on.
        """
        self.validate()
        generator = as_rng(rng)
        inner = get_strategy(self.strategy).builder(self, generator)
        if self.onset == 0 and self.duty_cycle >= 1.0:
            return inner
        return ScheduledAttack(
            inner,
            onset=self.onset,
            duty_cycle=self.duty_cycle,
            duty_period=self.duty_period,
        )

    def attack_factory(self) -> Callable[[Any], Attack]:
        """An ``rng -> Attack`` factory (the shape ``evaluate_attack`` and
        :meth:`repro.network.topology.NetworkTopology.compromise` expect)."""
        return lambda rng: self.build(rng)

    def applies_to_hop(self, hop_index: int, num_hops: int) -> bool:
        """Whether this scenario attacks hop *hop_index* of a *num_hops* route.

        * ``source`` — the first hop only (Eve controls the sender's source);
        * ``channel`` / ``classical`` — every hop (Eve sits on the links /
          hears every hop's control plane);
        * ``relay`` — only hops adjacent to an intermediate relay node, i.e.
          any hop of a multi-hop route and *no* hop of a direct one.
        """
        layer = self.layer
        if layer == "source":
            return hop_index == 0
        if layer == "relay":
            return num_hops >= 2
        return True

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        payload: dict[str, Any] = {
            "strategy": self.strategy,
            "strength": self.strength,
            "onset": self.onset,
            "duty_cycle": self.duty_cycle,
            "duty_period": self.duty_period,
        }
        if self.target_layer is not None:
            payload["target_layer"] = self.target_layer
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttackScenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        known = {
            "strategy", "strength", "onset", "duty_cycle", "duty_period",
            "target_layer", "params",
        }
        unknown = set(payload) - known
        if unknown:
            raise AttackError(f"unknown scenario fields: {sorted(unknown)}")
        if "strategy" not in payload:
            raise AttackError("a scenario dict needs a 'strategy' field")
        return cls(
            strategy=str(payload["strategy"]),
            strength=float(payload.get("strength", 1.0)),
            onset=int(payload.get("onset", 0)),
            duty_cycle=float(payload.get("duty_cycle", 1.0)),
            duty_period=int(payload.get("duty_period", 16)),
            target_layer=payload.get("target_layer"),
            params=dict(payload.get("params", {})),
        ).validate()


@dataclass(frozen=True)
class ScenarioSchedule:
    """Several scenarios composed onto the same session.

    Building a schedule yields a single
    :class:`~repro.attacks.schedule.ComposedAttack` whose members each draw
    their randomness from an independently derived child RNG, so the composed
    behaviour is deterministic under a pinned seed and independent of member
    internals.  At most one member may impersonate a party.
    """

    scenarios: tuple[AttackScenario, ...]

    def validate(self) -> "ScenarioSchedule":
        """Raise :class:`AttackError` on an empty or conflicting schedule."""
        if not self.scenarios:
            raise AttackError("a scenario schedule needs at least one scenario")
        impersonators = [
            scenario
            for scenario in self.scenarios
            if scenario.validate().strategy == "impersonation"
        ]
        if len(impersonators) > 1:
            raise AttackError(
                "a schedule may contain at most one impersonation scenario"
            )
        return self

    @property
    def label(self) -> str:
        """Compact identifier: the members' labels joined with '+'."""
        return " + ".join(scenario.label for scenario in self.scenarios)

    def build(self, rng=None) -> Attack:
        """Instantiate the composed attack (a single attack for 1-element schedules)."""
        self.validate()
        generator = as_rng(rng)
        if len(self.scenarios) == 1:
            return self.scenarios[0].build(generator)
        return ComposedAttack(
            [
                scenario.build(derive_rng(generator, "scenario", index))
                for index, scenario in enumerate(self.scenarios)
            ]
        )

    def attack_factory(self) -> Callable[[Any], Attack]:
        """An ``rng -> Attack`` factory for harnesses and compromised nodes."""
        return lambda rng: self.build(rng)

    def applies_to_hop(self, hop_index: int, num_hops: int) -> bool:
        """True if any member scenario attacks the given hop."""
        return any(
            scenario.applies_to_hop(hop_index, num_hops)
            for scenario in self.scenarios
        )

    def subschedule_for_hop(
        self, hop_index: int, num_hops: int
    ) -> "ScenarioSchedule | None":
        """The members applying to one hop, or ``None`` if none do."""
        members = tuple(
            scenario
            for scenario in self.scenarios
            if scenario.applies_to_hop(hop_index, num_hops)
        )
        if not members:
            return None
        return ScenarioSchedule(members)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        return {"scenarios": [scenario.to_dict() for scenario in self.scenarios]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        if "scenarios" not in payload:
            raise AttackError("a schedule dict needs a 'scenarios' list")
        return cls(
            scenarios=tuple(
                AttackScenario.from_dict(item) for item in payload["scenarios"]
            )
        ).validate()


def as_schedule(
    spec: "AttackScenario | ScenarioSchedule | Mapping[str, Any] | str",
) -> ScenarioSchedule:
    """Coerce any scenario spelling into a validated :class:`ScenarioSchedule`.

    Accepts a schedule, a single scenario, a serialised dict of either shape,
    or the name of a registered preset.
    """
    if isinstance(spec, ScenarioSchedule):
        return spec.validate()
    if isinstance(spec, AttackScenario):
        return ScenarioSchedule((spec.validate(),))
    if isinstance(spec, str):
        return get_scenario(spec)
    if isinstance(spec, Mapping):
        return scenario_from_dict(spec)
    raise AttackError(
        f"cannot interpret {type(spec).__name__} as an attack scenario"
    )


def scenario_from_dict(payload: Mapping[str, Any]) -> ScenarioSchedule:
    """Deserialise either dict shape (scenario or schedule) into a schedule."""
    if "scenarios" in payload:
        return ScenarioSchedule.from_dict(payload)
    return ScenarioSchedule((AttackScenario.from_dict(payload),))


# ---------------------------------------------------------------------------
# strategy builders
# ---------------------------------------------------------------------------

def _build_intercept_resend(
    scenario: AttackScenario, rng: np.random.Generator
) -> Attack:
    return InterceptResendAttack(
        theta=float(scenario.params.get("theta", 0.0)),
        phi=float(scenario.params.get("phi", 0.0)),
        attack_fraction=scenario.strength,
        basis_mode=str(scenario.params.get("basis_mode", "fixed")),
        rng=rng,
    )


def _build_entangle_measure(
    scenario: AttackScenario, rng: np.random.Generator
) -> Attack:
    return EntangleMeasureAttack(
        strength=scenario.strength,
        attack_fraction=float(scenario.params.get("attack_fraction", 1.0)),
        rng=rng,
    )


def _build_man_in_the_middle(
    scenario: AttackScenario, rng: np.random.Generator
) -> Attack:
    return ManInTheMiddleAttack(
        substitute=str(scenario.params.get("substitute", "random_pure")),
        attack_fraction=scenario.strength,
        rng=rng,
    )


def _build_impersonation(
    scenario: AttackScenario, rng: np.random.Generator
) -> Attack:
    return ImpersonationAttack(
        target=str(scenario.params.get("target", "bob")), rng=rng
    )


def _build_classical_eavesdropper(
    scenario: AttackScenario, rng: np.random.Generator
) -> Attack:
    return ClassicalEavesdropper(rng=rng)


def _build_source_tamper(
    scenario: AttackScenario, rng: np.random.Generator
) -> Attack:
    return SourceTamperAttack(strength=scenario.strength, rng=rng)


register_strategy(
    StrategySpec(
        name="intercept_resend",
        builder=_build_intercept_resend,
        layers=("channel", "relay"),
        default_layer="channel",
        description="Measure-and-resend on the quantum channel (§III-B); "
        "strength = attacked fraction, params: theta/phi/basis_mode",
    )
)
register_strategy(
    StrategySpec(
        name="entangle_measure",
        builder=_build_entangle_measure,
        layers=("channel", "relay"),
        default_layer="channel",
        description="Entangling-probe attack (§III-D); strength = coupling, "
        "params: attack_fraction",
    )
)
register_strategy(
    StrategySpec(
        name="man_in_the_middle",
        builder=_build_man_in_the_middle,
        layers=("channel", "relay"),
        default_layer="channel",
        description="Qubit substitution (§III-C); strength = substituted "
        "fraction, params: substitute",
    )
)
register_strategy(
    StrategySpec(
        name="impersonation",
        builder=_build_impersonation,
        layers=("classical",),
        default_layer="classical",
        description="Identity forgery without the pre-shared secret (§III-A); "
        "params: target ('alice'|'bob')",
    )
)
register_strategy(
    StrategySpec(
        name="classical_eavesdropper",
        builder=_build_classical_eavesdropper,
        layers=("classical",),
        default_layer="classical",
        description="Passive tap on the public classical channel (§III-E)",
    )
)
register_strategy(
    StrategySpec(
        name="source_tamper",
        builder=_build_source_tamper,
        layers=("source",),
        default_layer="source",
        description="Adversarial source emitting Werner states; strength = "
        "mixing parameter (caught by the round-1 DI check)",
    )
)


# ---------------------------------------------------------------------------
# named scenario presets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _NamedScenario:
    name: str
    schedule: ScenarioSchedule
    description: str


_SCENARIOS: dict[str, _NamedScenario] = {}


def register_scenario(
    name: str,
    spec: "AttackScenario | ScenarioSchedule",
    description: str = "",
) -> ScenarioSchedule:
    """Register a named scenario preset (names must be unique)."""
    if name in _SCENARIOS:
        raise AttackError(f"scenario {name!r} already registered")
    schedule = (
        spec.validate()
        if isinstance(spec, ScenarioSchedule)
        else ScenarioSchedule((spec.validate(),))
    )
    _SCENARIOS[name] = _NamedScenario(name, schedule, description)
    return schedule


def get_scenario(name: str) -> ScenarioSchedule:
    """Look up a registered scenario preset by name."""
    if name not in _SCENARIOS:
        raise AttackError(
            f"unknown scenario {name!r}; known: {sorted(_SCENARIOS)}"
        )
    return _SCENARIOS[name].schedule


def list_scenarios() -> list[tuple[str, ScenarioSchedule, str]]:
    """All registered presets as ``(name, schedule, description)``, by name."""
    return [
        (named.name, named.schedule, named.description)
        for named in (_SCENARIOS[key] for key in sorted(_SCENARIOS))
    ]


def _populate_presets() -> None:
    """Register the canonical scenario presets (executed on import)."""
    register_scenario(
        "intercept_resend_full",
        AttackScenario("intercept_resend"),
        "Every transmitted qubit measured in the computational basis (§III-B)",
    )
    register_scenario(
        "intercept_resend_half",
        AttackScenario("intercept_resend", strength=0.5),
        "Half the transmitted qubits measured and resent",
    )
    register_scenario(
        "intercept_resend_breidbart",
        AttackScenario("intercept_resend", params={"theta": math.pi / 4}),
        "Basis-biased interception in the Breidbart basis (θ = π/4)",
    )
    register_scenario(
        "intercept_resend_individual",
        AttackScenario("intercept_resend", params={"basis_mode": "random"}),
        "Individual attack: independent random Z/X basis per qubit",
    )
    register_scenario(
        "intercept_resend_late",
        AttackScenario("intercept_resend", onset=64),
        "Collective interception switching on only from pair index 64",
    )
    register_scenario(
        "relay_intercept_resend",
        AttackScenario("intercept_resend", target_layer="relay"),
        "Interception mounted only at intermediate relay nodes of a route",
    )
    register_scenario(
        "entangle_measure_weak",
        AttackScenario("entangle_measure", strength=0.25),
        "Weakly coupled entangling probe (low leakage, low disturbance)",
    )
    register_scenario(
        "entangle_measure_full",
        AttackScenario("entangle_measure", strength=1.0),
        "Full-CNOT entangling probe (§III-D)",
    )
    register_scenario(
        "mitm_full",
        AttackScenario("man_in_the_middle"),
        "Every qubit substituted with a fresh Haar-random state (§III-C)",
    )
    register_scenario(
        "mitm_partial",
        AttackScenario("man_in_the_middle", strength=0.5),
        "Partial MITM: half the qubits substituted",
    )
    register_scenario(
        "mitm_intermittent",
        AttackScenario("man_in_the_middle", duty_cycle=0.25, duty_period=8),
        "Bursty MITM: substitution live one quarter of every 8-pair window",
    )
    register_scenario(
        "impersonate_alice",
        AttackScenario("impersonation", params={"target": "alice"}),
        "Eve injects a message pretending to be Alice (§III-A)",
    )
    register_scenario(
        "impersonate_bob",
        AttackScenario("impersonation", params={"target": "bob"}),
        "Eve receives pretending to be Bob (§III-A)",
    )
    register_scenario(
        "classical_passive",
        AttackScenario("classical_eavesdropper"),
        "Passive tap on every public announcement (§III-E)",
    )
    register_scenario(
        "source_tamper_subcritical",
        AttackScenario("source_tamper", strength=0.2),
        "Werner-mixed source below the CHSH-visible threshold s* ≈ 0.293",
    )
    register_scenario(
        "source_tamper_strong",
        AttackScenario("source_tamper", strength=0.8),
        "Strongly mixed adversarial source (caught by the round-1 DI check)",
    )
    register_scenario(
        "mitm_plus_classical",
        ScenarioSchedule(
            (
                AttackScenario("man_in_the_middle", strength=0.5),
                AttackScenario("classical_eavesdropper"),
            )
        ),
        "Colluding adversaries: partial MITM plus a passive classical tap",
    )
    register_scenario(
        "impersonation_with_intercept",
        ScenarioSchedule(
            (
                AttackScenario("impersonation", params={"target": "bob"}),
                AttackScenario("intercept_resend", strength=0.5),
            )
        ),
        "Eve impersonates Bob while also intercepting half the channel",
    )


_populate_presets()
