"""Information-leakage analysis of the classical channel (paper §III-E).

The only data Eve can obtain without touching the quantum channel is what is
announced publicly: check-qubit positions, measurement bases/outcomes of the
DI checks, the positions of the ``D_A``/``C_A`` sets, Bob's authentication
Bell-measurement results and the check-bit disclosure.  None of these depend
on the secret message — the Bell outcomes of the message pairs are never
announced — so Eve's view is statistically independent of the message.

This module makes that claim testable:

* :class:`ClassicalEavesdropper` is an :class:`~repro.attacks.base.Attack`
  that only listens to the classical channel and summarises its view.
* :func:`run_leakage_experiment` runs the protocol repeatedly with two fixed,
  different messages, collects Eve's views, and reports the total-variation
  distance between the two view distributions together with the implied upper
  bound on Eve's mutual information about which message was sent.  For the
  honest protocol both numbers are statistically indistinguishable from 0.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.attacks.base import Attack
from repro.exceptions import AttackError
from repro.protocol.config import ProtocolConfig
from repro.protocol.runner import UADIQSDCProtocol
from repro.utils.rng import as_rng

__all__ = ["ClassicalEavesdropper", "LeakageReport", "run_leakage_experiment"]

#: Topics whose payloads could conceivably carry message information; the
#: protocol never announces message-pair measurement outcomes, so this list is
#: exactly what the leakage experiment fingerprints.
_VIEW_TOPICS = (
    "round1_chsh_value",
    "round2_chsh_value",
    "authentication_bsm_results",
    "check_bit_disclosure",
)


class ClassicalEavesdropper(Attack):
    """A passive attacker that only records public classical announcements."""

    name = "classical_eavesdropper"

    def view_fingerprint(self) -> tuple:
        """A hashable summary of everything message-relevant Eve has heard.

        Positions are excluded (they are uniformly random by construction and
        independent of everything); announced values are kept.  The
        fingerprint is the object whose distribution the leakage experiment
        compares across different messages.
        """
        fingerprint: list = []
        for announcement in self.overheard_announcements:
            if announcement.topic not in _VIEW_TOPICS:
                continue
            payload = announcement.payload
            if announcement.topic == "authentication_bsm_results":
                fingerprint.append(
                    (announcement.topic, tuple(sorted(str(v) for v in payload.values())))
                )
            elif announcement.topic == "check_bit_disclosure":
                fingerprint.append(
                    (announcement.topic, tuple(int(v) for v in payload["values"]))
                )
            else:
                # CHSH values: bucket to one decimal so the fingerprint is discrete.
                fingerprint.append((announcement.topic, round(float(payload), 1)))
        return tuple(fingerprint)

    def heard_message_outcomes(self) -> bool:
        """True if any announcement topic ever exposes message-pair outcomes.

        The protocol never announces them; this is the direct, structural
        statement of §III-E and is asserted by the test suite.
        """
        return any(
            announcement.topic in ("message_bsm_results", "message_outcomes")
            for announcement in self.overheard_announcements
        )


@dataclass
class LeakageReport:
    """Outcome of the information-leakage experiment.

    Eve's per-session view is high-entropy even for a fixed message (check-bit
    values, positions and CHSH estimates are all randomised), so the raw
    empirical distance between two finite samples of views is dominated by
    sampling sparsity.  The report therefore pairs the *between-message*
    distance with a *within-message* null distance computed from two halves of
    the same message's sessions; genuine message leakage shows up as the
    between-message distance exceeding the null, i.e. a large
    :attr:`excess_tv_distance`.

    Attributes
    ----------
    sessions_per_message:
        Number of protocol runs performed for each of the two messages.
    total_variation_distance:
        Empirical TV distance between Eve's view distributions under the two
        messages (computed on equal-sized sub-samples).
    within_message_tv_distance:
        The null reference: TV distance between two halves of the sessions
        that used the *same* message.
    mutual_information_upper_bound:
        Bound (in bits) on Eve's information about which of the two messages
        was sent, derived from the excess TV distance (``I ≤ TVD_excess`` for
        a uniform binary message choice; a coarse but sound bound).
    distinct_views:
        Number of distinct fingerprints observed overall.
    message_outcomes_announced:
        True if any run announced message-pair measurement outcomes (must be
        False for the honest protocol).
    """

    sessions_per_message: int
    total_variation_distance: float
    within_message_tv_distance: float
    mutual_information_upper_bound: float
    distinct_views: int
    message_outcomes_announced: bool
    view_counts: dict = field(default_factory=dict)

    @property
    def excess_tv_distance(self) -> float:
        """Between-message distance minus the within-message null (≈ 0 if no leakage)."""
        return max(0.0, self.total_variation_distance - self.within_message_tv_distance)


def run_leakage_experiment(
    config: ProtocolConfig,
    message_a: str,
    message_b: str,
    sessions_per_message: int = 20,
    rng=None,
) -> LeakageReport:
    """Compare Eve's classical view under two different secret messages.

    Runs the protocol ``sessions_per_message`` times for each message with a
    fresh passive eavesdropper per run, fingerprints every view, and reports
    the total-variation distance between the two empirical view distributions.
    """
    if sessions_per_message < 1:
        raise AttackError("sessions_per_message must be at least 1")
    if len(message_a) != len(message_b):
        raise AttackError("both messages must have the same length")
    generator = as_rng(rng)

    raw_views: dict[str, list] = {"a": [], "b": []}
    announced_message_outcomes = False
    for label, message in (("a", message_a), ("b", message_b)):
        for _ in range(sessions_per_message):
            eavesdropper = ClassicalEavesdropper(rng=generator)
            session_config = config.with_seed(int(generator.integers(0, 2**31 - 1)))
            protocol = UADIQSDCProtocol(session_config, attack=eavesdropper)
            protocol.run(message)
            raw_views[label].append(eavesdropper.view_fingerprint())
            announced_message_outcomes = (
                announced_message_outcomes or eavesdropper.heard_message_outcomes()
            )

    def _tv_distance(sample_a: list, sample_b: list) -> float:
        counts_a, counts_b = Counter(sample_a), Counter(sample_b)
        support = set(counts_a) | set(counts_b)
        if not sample_a or not sample_b:
            return 0.0
        return 0.5 * sum(
            abs(counts_a[view] / len(sample_a) - counts_b[view] / len(sample_b))
            for view in support
        )

    # Compare equal-sized sub-samples so the between-message distance and the
    # within-message null carry the same sparsity bias.
    half = max(1, sessions_per_message // 2)
    between = _tv_distance(raw_views["a"][:half], raw_views["b"][:half])
    within = _tv_distance(raw_views["a"][:half], raw_views["a"][half:half * 2])
    excess = max(0.0, between - within)

    all_views = raw_views["a"] + raw_views["b"]
    return LeakageReport(
        sessions_per_message=sessions_per_message,
        total_variation_distance=between,
        within_message_tv_distance=within,
        mutual_information_upper_bound=min(1.0, excess),
        distinct_views=len(set(all_views)),
        message_outcomes_announced=announced_message_outcomes,
        view_counts={
            "a": dict(Counter(raw_views["a"])),
            "b": dict(Counter(raw_views["b"])),
        },
    )


def binary_entropy(p: float) -> float:
    """Binary entropy ``h2(p)`` in bits (helper for leakage bounds)."""
    if not 0.0 <= p <= 1.0:
        raise AttackError("probability must lie in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)
