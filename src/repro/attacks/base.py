"""Attack interface.

The security analysis of the paper (§III) and its simulated attack study
(§IV) consider an eavesdropper Eve who may control the entanglement source,
intercept the quantum channel, read the public classical channel and attempt
to impersonate either party.  :class:`Attack` is the pluggable interface the
protocol runner understands; each concrete attack implements only the hooks it
needs.

Hooks (all optional — the runner checks ``hasattr``):

``intercept_source(index, state) -> DensityMatrix``
    Called for every emitted pair before it is handed to the parties.  Models
    an adversarial source or tampering with the initial distribution.

``intercept_transmission(position, state) -> DensityMatrix``
    Called for every pair after Alice's (encoded) qubit has traversed the
    quantum channel on its way to Bob.  Models attacks on the quantum channel:
    intercept-and-resend, man-in-the-middle substitution, entangling probes.

``observe_announcement(announcement)``
    Read-only tap on the public classical channel.

``impersonates`` / ``forged_identity(num_pairs, rng)``
    If ``impersonates`` is ``"alice"`` or ``"bob"``, the runner replaces that
    party's *encoding* identity with ``forged_identity(...)`` while the honest
    verifier keeps the genuine pre-shared secret — exactly the situation of an
    impersonation attack.
"""

from __future__ import annotations

from repro.channel.classical_channel import Announcement
from repro.exceptions import AttackError
from repro.protocol.identity import Identity
from repro.quantum.density import DensityMatrix
from repro.utils.rng import as_rng

__all__ = ["Attack"]


class Attack:
    """Base class for eavesdropping strategies.

    The base class implements every hook as a pass-through / no-op so concrete
    attacks override only what they need.  It also records basic statistics
    (how many pairs were touched, how many announcements were overheard) that
    experiment harnesses report.
    """

    #: Human-readable attack name (appears in result metadata).
    name: str = "attack"

    #: Which party Eve impersonates: None, "alice" or "bob".
    impersonates: str | None = None

    def __init__(self, rng=None):
        self.rng = as_rng(rng)
        self.intercepted_pairs = 0
        self.overheard_announcements: list[Announcement] = []

    # -- partial-strength helpers --------------------------------------------------------
    @staticmethod
    def validate_fraction(value: float, name: str = "attack_fraction") -> float:
        """Validate a per-pair probability knob (shared by the partial attacks)."""
        if not 0.0 <= value <= 1.0:
            raise AttackError(f"{name} must lie in [0, 1]")
        return float(value)

    def attacks_this_pair(self, attack_fraction: float) -> bool:
        """Bernoulli gate for partial-strength attacks: attack this pair?

        Draws from ``self.rng`` *only* when ``attack_fraction < 1`` so that
        full-strength attacks consume exactly the same RNG stream as before
        the knob existed — the property the pinned detection-rate tests rely
        on.
        """
        if attack_fraction >= 1.0:
            return True
        return self.rng.random() <= attack_fraction

    # -- quantum hooks -----------------------------------------------------------------
    def intercept_source(self, index: int, state: DensityMatrix) -> DensityMatrix:
        """Tamper with a freshly emitted pair (default: leave it untouched)."""
        return state

    def intercept_transmission(self, position: int, state: DensityMatrix) -> DensityMatrix:
        """Tamper with a pair whose Alice-half is in transit to Bob (default: no-op)."""
        return state

    # -- classical hook ------------------------------------------------------------------
    def observe_announcement(self, announcement: Announcement) -> None:
        """Record an overheard classical announcement."""
        self.overheard_announcements.append(announcement)

    # -- impersonation -------------------------------------------------------------------
    def forged_identity(self, num_pairs: int, rng=None) -> Identity:
        """Eve's guess at the impersonated party's identity.

        Without knowledge of the pre-shared secret the best strategy is a
        uniformly random guess, which matches the ``(1/4)**l`` survival
        probability of the paper's analysis.
        """
        if self.impersonates not in ("alice", "bob"):
            raise AttackError(f"{self.name!r} does not impersonate anyone")
        return Identity.random(num_pairs, owner=f"eve-as-{self.impersonates}", rng=rng or self.rng)

    # -- reporting ------------------------------------------------------------------------
    def overheard_topics(self) -> list[str]:
        """Distinct classical topics Eve overheard, in order of first appearance."""
        seen: dict[str, None] = {}
        for announcement in self.overheard_announcements:
            seen.setdefault(announcement.topic, None)
        return list(seen)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
