"""Bit-error-rate metrics for decoded messages.

Two related quantities appear in the evaluation:

* the *classical* bit error rate between the message Alice sent and the
  message Bob decoded (:func:`bit_error_rate`);
* the *quantum* bit error rate (QBER) of a stream of dense-coded pairs, i.e.
  the per-two-bit-symbol error probability estimated from repeated Bell
  measurements (:func:`quantum_bit_error_rate`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import ReproError
from repro.utils.bits import hamming_distance, validate_bits

__all__ = ["bit_error_rate", "quantum_bit_error_rate", "symbol_error_rate"]


def bit_error_rate(sent: Iterable[int], received: Iterable[int]) -> float:
    """Fraction of bit positions where *received* differs from *sent*."""
    sent_bits = validate_bits(sent)
    received_bits = validate_bits(received)
    if len(sent_bits) != len(received_bits):
        raise ReproError(
            f"cannot compare messages of different lengths "
            f"({len(sent_bits)} vs {len(received_bits)})"
        )
    if not sent_bits:
        raise ReproError("cannot compute a bit error rate on empty messages")
    return hamming_distance(sent_bits, received_bits) / len(sent_bits)


def symbol_error_rate(counts: Mapping[str, int], expected: str) -> float:
    """Fraction of measurement shots whose outcome differs from *expected*."""
    total = sum(int(v) for v in counts.values())
    if total <= 0:
        raise ReproError("counts are empty")
    return 1.0 - counts.get(expected, 0) / total


def quantum_bit_error_rate(counts: Mapping[str, int], expected: str) -> float:
    """Per-bit error rate of a dense-coded two-bit symbol.

    *counts* maps decoded two-bit outcomes to shot counts and *expected* is
    the encoded symbol.  Each wrong symbol contributes the number of wrong
    bits it contains (1 or 2), so the result is the average fraction of wrong
    bits per transmitted bit — the QBER the protocol's check-bit comparison
    estimates.
    """
    total = sum(int(v) for v in counts.values())
    if total <= 0:
        raise ReproError("counts are empty")
    if any(len(outcome) != len(expected) for outcome in counts):
        raise ReproError("all outcomes must have the same width as the expected symbol")
    wrong_bits = 0
    for outcome, count in counts.items():
        mismatches = sum(1 for a, b in zip(outcome, expected) if a != b)
        wrong_bits += mismatches * int(count)
    return wrong_bits / (total * len(expected))
