"""Benchmark-trajectory regression analysis: bootstrap CIs and verdicts.

This is the statistics behind the CI perf gate.  Given two
:class:`~repro.artifacts.trajectory.Trajectory` files — the committed
baseline (``BENCH_<n>.json``) and a freshly emitted one —
:func:`compare_trajectories` produces one verdict per benchmark:

``improved`` / ``unchanged`` / ``regressed``
    Timing verdicts.  The point estimate is the ratio of mean times
    (current / baseline); a benchmark is *regressed* only when the ratio
    exceeds ``timing_threshold`` **and** the bootstrap confidence interval of
    the ratio excludes 1.0 (CI-aware: a noisy bench with wide intervals
    cannot fail the gate on a fluke, while single-sample benches degrade to
    a plain threshold test because their interval is degenerate).
``new`` / ``removed``
    Membership verdicts.  New benchmarks are fine; removed ones fail the
    gate by default — a perf claim silently disappearing is exactly what the
    trajectory exists to catch — unless ``allow_missing`` is set.

Independently of timing, the deterministic ``metrics`` recorded by each
bench are compared with tight relative tolerance; any drift fails the gate
(this extends the golden e2e pins to every artifact metric).

Only numpy is required here, but importing via :mod:`repro.analysis` pulls
the package's scipy-backed siblings; CI installs scipy wherever this runs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.exceptions import ReproError

if TYPE_CHECKING:
    from repro.artifacts.trajectory import BenchmarkRecord, Trajectory

__all__ = [
    "BenchmarkVerdict",
    "TrajectoryComparison",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "compare_trajectories",
    "effect_table",
]

#: Default timing-regression threshold: current/baseline mean-time ratio
#: above this (with a CI excluding 1.0) fails the gate.  2× regressions —
#: the kind that undo a whole optimisation PR — are always caught.
DEFAULT_TIMING_THRESHOLD = 1.5
#: Default relative tolerance for metric drift.  Artifact metrics are
#: seed-deterministic, so anything beyond float noise is a behaviour change.
DEFAULT_METRICS_RTOL = 1e-9


def bootstrap_ci(
    samples: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
    statistic: Callable[[np.ndarray], float] | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic`` (mean).

    Deterministic for a given *seed*.  ``n == 1`` degrades to the degenerate
    interval ``(x, x)`` — there is no resampling variability to estimate —
    which is exactly the behaviour the single-round reproduction benches
    rely on (the gate then reduces to a plain threshold test).
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ReproError("bootstrap_ci requires at least one sample")
    if not 0 < confidence < 1:
        raise ReproError("confidence must lie in (0, 1)")
    stat = statistic or (lambda values: float(np.mean(values)))
    if data.size == 1:
        value = stat(data)
        return (value, value)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    estimates = np.sort(np.array([stat(data[row]) for row in indices]))
    alpha = (1 - confidence) / 2
    low = estimates[int(math.floor(alpha * (n_resamples - 1)))]
    high = estimates[int(math.ceil((1 - alpha) * (n_resamples - 1)))]
    return (float(low), float(high))


def bootstrap_ratio_ci(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI of ``mean(current) / mean(baseline)``.

    Both sides are resampled independently; a single-sample side contributes
    as a constant, and when *both* sides are single samples the interval is
    the degenerate point ratio.
    """
    base = np.asarray(list(baseline), dtype=float)
    cur = np.asarray(list(current), dtype=float)
    if base.size == 0 or cur.size == 0:
        raise ReproError("bootstrap_ratio_ci requires samples on both sides")
    if float(np.mean(base)) <= 0:
        raise ReproError("baseline mean must be positive to form a ratio")
    if base.size == 1 and cur.size == 1:
        ratio = float(cur[0] / base[0])
        return (ratio, ratio)
    rng = np.random.default_rng(seed)

    def resampled_means(data: np.ndarray) -> np.ndarray:
        if data.size == 1:
            return np.full(n_resamples, float(data[0]))
        indices = rng.integers(0, data.size, size=(n_resamples, data.size))
        return data[indices].mean(axis=1)

    base_means = resampled_means(base)
    cur_means = resampled_means(cur)
    ratios = np.sort(cur_means / np.maximum(base_means, np.finfo(float).tiny))
    alpha = (1 - confidence) / 2
    low = ratios[int(math.floor(alpha * (n_resamples - 1)))]
    high = ratios[int(math.ceil((1 - alpha) * (n_resamples - 1)))]
    return (float(low), float(high))


def _values_drifted(baseline: Any, current: Any, rtol: float) -> bool:
    """Recursive drift check for metric values (NaN == NaN, None == None)."""
    if baseline is None or current is None:
        return baseline is not current
    if isinstance(baseline, bool) or isinstance(current, bool):
        return baseline != current
    if isinstance(baseline, (int, float)) and isinstance(current, (int, float)):
        base_f, cur_f = float(baseline), float(current)
        if math.isnan(base_f) and math.isnan(cur_f):
            return False
        if math.isinf(base_f) or math.isinf(cur_f):
            return base_f != cur_f
        return not math.isclose(base_f, cur_f, rel_tol=rtol, abs_tol=rtol)
    if isinstance(baseline, (list, tuple)) and isinstance(current, (list, tuple)):
        if len(baseline) != len(current):
            return True
        return any(_values_drifted(b, c, rtol) for b, c in zip(baseline, current))
    if isinstance(baseline, dict) and isinstance(current, dict):
        if baseline.keys() != current.keys():
            return True
        return any(_values_drifted(baseline[k], current[k], rtol) for k in baseline)
    return baseline != current


@dataclasses.dataclass(frozen=True)
class BenchmarkVerdict:
    """Comparison outcome for one benchmark name."""

    name: str
    status: str  # improved | unchanged | regressed | new | removed
    baseline_mean: float | None = None
    current_mean: float | None = None
    ratio: float | None = None
    ratio_ci: tuple[float, float] | None = None
    drifted_metrics: dict[str, tuple[Any, Any]] = dataclasses.field(default_factory=dict)

    @property
    def drifted(self) -> bool:
        return bool(self.drifted_metrics)


@dataclasses.dataclass(frozen=True)
class TrajectoryComparison:
    """All verdicts of one baseline-vs-current trajectory comparison."""

    baseline_label: str
    current_label: str
    verdicts: tuple[BenchmarkVerdict, ...]
    timing_threshold: float
    allow_missing: bool
    environments_differ: bool

    def by_status(self, status: str) -> list[BenchmarkVerdict]:
        return [verdict for verdict in self.verdicts if verdict.status == status]

    @property
    def regressions(self) -> list[BenchmarkVerdict]:
        return self.by_status("regressed")

    @property
    def drifts(self) -> list[BenchmarkVerdict]:
        return [verdict for verdict in self.verdicts if verdict.drifted]

    @property
    def failures(self) -> list[BenchmarkVerdict]:
        """Verdicts that fail the gate under the comparison's policy."""
        failed = list(self.regressions)
        failed.extend(v for v in self.drifts if v not in failed)
        if not self.allow_missing:
            failed.extend(v for v in self.by_status("removed") if v not in failed)
        return failed

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_label,
            "current": self.current_label,
            "timing_threshold": self.timing_threshold,
            "allow_missing": self.allow_missing,
            "environments_differ": self.environments_differ,
            "ok": self.ok,
            "verdicts": [dataclasses.asdict(verdict) for verdict in self.verdicts],
        }


def compare_trajectories(
    baseline: "Trajectory",
    current: "Trajectory",
    *,
    timing_threshold: float = DEFAULT_TIMING_THRESHOLD,
    metrics_rtol: float = DEFAULT_METRICS_RTOL,
    allow_missing: bool = False,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> TrajectoryComparison:
    """Compare two benchmark trajectories and return per-bench verdicts.

    See the module docstring for the verdict semantics.  The regression test
    for the threshold boundary is *strict*: a ratio exactly at
    ``timing_threshold`` is still ``unchanged`` (thresholds state "worse
    than", not "as bad as").
    """
    if timing_threshold <= 1.0:
        raise ReproError("timing_threshold must exceed 1.0")
    verdicts: list[BenchmarkVerdict] = []
    current_names = set(current.names())
    for record in sorted(current.records, key=lambda r: r.name):
        base = baseline.get(record.name)
        if base is None:
            verdicts.append(
                BenchmarkVerdict(
                    name=record.name, status="new", current_mean=record.mean_time
                )
            )
            continue
        verdicts.append(
            _timing_verdict(
                base,
                record,
                timing_threshold=timing_threshold,
                metrics_rtol=metrics_rtol,
                confidence=confidence,
                n_resamples=n_resamples,
                seed=seed,
            )
        )
    for record in sorted(baseline.records, key=lambda r: r.name):
        if record.name not in current_names:
            verdicts.append(
                BenchmarkVerdict(
                    name=record.name, status="removed", baseline_mean=record.mean_time
                )
            )
    verdicts.sort(key=lambda verdict: verdict.name)
    return TrajectoryComparison(
        baseline_label=baseline.label,
        current_label=current.label,
        verdicts=tuple(verdicts),
        timing_threshold=timing_threshold,
        allow_missing=allow_missing,
        environments_differ=baseline.environment != current.environment,
    )


def _timing_verdict(
    base: "BenchmarkRecord",
    current: "BenchmarkRecord",
    *,
    timing_threshold: float,
    metrics_rtol: float,
    confidence: float,
    n_resamples: int,
    seed: int,
) -> BenchmarkVerdict:
    ratio_low, ratio_high = bootstrap_ratio_ci(
        base.samples,
        current.samples,
        confidence=confidence,
        n_resamples=n_resamples,
        seed=seed,
    )
    ratio = current.mean_time / base.mean_time
    if ratio > timing_threshold and ratio_low > 1.0:
        status = "regressed"
    elif ratio < 1.0 / timing_threshold and ratio_high < 1.0:
        status = "improved"
    else:
        status = "unchanged"
    drifted: dict[str, tuple[Any, Any]] = {}
    for key in sorted(base.metrics.keys() | current.metrics.keys()):
        if key not in base.metrics or key not in current.metrics:
            drifted[key] = (base.metrics.get(key), current.metrics.get(key))
        elif _values_drifted(base.metrics[key], current.metrics[key], metrics_rtol):
            drifted[key] = (base.metrics[key], current.metrics[key])
    return BenchmarkVerdict(
        name=current.name,
        status=status,
        baseline_mean=base.mean_time,
        current_mean=current.mean_time,
        ratio=ratio,
        ratio_ci=(ratio_low, ratio_high),
        drifted_metrics=drifted,
    )


def _format_seconds(value: "float | None") -> str:
    if value is None:
        return "      -"
    if value < 1e-3:
        return f"{value * 1e6:6.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:6.1f}ms"
    return f"{value:6.2f}s "


def effect_table(comparison: TrajectoryComparison) -> str:
    """Render the comparison as a text effect table (the CLI's output)."""
    lines = [
        f"Trajectory comparison — baseline {comparison.baseline_label!r} vs "
        f"current {comparison.current_label!r} "
        f"(timing threshold {comparison.timing_threshold:g}x)",
    ]
    if comparison.environments_differ:
        lines.append(
            "  note: environments differ between trajectories — timing ratios "
            "mix machine and code effects"
        )
    lines.append(
        "  benchmark                                                   base      "
        "current   ratio   95% CI            verdict"
    )
    for verdict in comparison.verdicts:
        ratio = "    -  " if verdict.ratio is None else f"{verdict.ratio:6.2f}x"
        ci = (
            "   -             "
            if verdict.ratio_ci is None
            else f"[{verdict.ratio_ci[0]:5.2f}, {verdict.ratio_ci[1]:5.2f}]  "
        )
        flag = " METRICS DRIFTED" if verdict.drifted else ""
        lines.append(
            f"  {verdict.name:<58s} {_format_seconds(verdict.baseline_mean)}  "
            f"{_format_seconds(verdict.current_mean)}  {ratio}  {ci} "
            f"{verdict.status}{flag}"
        )
        for key, (base_value, current_value) in verdict.drifted_metrics.items():
            lines.append(f"      drift {key}: {base_value!r} -> {current_value!r}")
    counts = {
        status: len(comparison.by_status(status))
        for status in ("improved", "unchanged", "regressed", "new", "removed")
    }
    summary = ", ".join(f"{count} {status}" for status, count in counts.items() if count)
    lines.append(f"  summary: {summary or 'no benchmarks'}; metric drifts: {len(comparison.drifts)}")
    lines.append("  gate: " + ("PASS" if comparison.ok else "FAIL"))
    return "\n".join(lines)
