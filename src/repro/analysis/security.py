"""Quantitative security analysis: detection power, ROC curves and trade-off frontiers.

The paper's security argument (§III) is qualitative — every attack *is*
detected — and its §IV simulations report detection as a per-attack yes/no.
This module supplies the quantitative layer the scenario engine
(:mod:`repro.attacks.scenarios`) needs to compare *parameterised* adversaries:

* :func:`detection_roc` — receiver-operating-characteristic curves for the
  CHSH-based eavesdropping test: sweep the abort threshold over observed
  honest and attacked CHSH samples and report (false-alarm, detection) pairs
  plus the area under the curve;
* :func:`detection_power` / :func:`sessions_for_detection` /
  :func:`binomial_test_power` / :func:`sessions_for_power` — statistical
  power versus sample size: how many sessions an operator must watch before
  an adversary of a given per-session detectability is caught with the
  required confidence;
* :func:`tradeoff_frontier` — the information-leakage versus
  detection-probability Pareto frontier across a family of attack strengths
  (Eve's view of the entangle-measure coupling sweep);
* :func:`chsh_epsilon` / :func:`chsh_lower_bound` /
  :func:`pairs_for_chsh_epsilon` — finite-sample Hoeffding confidence bounds
  on a sampled CHSH value, quantifying how many check pairs ``d`` the DI
  rounds need before "S > 2" is a statistically meaningful statement.

Everything here is pure computation on numbers produced elsewhere (protocol
results, attack evaluations); the ``fig_security`` experiment
(:mod:`repro.experiments.fig_security`) is the harness that feeds it.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ReproError

__all__ = [
    "RocCurve",
    "TradeoffPoint",
    "detection_roc",
    "detection_power",
    "sessions_for_detection",
    "binomial_test_power",
    "sessions_for_power",
    "tradeoff_frontier",
    "chsh_epsilon",
    "chsh_lower_bound",
    "pairs_for_chsh_epsilon",
]


# ---------------------------------------------------------------------------
# ROC analysis of the CHSH eavesdropping test
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RocCurve:
    """ROC of the threshold test "abort when the CHSH estimate falls below t".

    Attributes
    ----------
    thresholds:
        The swept abort thresholds, ascending (one per observed score value).
    false_positive_rates:
        Fraction of *honest* sessions flagged at each threshold
        (non-decreasing in the threshold).
    true_positive_rates:
        Fraction of *attacked* sessions flagged at each threshold
        (non-decreasing in the threshold).
    auc:
        Area under the curve — the probability a random attacked session
        scores more suspiciously (lower CHSH) than a random honest one, with
        ties counted half.  0.5 means the statistic cannot distinguish the
        attack; 1.0 means perfect separation.
    """

    thresholds: tuple[float, ...]
    false_positive_rates: tuple[float, ...]
    true_positive_rates: tuple[float, ...]
    auc: float

    def detection_at_false_alarm(self, max_false_alarm: float) -> float:
        """Best detection rate achievable with false-alarm ≤ *max_false_alarm*."""
        best = 0.0
        for fpr, tpr in zip(self.false_positive_rates, self.true_positive_rates):
            if fpr <= max_false_alarm:
                best = max(best, tpr)
        return best

    def summary(self) -> dict:
        """Compact JSON-friendly form (used by experiment reports)."""
        return {
            "auc": self.auc,
            "operating_points": len(self.thresholds),
            "detection_at_5pct_false_alarm": self.detection_at_false_alarm(0.05),
        }


def detection_roc(
    honest_scores: Sequence[float], attacked_scores: Sequence[float]
) -> RocCurve:
    """ROC curve of a "flag when score ≤ threshold" test.

    Scores are session statistics where *smaller means more suspicious* — in
    the DI security check that is the CHSH estimate (attacks collapse it
    toward or below 2, honest sessions sit near 2√2).

    Parameters
    ----------
    honest_scores:
        Per-session scores from attack-free runs (the null distribution).
    attacked_scores:
        Per-session scores from runs under the attack being characterised.
    """
    honest = np.asarray(list(honest_scores), dtype=float)
    attacked = np.asarray(list(attacked_scores), dtype=float)
    if honest.size == 0 or attacked.size == 0:
        raise ReproError("detection_roc needs at least one score per class")
    thresholds = np.unique(np.concatenate([honest, attacked]))
    fpr = tuple(float(np.mean(honest <= t)) for t in thresholds)
    tpr = tuple(float(np.mean(attacked <= t)) for t in thresholds)
    # Mann–Whitney AUC: P(attacked < honest) + 0.5 P(attacked == honest).
    less = np.sum(attacked[:, None] < honest[None, :])
    ties = np.sum(attacked[:, None] == honest[None, :])
    auc = float((less + 0.5 * ties) / (attacked.size * honest.size))
    return RocCurve(
        thresholds=tuple(float(t) for t in thresholds),
        false_positive_rates=fpr,
        true_positive_rates=tpr,
        auc=auc,
    )


# ---------------------------------------------------------------------------
# statistical power versus sample size
# ---------------------------------------------------------------------------

def detection_power(per_session_rate: float, sessions: int) -> float:
    """Probability at least one of *sessions* independent sessions aborts.

    With per-session detection probability ``p`` the power of the simplest
    operating rule — "declare an eavesdropper after the first abort" — is
    ``1 − (1 − p)^n``.
    """
    if not 0.0 <= per_session_rate <= 1.0:
        raise ReproError("per_session_rate must lie in [0, 1]")
    if sessions < 1:
        raise ReproError("sessions must be at least 1")
    return 1.0 - (1.0 - per_session_rate) ** sessions


def sessions_for_detection(
    per_session_rate: float, target_confidence: float = 0.95
) -> "int | None":
    """Sessions needed before the first-abort rule reaches *target_confidence*.

    Returns ``None`` when the attack is undetectable (rate 0): no number of
    sessions helps.
    """
    if not 0.0 <= per_session_rate <= 1.0:
        raise ReproError("per_session_rate must lie in [0, 1]")
    if not 0.0 < target_confidence < 1.0:
        raise ReproError("target_confidence must lie in (0, 1)")
    if per_session_rate == 0.0:
        return None
    if per_session_rate == 1.0:
        return 1
    return int(math.ceil(math.log(1.0 - target_confidence) / math.log(1.0 - per_session_rate)))


def binomial_test_power(
    null_rate: float, attack_rate: float, sessions: int, alpha: float = 0.05
) -> float:
    """Power of a one-sided binomial test distinguishing two abort rates.

    An operator who sees honest sessions abort at rate ``p0`` (false alarms
    from finite-sample CHSH noise) and attacked sessions at rate ``p1 > p0``
    tests "is the abort rate elevated?" over *sessions* observations.  This
    is the normal-approximation power of that level-*alpha* test — the
    quantitative version of "the attack is detected".
    """
    if not 0.0 <= null_rate < 1.0 or not 0.0 < attack_rate <= 1.0:
        raise ReproError("rates must lie in [0, 1] with attack_rate > 0")
    if attack_rate <= null_rate:
        raise ReproError("attack_rate must exceed null_rate")
    if sessions < 1:
        raise ReproError("sessions must be at least 1")
    if not 0.0 < alpha < 1.0:
        raise ReproError("alpha must lie in (0, 1)")
    z_alpha = float(stats.norm.ppf(1.0 - alpha))
    sigma0 = math.sqrt(null_rate * (1.0 - null_rate))
    sigma1 = math.sqrt(attack_rate * (1.0 - attack_rate))
    if sigma1 == 0.0:
        # Deterministic detection: one attacked session always aborts.
        return 1.0
    shift = (attack_rate - null_rate) * math.sqrt(sessions)
    return float(stats.norm.cdf((shift - z_alpha * sigma0) / sigma1))


def sessions_for_power(
    null_rate: float, attack_rate: float, power: float = 0.9, alpha: float = 0.05
) -> int:
    """Sessions needed for :func:`binomial_test_power` to reach *power*."""
    if not 0.0 < power < 1.0:
        raise ReproError("power must lie in (0, 1)")
    if attack_rate <= null_rate:
        raise ReproError("attack_rate must exceed null_rate")
    z_alpha = float(stats.norm.ppf(1.0 - alpha))
    z_beta = float(stats.norm.ppf(power))
    sigma0 = math.sqrt(null_rate * (1.0 - null_rate))
    sigma1 = math.sqrt(attack_rate * (1.0 - attack_rate))
    needed = ((z_alpha * sigma0 + z_beta * sigma1) / (attack_rate - null_rate)) ** 2
    return max(1, int(math.ceil(needed)))


# ---------------------------------------------------------------------------
# information-leakage versus detection trade-off
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TradeoffPoint:
    """One attack configuration on the leakage/detection plane.

    Attributes
    ----------
    label:
        Identifier of the configuration (scenario label, strength, ...).
    information_gain:
        Eve's normalised information gain in [0, 1] (e.g.
        :meth:`~repro.attacks.entangle_measure.EntangleMeasureAttack.information_gain`).
    detection_rate:
        Empirical per-session detection probability of the configuration.
    """

    label: str
    information_gain: float
    detection_rate: float

    def summary(self) -> dict:
        """JSON-friendly form of the point."""
        return {
            "label": self.label,
            "information_gain": self.information_gain,
            "detection_rate": self.detection_rate,
        }


def tradeoff_frontier(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """Eve's Pareto frontier: maximal information gain, minimal detection.

    A point is on the frontier iff no other point offers *at least* as much
    information at a *strictly* lower detection rate, or strictly more
    information at an equal-or-lower rate.  The security claim of the paper
    corresponds to a frontier hugging the axes: any appreciable information
    gain forces the detection probability toward 1.

    Returns the frontier sorted by ascending detection rate.
    """
    candidates = list(points)
    if not candidates:
        raise ReproError("tradeoff_frontier needs at least one point")
    frontier: list[TradeoffPoint] = []
    for point in candidates:
        dominated = any(
            (other.information_gain >= point.information_gain
             and other.detection_rate < point.detection_rate)
            or (other.information_gain > point.information_gain
                and other.detection_rate <= point.detection_rate)
            for other in candidates
        )
        if not dominated:
            frontier.append(point)
    return sorted(frontier, key=lambda p: (p.detection_rate, p.information_gain))


# ---------------------------------------------------------------------------
# finite-sample CHSH confidence bounds
# ---------------------------------------------------------------------------

def chsh_epsilon(num_pairs: int, confidence: float = 0.95) -> float:
    """Hoeffding half-width of a CHSH estimate from *num_pairs* check pairs.

    The DI check estimates ``S = E₁ − E₂ + E₃ + E₄`` from four correlators,
    each averaging ``m ≈ num_pairs / 4`` independent ±1 products.  Hoeffding
    for ``m`` samples in [−1, 1] gives
    ``P(|Ê − E| ≥ δ) ≤ 2 exp(−m δ² / 2)``; a union bound over the four
    settings with the worst-case split ``ε = 4δ`` yields

        ``P(|Ŝ − S| ≥ ε) ≤ 8 exp(−m ε² / 32)``

    so ``ε(confidence) = sqrt((32 / m) · ln(8 / (1 − confidence)))``.  This is
    the *device-independent* bound: it assumes nothing about the state, only
    the ±1 range of the outcomes.
    """
    if num_pairs < 4:
        raise ReproError("need at least 4 check pairs (one per CHSH setting)")
    if not 0.0 < confidence < 1.0:
        raise ReproError("confidence must lie in (0, 1)")
    per_setting = num_pairs / 4.0
    return math.sqrt((32.0 / per_setting) * math.log(8.0 / (1.0 - confidence)))


def chsh_lower_bound(
    estimate: float, num_pairs: int, confidence: float = 0.95
) -> float:
    """One-sided finite-sample lower confidence bound on the true CHSH value.

    ``S ≥ Ŝ − ε`` with probability at least *confidence*; the parties may
    claim device-independent security only while this bound exceeds the
    classical limit 2 — which is why the paper's ``d = 256`` check pairs per
    round are a *minimum* rather than a luxury.
    """
    return estimate - chsh_epsilon(num_pairs, confidence)


def pairs_for_chsh_epsilon(epsilon: float, confidence: float = 0.95) -> int:
    """Check pairs per DI round needed for a CHSH half-width of *epsilon*.

    Inverts :func:`chsh_epsilon`: ``m = (32 / ε²) ln(8 / (1 − confidence))``
    per setting, four settings in total.
    """
    if epsilon <= 0.0:
        raise ReproError("epsilon must be positive")
    if not 0.0 < confidence < 1.0:
        raise ReproError("confidence must lie in (0, 1)")
    per_setting = (32.0 / (epsilon**2)) * math.log(8.0 / (1.0 - confidence))
    return int(math.ceil(4.0 * per_setting))
