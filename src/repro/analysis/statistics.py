"""Statistical helpers for sampled estimates.

Every quantity the evaluation section reports — accuracy per channel length,
CHSH values, detection rates — is estimated from a finite number of shots or
protocol runs.  This module provides the standard error and confidence
interval machinery so the experiment harness can report uncertainties instead
of bare point estimates.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import stats

from repro.exceptions import ReproError

__all__ = [
    "binomial_standard_error",
    "wilson_interval",
    "mean_and_confidence_interval",
    "chsh_standard_error",
    "required_shots_for_accuracy",
    "empirical_mutual_information",
]


def binomial_standard_error(successes: int, trials: int) -> float:
    """Standard error of a binomial proportion ``sqrt(p (1 - p) / n)``."""
    if trials <= 0:
        raise ReproError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ReproError("successes must lie in [0, trials]")
    p = successes / trials
    return math.sqrt(p * (1 - p) / trials)


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    More reliable than the normal approximation near 0 or 1, which matters for
    detection probabilities like ``1 − (1/4)**l`` that sit very close to 1.
    """
    if trials <= 0:
        raise ReproError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ReproError("successes must lie in [0, trials]")
    if not 0 < confidence < 1:
        raise ReproError("confidence must lie in (0, 1)")
    z = stats.norm.ppf(0.5 + confidence / 2)
    p = successes / trials
    denominator = 1 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denominator
    margin = (
        z * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2)) / denominator
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)


def mean_and_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Sample mean and a Student-t confidence interval ``(mean, low, high)``."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ReproError("need at least one sample")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean, mean
    sem = float(stats.sem(values))
    if sem == 0:
        return mean, mean, mean
    low, high = stats.t.interval(confidence, values.size - 1, loc=mean, scale=sem)
    return mean, float(low), float(high)


def chsh_standard_error(num_pairs: int) -> float:
    """Standard error of a sampled CHSH estimate over *num_pairs* check pairs.

    Each of the four correlations is estimated from roughly ``num_pairs / 4``
    ±1 samples with per-sample variance at most 1, and the four estimates are
    independent, so ``std(S) ≈ sqrt(4 · 4 / num_pairs) = 4 / sqrt(num_pairs)``.
    """
    if num_pairs <= 0:
        raise ReproError("num_pairs must be positive")
    return 4.0 / math.sqrt(num_pairs)


def required_shots_for_accuracy(margin: float, confidence: float = 0.95) -> int:
    """Shots needed so a binomial proportion is known to within ±margin.

    Uses the worst case ``p = 1/2``: ``n = (z / (2 margin))^2``.
    """
    if not 0 < margin < 1:
        raise ReproError("margin must lie in (0, 1)")
    if not 0 < confidence < 1:
        raise ReproError("confidence must lie in (0, 1)")
    z = stats.norm.ppf(0.5 + confidence / 2)
    return int(math.ceil((z / (2 * margin)) ** 2))


def empirical_mutual_information(
    xs: Sequence, ys: Sequence
) -> float:
    """Plug-in estimate of the mutual information I(X; Y) in bits.

    Used by the information-leakage analysis to quantify how much an
    eavesdropper's classical view (Y) reveals about the message (X).  Both
    sequences are treated as categorical.
    """
    if len(xs) != len(ys):
        raise ReproError("sequences must have the same length")
    if not xs:
        raise ReproError("need at least one observation")
    n = len(xs)
    joint: dict[tuple, int] = {}
    marginal_x: dict = {}
    marginal_y: dict = {}
    for x, y in zip(xs, ys):
        joint[(x, y)] = joint.get((x, y), 0) + 1
        marginal_x[x] = marginal_x.get(x, 0) + 1
        marginal_y[y] = marginal_y.get(y, 0) + 1
    information = 0.0
    for (x, y), count in joint.items():
        p_xy = count / n
        p_x = marginal_x[x] / n
        p_y = marginal_y[y] / n
        information += p_xy * math.log2(p_xy / (p_x * p_y))
    return max(0.0, information)
