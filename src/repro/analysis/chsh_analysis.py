"""Analytic CHSH curves versus noise strength and channel length.

These closed-form curves back up the sampled estimates of the protocol's DI
security checks: they predict how the CHSH value decays as the η-identity-gate
channel lengthens (or as depolarizing noise grows) and where it crosses the
classical bound of 2 — the point beyond which the honest protocol can no
longer certify device independence and must abort.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.channel.quantum_channel import IdentityChainChannel
from repro.exceptions import ReproError
from repro.quantum.bell import BellState, bell_state, chsh_value, CLASSICAL_CHSH_BOUND
from repro.quantum.channels import depolarizing_channel

__all__ = ["chsh_vs_depolarizing", "chsh_vs_channel_length", "chsh_threshold_eta"]


def chsh_vs_depolarizing(probabilities: Sequence[float]) -> list[tuple[float, float]]:
    """Analytic CHSH value of ``|Φ+⟩`` after single-qubit depolarizing noise.

    Returns ``[(p, S(p)), ...]``; analytically ``S(p) = (1 − p) · 2√2``.
    """
    curve = []
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"probability {p} out of range")
        state = depolarizing_channel(p).apply(
            bell_state(BellState.PHI_PLUS).density_matrix(), [0]
        )
        curve.append((float(p), chsh_value(state)))
    return curve


def chsh_vs_channel_length(
    etas: Sequence[int],
    gate_error: float | None = None,
    include_thermal_relaxation: bool = True,
) -> list[tuple[int, float]]:
    """Analytic CHSH value of ``|Φ+⟩`` after the η-identity-gate channel.

    Returns ``[(eta, S(eta)), ...]`` using the same channel model as the
    protocol (per-gate depolarizing plus optional thermal relaxation).
    """
    curve = []
    for eta in etas:
        kwargs = {"eta": int(eta), "include_thermal_relaxation": include_thermal_relaxation}
        if gate_error is not None:
            kwargs["gate_error"] = gate_error
        channel = IdentityChainChannel(**kwargs)
        state = channel.transmit(bell_state(BellState.PHI_PLUS).density_matrix(), 0)
        curve.append((int(eta), chsh_value(state)))
    return curve


def chsh_threshold_eta(
    max_eta: int = 20000,
    threshold: float = CLASSICAL_CHSH_BOUND,
    gate_error: float | None = None,
    include_thermal_relaxation: bool = True,
    step: int = 50,
) -> int | None:
    """Smallest channel length whose analytic CHSH value drops to *threshold* or below.

    Returns ``None`` if the CHSH value stays above the threshold up to
    *max_eta*.  This is the maximum channel length over which the honest
    protocol can still pass its DI security checks.
    """
    if max_eta < 1 or step < 1:
        raise ReproError("max_eta and step must be positive")
    for eta in range(0, max_eta + 1, step):
        (_, value), = chsh_vs_channel_length(
            [eta], gate_error=gate_error,
            include_thermal_relaxation=include_thermal_relaxation,
        )
        if value <= threshold:
            return eta
    return None
