"""Accuracy-versus-channel-length analysis (Fig. 3 of the paper).

Fig. 3 plots the accuracy of Bob's Bell-state measurement against the number
``η`` of identity gates in the quantum channel and observes that beyond
roughly 700 gates (42 µs) the accuracy drops below 60 %.  This module provides
the data structures and curve analysis for that figure: the per-point record,
an exponential-decay fit ``a(η) = (1 − c) · exp(−η / η0) + c`` (the form the
physical noise model predicts, with ``c = 1/4`` the fully-depolarised floor of
a four-outcome Bell measurement), and the crossing finder that reports where
the accuracy falls below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from scipy.optimize import curve_fit

from repro.exceptions import ReproError

__all__ = ["AccuracyPoint", "exponential_decay_fit", "crossing_eta"]


@dataclass(frozen=True)
class AccuracyPoint:
    """One point of the Fig. 3 curve.

    Attributes
    ----------
    eta:
        Number of identity gates in the channel.
    duration:
        Channel duration in seconds (``eta * 60 ns`` on ``ibm_brisbane``).
    accuracy:
        Probability that Bob's Bell measurement decodes the encoded symbol.
    shots:
        Number of shots behind the estimate.
    fidelity:
        Classical fidelity of the full outcome distribution to the ideal one.
    """

    eta: int
    duration: float
    accuracy: float
    shots: int
    fidelity: float


def _decay_model(eta: np.ndarray, eta0: float, floor: float) -> np.ndarray:
    return (1.0 - floor) * np.exp(-eta / eta0) + floor


def exponential_decay_fit(
    points: Sequence[AccuracyPoint], floor: float | None = None
) -> dict[str, float]:
    """Fit ``a(η) = (1 − c) exp(−η/η0) + c`` to Fig. 3 data.

    Returns a dict with the fitted decay constant ``eta0``, the floor ``c``
    (fixed to *floor* when supplied, fitted otherwise) and the RMS residual.
    """
    if len(points) < 3:
        raise ReproError("need at least three points to fit the decay curve")
    etas = np.array([p.eta for p in points], dtype=float)
    accuracies = np.array([p.accuracy for p in points], dtype=float)

    if floor is not None:
        def model(eta, eta0):
            return _decay_model(eta, eta0, floor)

        popt, _ = curve_fit(model, etas, accuracies, p0=[500.0], maxfev=10000)
        eta0, fitted_floor = float(popt[0]), float(floor)
    else:
        popt, _ = curve_fit(
            _decay_model, etas, accuracies, p0=[500.0, 0.25],
            bounds=([1.0, 0.0], [1e6, 1.0]), maxfev=10000,
        )
        eta0, fitted_floor = float(popt[0]), float(popt[1])

    residuals = accuracies - _decay_model(etas, eta0, fitted_floor)
    return {
        "eta0": eta0,
        "floor": fitted_floor,
        "rms_residual": float(np.sqrt(np.mean(residuals**2))),
    }


def crossing_eta(points: Sequence[AccuracyPoint], threshold: float = 0.6) -> float | None:
    """First channel length at which the accuracy falls below *threshold*.

    Interpolates linearly between the neighbouring measured points; returns
    ``None`` if the accuracy never crosses the threshold within the sweep.
    """
    if not points:
        raise ReproError("need at least one accuracy point")
    ordered = sorted(points, key=lambda p: p.eta)
    previous = ordered[0]
    if previous.accuracy < threshold:
        return float(previous.eta)
    for point in ordered[1:]:
        if point.accuracy < threshold <= previous.accuracy:
            span = point.accuracy - previous.accuracy
            if abs(span) < 1e-12:
                return float(point.eta)
            fraction = (threshold - previous.accuracy) / span
            return float(previous.eta + fraction * (point.eta - previous.eta))
        previous = point
    return None
