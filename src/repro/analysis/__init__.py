"""Metrics and statistics used by the evaluation harness.

* :mod:`repro.analysis.fidelity` — distribution and state fidelities;
* :mod:`repro.analysis.qber` — bit-error-rate metrics for decoded messages;
* :mod:`repro.analysis.statistics` — confidence intervals, standard errors
  and sample-size rules for sampled estimates (CHSH, accuracy);
* :mod:`repro.analysis.accuracy` — the accuracy-versus-channel-length metric
  of Fig. 3, including the exponential-decay fit and threshold crossing;
* :mod:`repro.analysis.chsh_analysis` — analytic CHSH curves versus noise and
  channel length;
* :mod:`repro.analysis.security` — detection ROC curves, statistical power
  versus sample size, information-leakage/detection trade-off frontiers and
  finite-sample CHSH confidence bounds (the quantitative layer behind the
  paper's §III/§IV security claims, driven by the ``fig_security``
  experiment);
* :mod:`repro.analysis.regression` — bootstrap confidence intervals, effect
  tables and the benchmark-trajectory regression verdicts behind the
  ``python -m repro.artifacts compare`` CI gate.
"""

from repro.analysis.accuracy import (
    AccuracyPoint,
    crossing_eta,
    exponential_decay_fit,
)
from repro.analysis.chsh_analysis import (
    chsh_threshold_eta,
    chsh_vs_channel_length,
    chsh_vs_depolarizing,
)
from repro.analysis.fidelity import (
    distribution_fidelity,
    hellinger_distance,
    state_fidelity,
)
from repro.analysis.qber import bit_error_rate, quantum_bit_error_rate
from repro.analysis.regression import (
    BenchmarkVerdict,
    TrajectoryComparison,
    bootstrap_ci,
    bootstrap_ratio_ci,
    compare_trajectories,
    effect_table,
)
from repro.analysis.security import (
    RocCurve,
    TradeoffPoint,
    binomial_test_power,
    chsh_epsilon,
    chsh_lower_bound,
    detection_power,
    detection_roc,
    pairs_for_chsh_epsilon,
    sessions_for_detection,
    sessions_for_power,
    tradeoff_frontier,
)
from repro.analysis.statistics import (
    binomial_standard_error,
    chsh_standard_error,
    mean_and_confidence_interval,
    required_shots_for_accuracy,
    wilson_interval,
)

__all__ = [
    "AccuracyPoint",
    "crossing_eta",
    "exponential_decay_fit",
    "chsh_threshold_eta",
    "chsh_vs_channel_length",
    "chsh_vs_depolarizing",
    "distribution_fidelity",
    "hellinger_distance",
    "state_fidelity",
    "bit_error_rate",
    "quantum_bit_error_rate",
    "BenchmarkVerdict",
    "TrajectoryComparison",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "compare_trajectories",
    "effect_table",
    "binomial_standard_error",
    "chsh_standard_error",
    "mean_and_confidence_interval",
    "required_shots_for_accuracy",
    "wilson_interval",
    "RocCurve",
    "TradeoffPoint",
    "detection_roc",
    "detection_power",
    "sessions_for_detection",
    "binomial_test_power",
    "sessions_for_power",
    "tradeoff_frontier",
    "chsh_epsilon",
    "chsh_lower_bound",
    "pairs_for_chsh_epsilon",
]
