"""Fidelity metrics.

The paper quotes the "average fidelity of message outcomes" for Fig. 2 (at
least 0.95 on ``ibm_brisbane`` at η = 10): that is the classical fidelity
between Bob's measured outcome distribution and the ideal (noise-free)
distribution.  :func:`distribution_fidelity` implements it for any pair of
count/probability mappings, and :func:`state_fidelity` wraps the quantum state
fidelity for convenience when working with simulator output directly.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.exceptions import ReproError
from repro.quantum.density import DensityMatrix
from repro.quantum.states import Statevector

__all__ = ["distribution_fidelity", "hellinger_distance", "state_fidelity"]


def _normalise(distribution: Mapping[str, float]) -> dict[str, float]:
    total = float(sum(distribution.values()))
    if total <= 0:
        raise ReproError("distribution has no weight")
    return {str(key): float(value) / total for key, value in distribution.items()}


def distribution_fidelity(
    measured: Mapping[str, float], ideal: Mapping[str, float]
) -> float:
    """Classical (Bhattacharyya) fidelity ``(sum_x sqrt(p_x q_x))^2``.

    Both arguments may be raw counts or probabilities; they are normalised
    internally.  Returns 1.0 for identical distributions and 0.0 for disjoint
    supports.
    """
    p = _normalise(measured)
    q = _normalise(ideal)
    overlap = sum(math.sqrt(p.get(key, 0.0) * q.get(key, 0.0)) for key in set(p) | set(q))
    return overlap**2


def hellinger_distance(
    measured: Mapping[str, float], ideal: Mapping[str, float]
) -> float:
    """Hellinger distance ``sqrt(1 − sqrt(F))`` between two distributions."""
    return math.sqrt(max(0.0, 1.0 - math.sqrt(distribution_fidelity(measured, ideal))))


def state_fidelity(
    state_a: "Statevector | DensityMatrix", state_b: "Statevector | DensityMatrix"
) -> float:
    """Quantum state fidelity between pure or mixed states."""
    if isinstance(state_a, Statevector) and isinstance(state_b, Statevector):
        return state_a.fidelity(state_b)
    rho = state_a if isinstance(state_a, DensityMatrix) else state_a.density_matrix()
    if isinstance(state_b, Statevector):
        return rho.fidelity(state_b)
    return rho.fidelity(state_b)
