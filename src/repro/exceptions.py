"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch a single base class.
Subsystems define narrower classes below; the protocol layer additionally
distinguishes *aborts* (expected, security-mandated protocol terminations)
from *errors* (programming or configuration mistakes).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "QuantumError",
    "DimensionError",
    "NonUnitaryError",
    "NonPhysicalStateError",
    "CircuitError",
    "SimulationError",
    "NoiseModelError",
    "DeviceError",
    "ChannelError",
    "ProtocolError",
    "ProtocolAbort",
    "AuthenticationFailure",
    "SecurityCheckFailure",
    "ConfigurationError",
    "AttackError",
    "ExperimentError",
    "NetworkError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class QuantumError(ReproError):
    """Base class for errors raised by the quantum simulation substrate."""


class DimensionError(QuantumError):
    """An array has a shape or dimension incompatible with the operation."""


class NonUnitaryError(QuantumError):
    """A matrix expected to be unitary is not unitary within tolerance."""


class NonPhysicalStateError(QuantumError):
    """A state is not normalised / not positive semi-definite / not trace one."""


class CircuitError(QuantumError):
    """Invalid circuit construction (bad qubit index, wrong arity, ...)."""


class SimulationError(QuantumError):
    """A simulator could not execute the requested circuit."""


class NoiseModelError(QuantumError):
    """Invalid noise model construction (non-CPTP channel, bad probability)."""


class DeviceError(ReproError):
    """Invalid device model or backend configuration."""


class ChannelError(ReproError):
    """Invalid communication channel configuration or usage."""


class ProtocolError(ReproError):
    """Programming or configuration error in the protocol layer."""


class ConfigurationError(ProtocolError):
    """A :class:`~repro.protocol.config.ProtocolConfig` value is invalid."""


class ProtocolAbort(ReproError):
    """The protocol terminated itself for a security reason.

    Aborts are *expected* outcomes (e.g. the CHSH check failed, or identity
    verification detected an impersonator).  They carry a machine-readable
    ``reason`` so experiment harnesses can tabulate abort causes.
    """

    def __init__(self, reason: str, message: str | None = None):
        self.reason = reason
        super().__init__(message or reason)


class SecurityCheckFailure(ProtocolAbort):
    """A device-independent (CHSH) security check fell below the threshold."""


class AuthenticationFailure(ProtocolAbort):
    """Identity verification of Alice or Bob failed."""


class AttackError(ReproError):
    """Invalid attack model configuration."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with invalid parameters."""


class NetworkError(ReproError):
    """Invalid network topology, routing request, or scheduler configuration."""


class TelemetryError(ReproError):
    """Invalid telemetry usage (bad trace file, malformed export request)."""
