"""Stabilizer (CHP tableau) fast path for Clifford circuits with Pauli noise.

The UA-DI-QSDC circuits are almost entirely Clifford — Bell-pair
preparation, Pauli-frame encoding, identity-gate channels, Bell-basis
measurement — and every stochastic noise primitive the paper's emulation
needs (depolarizing, bit/phase flip, general Pauli channels) is a mixture of
Pauli unitaries.  For that class this module simulates in polynomial time
what the dense simulators pay exponential cost for, while reproducing their
sampling contract exactly:

* :class:`CliffordTableau` — an Aaronson–Gottesman CHP tableau (destabilizer
  + stabilizer rows over :math:`F_2`) with the full Clifford gate set of
  :class:`~repro.quantum.circuit.QuantumCircuit`, computational-basis
  measurement and reset.  Measurement outcomes can optionally be tracked
  *symbolically*: every random outcome becomes a fresh binary symbol and all
  subsequent phases stay affine in those symbols, which turns one tableau
  pass into the **exact joint outcome distribution** (uniform over an affine
  subspace) instead of one Monte-Carlo sample.
* :class:`StabilizerSimulator` — the same ``run`` / ``run_batch`` /
  :class:`~repro.quantum.simulator.SimulationResult` contract as the dense
  simulators.  Terminal-measurement circuits take the **analytic path**: one
  symbolic tableau pass yields the exact probability vector over the
  measured qubits, Pauli noise is folded in exactly via an XOR-convolution
  of error masks (each error component is conjugated through the remaining
  circuit; only its X-action on measured qubits can affect counts), readout
  errors apply through the very same
  :meth:`~repro.quantum.noise_model.NoiseModel.apply_readout_errors` code
  the dense path uses, and counts are drawn with a single ``multinomial`` —
  the identical RNG consumption pattern as the dense simulators, which is
  what makes noiseless Clifford counts bit-identical under a fixed seed.
  Circuits outside the analytic envelope (too many measured qubits or
  random outcomes) fall back to per-shot **Pauli-noise trajectory
  sampling** on the tableau.

Eligibility (Clifford-only gates, Pauli-diagonal noise) is *checked* here
but *decided* by :mod:`repro.quantum.dispatch`, which routes circuits
between this backend and the dense ones.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.batch import (
    BatchResult,
    _noise_token,
    circuit_structure_key,
    measurements_are_terminal,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import (
    SimulationResult,
    _format_clbits,
    renormalize_readout_probabilities,
)
from repro.telemetry import runtime as telemetry
from repro.utils.rng import as_rng

__all__ = [
    "ANALYTIC_MAX_MEASURED_QUBITS",
    "ANALYTIC_MAX_SYMBOLS",
    "CLIFFORD_GATE_NAMES",
    "CliffordTableau",
    "StabilizerSimulator",
]

#: Gate names the tableau implements (the Clifford subset of ``make_gate``).
CLIFFORD_GATE_NAMES = frozenset(
    {"id", "x", "y", "z", "h", "s", "sdg", "cx", "cz", "cy", "swap"}
)

#: Order of each Clifford gate (G**order = identity); run-length-encoded
#: repetitions reduce modulo this, so an η-identity chain costs O(1).
_GATE_ORDER = {
    "id": 1, "x": 2, "y": 2, "z": 2, "h": 2,
    "s": 4, "sdg": 4, "cx": 2, "cz": 2, "cy": 2, "swap": 2,
}

#: Analytic-path cap on measured qubits: the exact probability vector has
#: ``2**m`` entries (the same quantity the dense samplers materialise).
#: The bound is INCLUSIVE — exactly 12 measured qubits still runs
#: analytically, 13 falls back — matching the "measured qubits ≤ 12" error
#: message; both sides of the boundary are pinned by
#: ``tests/quantum/test_analytic_envelope.py``.
ANALYTIC_MAX_MEASURED_QUBITS = 12

#: Analytic-path cap on random measurement outcomes (symbols): enumerating
#: the affine outcome subspace costs ``2**r`` rows.  Inclusive like the
#: measured-qubit cap: exactly 16 symbols still runs analytically, 17 falls
#: back ("random outcomes ≤ 16"); boundary pinned by
#: ``tests/quantum/test_analytic_envelope.py``.
ANALYTIC_MAX_SYMBOLS = 16


class CliffordTableau:
    """An n-qubit stabilizer state in CHP tableau form.

    Rows ``0..n-1`` are destabilizer generators, rows ``n..2n-1`` stabilizer
    generators; ``x``/``z`` hold the symplectic bits and ``r`` the sign
    exponent (the generator carries sign ``(-1)**r``).

    With ``track_symbols=True`` every random measurement outcome becomes a
    fresh binary symbol and row signs become affine forms ``r ⊕ (mask · s)``
    over the symbol vector ``s`` (``mask`` is a Python-int bitmask).  All
    tableau operations keep the forms affine, so one pass computes every
    measurement outcome as an affine function of uniformly random symbols —
    the exact joint distribution.
    """

    __slots__ = ("n", "x", "z", "r", "rsym", "num_symbols")

    def __init__(self, num_qubits: int, track_symbols: bool = False):
        if num_qubits < 1:
            raise SimulationError("a tableau needs at least one qubit")
        n = int(num_qubits)
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        self.x[:n, :] = np.eye(n, dtype=bool)
        self.z[n:, :] = np.eye(n, dtype=bool)
        self.rsym: list[int] | None = [0] * (2 * n) if track_symbols else None
        self.num_symbols = 0

    # -- gates ---------------------------------------------------------------------
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        self.z_gate(q)
        self.s(q)

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def y_gate(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def cx(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ True)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def cz(self, control: int, target: int) -> None:
        self.h(target)
        self.cx(control, target)
        self.h(target)

    def cy(self, control: int, target: int) -> None:
        self.sdg(target)
        self.cx(control, target)
        self.s(target)

    def swap(self, a: int, b: int) -> None:
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    def apply_gate(self, name: str, qubits: Sequence[int], repetitions: int = 1) -> None:
        """Apply a named Clifford gate ``repetitions`` times (reduced mod its order)."""
        order = _GATE_ORDER.get(name)
        if order is None:
            raise SimulationError(
                f"gate {name!r} is not Clifford; the stabilizer backend supports "
                f"{sorted(CLIFFORD_GATE_NAMES)}"
            )
        for _ in range(repetitions % order if order > 1 else 0):
            if name == "h":
                self.h(qubits[0])
            elif name == "s":
                self.s(qubits[0])
            elif name == "sdg":
                self.sdg(qubits[0])
            elif name == "x":
                self.x_gate(qubits[0])
            elif name == "y":
                self.y_gate(qubits[0])
            elif name == "z":
                self.z_gate(qubits[0])
            elif name == "cx":
                self.cx(qubits[0], qubits[1])
            elif name == "cz":
                self.cz(qubits[0], qubits[1])
            elif name == "cy":
                self.cy(qubits[0], qubits[1])
            elif name == "swap":
                self.swap(qubits[0], qubits[1])

    def apply_pauli(self, label: str, qubits: Sequence[int]) -> None:
        """Apply a Pauli string (one character per listed qubit) as a unitary."""
        for ch, qubit in zip(label.lower(), qubits):
            if ch == "i":
                continue
            if ch == "x":
                self.x_gate(qubit)
            elif ch == "y":
                self.y_gate(qubit)
            elif ch == "z":
                self.z_gate(qubit)
            else:
                raise SimulationError(f"unknown Pauli character {ch!r}")

    # -- row algebra ------------------------------------------------------------------
    def _phase_exponent(self, h: int, i: int) -> int:
        """The mod-4 phase exponent contribution of multiplying row i into row h."""
        x1 = self.x[i].astype(np.int8)
        z1 = self.z[i].astype(np.int8)
        x2 = self.x[h].astype(np.int8)
        z2 = self.z[h].astype(np.int8)
        g = (
            (x1 & z1) * (z2 - x2)
            + (x1 & (1 - z1)) * (z2 * (2 * x2 - 1))
            + ((1 - x1) & z1) * (x2 * (1 - 2 * z2))
        )
        return int(g.sum())

    def _rowsum(self, h: int, i: int) -> None:
        """Replace generator h with generator i * generator h (CHP rowsum)."""
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + self._phase_exponent(h, i)
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]
        if self.rsym is not None:
            self.rsym[h] ^= self.rsym[i]

    # -- measurement -----------------------------------------------------------------
    def _collapse(self, q: int) -> int:
        """Collapse qubit *q* for a random-outcome measurement; return row p.

        Performs the CHP update (rowsums, destabilizer replacement, fresh
        ``Z_q`` stabilizer) but leaves the new stabilizer's sign to the
        caller — sampled in :meth:`measure`, symbolic in
        :meth:`measure_symbolic`.
        """
        p = int(np.flatnonzero(self.x[self.n:, q])[0]) + self.n
        for i in np.flatnonzero(self.x[:, q]):
            if int(i) != p:
                self._rowsum(int(i), p)
        d = p - self.n
        self.x[d] = self.x[p]
        self.z[d] = self.z[p]
        self.r[d] = self.r[p]
        if self.rsym is not None:
            self.rsym[d] = self.rsym[p]
        self.x[p] = False
        self.z[p] = False
        self.z[p, q] = True
        return p

    def measure(self, q: int, rng: np.random.Generator) -> int:
        """Measure qubit *q* in the computational basis, sampling via *rng*."""
        if np.any(self.x[self.n:, q]):
            p = self._collapse(q)
            outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            if self.rsym is not None:
                self.rsym[p] = 0
            return outcome
        constant, _ = self._deterministic_form(q)
        return constant

    def measure_symbolic(self, q: int) -> tuple[int, int]:
        """Measure qubit *q*, returning the outcome as ``(constant, symbol_mask)``.

        A random outcome allocates a fresh symbol (bit ``num_symbols - 1`` of
        subsequent masks); a deterministic outcome may still depend on earlier
        symbols through its mask.
        """
        if self.rsym is None:
            raise SimulationError("symbolic measurement requires track_symbols=True")
        if np.any(self.x[self.n:, q]):
            p = self._collapse(q)
            symbol = 1 << self.num_symbols
            self.num_symbols += 1
            self.r[p] = 0
            self.rsym[p] = symbol
            return 0, symbol
        return self._deterministic_form(q)

    def _deterministic_form(self, q: int) -> tuple[int, int]:
        """Affine form of a deterministic measurement outcome on qubit *q*."""
        scratch_x = np.zeros(self.n, dtype=bool)
        scratch_z = np.zeros(self.n, dtype=bool)
        phase = 0  # mod 4
        mask = 0
        for i in np.flatnonzero(self.x[: self.n, q]):
            stab = int(i) + self.n
            x1 = self.x[stab].astype(np.int8)
            z1 = self.z[stab].astype(np.int8)
            x2 = scratch_x.astype(np.int8)
            z2 = scratch_z.astype(np.int8)
            g = (
                (x1 & z1) * (z2 - x2)
                + (x1 & (1 - z1)) * (z2 * (2 * x2 - 1))
                + ((1 - x1) & z1) * (x2 * (1 - 2 * z2))
            )
            phase = (phase + 2 * int(self.r[stab]) + int(g.sum())) % 4
            scratch_x ^= self.x[stab]
            scratch_z ^= self.z[stab]
            if self.rsym is not None:
                mask ^= self.rsym[stab]
        return (phase % 4) // 2, mask

    def reset(self, q: int, rng: np.random.Generator) -> None:
        """Reset qubit *q* to ``|0>`` (measure, then flip on outcome 1)."""
        if self.measure(q, rng) == 1:
            self.x_gate(q)

    def reset_symbolic(self, q: int) -> None:
        """Reset qubit *q* to ``|0>`` with a symbol-conditioned correction.

        The conditional ``X`` correction flips the sign of every generator
        anticommuting with ``X_q`` whenever the (affine) measurement outcome
        is 1 — which keeps all signs affine in the symbols.
        """
        constant, mask = self.measure_symbolic(q)
        if constant == 0 and mask == 0:
            return
        rows = np.flatnonzero(self.z[:, q])
        if constant:
            self.r[rows] ^= 1
        if mask and self.rsym is not None:
            for row in rows:
                self.rsym[int(row)] ^= mask

    # -- introspection -----------------------------------------------------------------
    def stabilizer_strings(self) -> list[str]:
        """The stabilizer generators as signed Pauli strings (for tests/debugging)."""
        out = []
        for row in range(self.n, 2 * self.n):
            sign = "-" if self.r[row] else "+"
            chars = []
            for q in range(self.n):
                xb, zb = bool(self.x[row, q]), bool(self.z[row, q])
                chars.append("Y" if xb and zb else "X" if xb else "Z" if zb else "I")
            out.append(sign + "".join(chars))
        return out


# -- Pauli-frame propagation (noise masks) -----------------------------------------------
class _SuffixPauliMap:
    """Conjugation action of a circuit suffix on single-qubit Paulis, mod phase.

    Row ``q`` of ``(xx, xz)`` is the (x-part, z-part) image of ``X_q`` under
    conjugation by the suffix processed so far; ``(zx, zz)`` likewise for
    ``Z_q``.  Built by prepending instructions while walking the circuit in
    reverse, so at any point the map sends a Pauli error *inserted at the
    current position* to its end-of-circuit image — whose X-action on the
    measured qubits is the only thing that can shift computational-basis
    counts.
    """

    def __init__(self, num_qubits: int):
        n = num_qubits
        self.xx = np.eye(n, dtype=bool)
        self.xz = np.zeros((n, n), dtype=bool)
        self.zx = np.zeros((n, n), dtype=bool)
        self.zz = np.eye(n, dtype=bool)

    def prepend(self, name: str, qubits: Sequence[int]) -> bool:
        """Fold one earlier gate into the map; True if the map changed."""
        if name in ("id", "x", "y", "z"):
            return False
        if name == "h":
            q = qubits[0]
            self.xx[q], self.zx[q] = self.zx[q].copy(), self.xx[q].copy()
            self.xz[q], self.zz[q] = self.zz[q].copy(), self.xz[q].copy()
        elif name in ("s", "sdg"):
            q = qubits[0]
            self.xx[q] ^= self.zx[q]
            self.xz[q] ^= self.zz[q]
        elif name == "cx":
            c, t = qubits
            self.xx[c] ^= self.xx[t]
            self.xz[c] ^= self.xz[t]
            self.zx[t] ^= self.zx[c]
            self.zz[t] ^= self.zz[c]
        elif name == "cz":
            c, t = qubits
            self.xx[c] ^= self.zx[t]
            self.xz[c] ^= self.zz[t]
            self.xx[t] ^= self.zx[c]
            self.xz[t] ^= self.zz[c]
        elif name == "cy":
            c, t = qubits
            self.xx[c] ^= self.xx[t] ^ self.zx[t]
            self.xz[c] ^= self.xz[t] ^ self.zz[t]
            self.xx[t] ^= self.zx[c]
            self.xz[t] ^= self.zz[c]
            self.zx[t] ^= self.zx[c]
            self.zz[t] ^= self.zz[c]
        elif name == "swap":
            a, b = qubits
            for rows in (self.xx, self.xz, self.zx, self.zz):
                rows[[a, b]] = rows[[b, a]]
        else:
            raise SimulationError(f"cannot propagate Paulis through gate {name!r}")
        return True

    def prepend_reset(self, qubit: int) -> None:
        """A reset annihilates any error component living on its qubit."""
        self.xx[qubit] = False
        self.xz[qubit] = False
        self.zx[qubit] = False
        self.zz[qubit] = False

    def final_x_mask(self, label: str, qubits: Sequence[int]) -> np.ndarray:
        """X-part (length-n bool vector) of the suffix image of a Pauli string."""
        mask = np.zeros(self.xx.shape[0], dtype=bool)
        for ch, qubit in zip(label.lower(), qubits):
            if ch in ("x", "y"):
                mask ^= self.xx[qubit]
            if ch in ("z", "y"):
                mask ^= self.zx[qubit]
        return mask


def _walsh_hadamard(vector: np.ndarray) -> np.ndarray:
    """Unnormalised Walsh–Hadamard transform (XOR-convolution becomes pointwise)."""
    out = vector.astype(float).copy()
    size = out.shape[0]
    step = 1
    while step < size:
        for start in range(0, size, 2 * step):
            a = out[start : start + step].copy()
            b = out[start + step : start + 2 * step].copy()
            out[start : start + step] = a + b
            out[start + step : start + 2 * step] = a - b
        step *= 2
    return out


# -- the simulator ------------------------------------------------------------------------
class _AnalyticDistribution:
    """Cached exact outcome distribution of one (circuit, noise-model) pair."""

    __slots__ = ("probabilities", "measured_qubits", "measure_map", "num_clbits")

    def __init__(self, probabilities, measured_qubits, measure_map, num_clbits):
        self.probabilities = probabilities
        self.measured_qubits = measured_qubits
        self.measure_map = measure_map
        self.num_clbits = num_clbits


class StabilizerSimulator:
    """Clifford-circuit execution on a stabilizer tableau.

    Drop-in for the dense simulators on the Clifford+Pauli class: the same
    ``run`` / ``run_batch`` signatures, the same
    :class:`~repro.quantum.simulator.SimulationResult`, and — on the
    analytic path — the same single-``multinomial`` RNG consumption, so
    noiseless Clifford circuits produce bit-identical counts to the dense
    simulators under a fixed seed.

    Parameters
    ----------
    noise_model:
        Optional :class:`~repro.quantum.noise_model.NoiseModel` whose every
        gate error is a Pauli-diagonal channel (checked at run time through
        :func:`repro.quantum.dispatch.pauli_mixture`); readout errors are
        applied classically exactly as the dense path does.
    seed:
        Seed or generator for all sampling performed by this instance.
    """

    def __init__(self, noise_model=None, seed=None):
        self._noise_model = noise_model
        self._rng = as_rng(seed)
        self._cache: OrderedDict[tuple, _AnalyticDistribution] = OrderedDict()
        self._cache_max = 256
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def noise_model(self):
        """The attached noise model (settable; swapping clears the cache)."""
        return self._noise_model

    @noise_model.setter
    def noise_model(self, noise_model) -> None:
        if noise_model is not self._noise_model:
            self._cache.clear()
        self._noise_model = noise_model

    # -- public API --------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        initial_state=None,
        rng=None,
        method: str = "auto",
    ) -> SimulationResult:
        """Execute *circuit* and sample *shots* outcomes.

        ``method`` selects the execution strategy: ``"auto"`` (analytic when
        the circuit fits the caps, else trajectories), ``"analytic"``
        (force; raises if out of envelope) or ``"trajectory"`` (force
        per-shot Monte Carlo — used by the conformance suite to compare the
        two noise treatments statistically).
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        if initial_state is not None:
            raise SimulationError(
                "the stabilizer backend always starts from |0...0>; "
                "route circuits with explicit initial states to a dense simulator"
            )
        if method not in ("auto", "analytic", "trajectory"):
            raise SimulationError(f"unknown stabilizer method {method!r}")
        generator = as_rng(rng) if rng is not None else self._rng
        self._require_clifford(circuit)
        self._noise_is_pauli(circuit)  # fail fast on non-Pauli noise

        if method != "trajectory":
            analytic = self._analytic(circuit, allow_fail=(method == "auto"))
            if analytic is not None:
                return self._sample_analytic(analytic, shots, generator)
            if method == "analytic":
                raise SimulationError(
                    "circuit exceeds the analytic envelope "
                    f"(measured qubits ≤ {ANALYTIC_MAX_MEASURED_QUBITS}, "
                    f"random outcomes ≤ {ANALYTIC_MAX_SYMBOLS})"
                )
        return self._run_trajectories(circuit, shots, generator)

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: int = 1024,
        initial_state=None,
        rng=None,
    ) -> BatchResult:
        """Execute a sequence of circuits, sharing analytic-distribution work.

        Structurally identical circuits under the same noise model reuse one
        cached exact distribution, mirroring the compiled-propagator reuse of
        the dense batched path.
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        generator = as_rng(rng) if rng is not None else self._rng
        hits_before, misses_before = self.cache_hits, self.cache_misses
        mark = telemetry.clock_mark()
        results = [
            self.run(circuit, shots=shots, initial_state=initial_state, rng=generator)
            for circuit in circuits
        ]
        telemetry.record_span(
            "sim.run_batch",
            "sim",
            start=mark,
            attributes={
                "method": "stabilizer_batch",
                "circuits": len(results),
                "cache_hits": self.cache_hits - hits_before,
                "cache_misses": self.cache_misses - misses_before,
            },
        )
        return BatchResult(
            results=results,
            shots=shots,
            metadata={
                "method": "stabilizer_batch",
                "noise_model": None if self._noise_model is None else self._noise_model.name,
                "cache_hits": self.cache_hits - hits_before,
                "cache_misses": self.cache_misses - misses_before,
            },
        )

    def final_tableau(self, circuit: QuantumCircuit) -> CliffordTableau:
        """Tableau after a measurement- and reset-free Clifford circuit."""
        self._require_clifford(circuit)
        tableau = CliffordTableau(circuit.num_qubits)
        for instruction in circuit.instructions:
            if instruction.kind == "barrier":
                continue
            if instruction.kind != "gate":
                raise SimulationError(
                    "final_tableau requires a measurement- and reset-free circuit"
                )
            tableau.apply_gate(
                instruction.name, instruction.qubits, instruction.repetitions
            )
        return tableau

    # -- eligibility --------------------------------------------------------------------
    @staticmethod
    def _require_clifford(circuit: QuantumCircuit) -> None:
        for instruction in circuit.instructions:
            if instruction.kind == "gate" and instruction.name not in CLIFFORD_GATE_NAMES:
                raise SimulationError(
                    f"gate {instruction.name!r} is not Clifford; use "
                    "repro.quantum.dispatch to route such circuits to a dense simulator"
                )

    def _noise_is_pauli(self, circuit: QuantumCircuit) -> dict:
        """Pauli mixtures of every error the noise model attaches to *circuit*.

        Returns a mapping ``id(error) -> (labels, probabilities)`` and raises
        :class:`SimulationError` when any attached error is not a Pauli
        mixture (the dispatcher filters those to the dense backend).
        """
        from repro.quantum.dispatch import pauli_mixture

        mixtures: dict[int, tuple] = {}
        if self._noise_model is None:
            return mixtures
        for instruction in circuit.instructions:
            if instruction.kind != "gate":
                continue
            for error in self._noise_model.errors_for(
                instruction.name, instruction.qubits
            ):
                if id(error) in mixtures:
                    continue
                mixture = pauli_mixture(error.channel)
                if mixture is None:
                    raise SimulationError(
                        f"error {error.name!r} on gate {instruction.name!r} is not a "
                        "Pauli channel; the stabilizer backend cannot apply it"
                    )
                labels = tuple(mixture)
                probs = tuple(mixture[label] for label in labels)
                mixtures[id(error)] = (labels, probs)
        return mixtures

    # -- analytic path -------------------------------------------------------------------
    def _analytic(self, circuit: QuantumCircuit, allow_fail: bool):
        """Exact outcome distribution of *circuit*, or ``None`` if out of envelope."""
        if not measurements_are_terminal(circuit):
            if allow_fail:
                return None
            raise SimulationError(
                "the analytic stabilizer path requires terminal measurements"
            )
        measure_map: dict[int, int] = {}
        for instruction in circuit.instructions:
            if instruction.kind == "measure":
                for qubit, clbit in zip(instruction.qubits, instruction.clbits):
                    measure_map[qubit] = clbit
        measured_qubits = sorted(measure_map)
        # Strict ">" keeps the documented bound inclusive: exactly
        # ANALYTIC_MAX_MEASURED_QUBITS measured qubits stays analytic.
        if len(measured_qubits) > ANALYTIC_MAX_MEASURED_QUBITS:
            return None

        token = _noise_token(self._noise_model)
        cacheable = self._noise_model is None or token is not None
        key = (circuit_structure_key(circuit), token) if cacheable else None
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1

        distribution = self._compute_distribution(circuit, measured_qubits, measure_map)
        if distribution is None:
            return None
        if key is not None:
            self._cache[key] = distribution
            while len(self._cache) > self._cache_max:
                self._cache.popitem(last=False)
        return distribution

    def _compute_distribution(
        self,
        circuit: QuantumCircuit,
        measured_qubits: list[int],
        measure_map: dict[int, int],
    ):
        """One symbolic tableau pass + exact Pauli-noise convolution."""
        tableau = CliffordTableau(circuit.num_qubits, track_symbols=True)
        forms: dict[int, tuple[int, int]] = {}
        for instruction in circuit.instructions:
            if instruction.kind == "barrier":
                continue
            if instruction.kind == "gate":
                tableau.apply_gate(
                    instruction.name, instruction.qubits, instruction.repetitions
                )
            elif instruction.kind == "reset":
                tableau.reset_symbolic(instruction.qubits[0])
            elif instruction.kind == "measure":
                for qubit in instruction.qubits:
                    forms[qubit] = tableau.measure_symbolic(qubit)
            # Strict ">": exactly ANALYTIC_MAX_SYMBOLS symbols stays analytic.
            if tableau.num_symbols > ANALYTIC_MAX_SYMBOLS:
                return None

        probabilities = self._enumerate_distribution(
            [forms[qubit] for qubit in measured_qubits], tableau.num_symbols
        )
        if self._noise_model is not None:
            probabilities = self._convolve_noise(
                circuit, measured_qubits, probabilities
            )
        return _AnalyticDistribution(
            probabilities=probabilities,
            measured_qubits=tuple(measured_qubits),
            measure_map=dict(measure_map),
            num_clbits=circuit.num_clbits,
        )

    @staticmethod
    def _enumerate_distribution(
        forms: Sequence[tuple[int, int]], num_symbols: int
    ) -> np.ndarray:
        """Probability vector over measured-qubit bitstrings from affine forms.

        Outcomes are uniform over the affine subspace traced out by the
        symbol vector; every entry is an exact dyadic rational, so the
        resulting float64 vector is exact.
        """
        m = len(forms)
        probabilities = np.zeros(2**m, dtype=float)
        if m == 0:
            return probabilities
        r = num_symbols
        assignments = (np.arange(2**r, dtype=np.int64)[:, None] >> np.arange(r)) & 1
        indices = np.zeros(2**r, dtype=np.int64)
        for position, (constant, mask) in enumerate(forms):
            weight = 1 << (m - 1 - position)
            if r:
                mask_bits = (mask >> np.arange(r)) & 1
                bits = (assignments @ mask_bits) % 2
                bits ^= constant
            else:
                bits = np.full(1, constant, dtype=np.int64)
            indices += bits * weight
        np.add.at(probabilities, indices, 1.0 / (1 << r))
        return probabilities

    def _convolve_noise(
        self,
        circuit: QuantumCircuit,
        measured_qubits: list[int],
        probabilities: np.ndarray,
    ) -> np.ndarray:
        """Fold every Pauli-noise insertion into the exact distribution.

        Each error component, conjugated through the rest of the circuit,
        acts on the counts only through the X-mask it lands on the measured
        qubits; independent channels therefore XOR-convolve.  The combined
        convolution is evaluated in the Walsh–Hadamard domain, where an
        η-fold repeat of one insertion is a pointwise power — the stabilizer
        analogue of the dense path's ``matrix_power`` run compression.
        """
        mixtures = self._noise_is_pauli(circuit)
        if not mixtures:
            return probabilities
        m = len(measured_qubits)
        qubit_weight = {
            qubit: 1 << (m - 1 - position)
            for position, qubit in enumerate(measured_qubits)
        }
        suffix = _SuffixPauliMap(circuit.num_qubits)
        spectrum = np.ones(2**m, dtype=float)
        size = float(2**m)

        def insertion_spectrum(instruction) -> np.ndarray:
            combined = np.ones(2**m, dtype=float)
            for error in self._noise_model.errors_for(
                instruction.name, instruction.qubits
            ):
                labels, probs = mixtures[id(error)]
                if error.num_qubits == len(instruction.qubits):
                    applications = [list(instruction.qubits)]
                elif error.num_qubits == 1:
                    applications = [[qubit] for qubit in instruction.qubits]
                else:
                    raise SimulationError(
                        f"error on {error.num_qubits} qubits cannot be applied to "
                        f"a {len(instruction.qubits)}-qubit instruction"
                    )
                for qubits in applications:
                    distribution = np.zeros(2**m, dtype=float)
                    for label, prob in zip(labels, probs):
                        x_mask = suffix.final_x_mask(label, qubits)
                        index = 0
                        for qubit in np.flatnonzero(x_mask):
                            weight = qubit_weight.get(int(qubit))
                            if weight is not None:
                                index ^= weight
                        distribution[index] += prob
                    combined = combined * _walsh_hadamard(distribution)
            return combined

        for instruction in reversed(circuit.instructions):
            if instruction.kind == "barrier" or instruction.kind == "measure":
                continue
            if instruction.kind == "reset":
                suffix.prepend_reset(instruction.qubits[0])
                continue
            reps = instruction.repetitions
            has_errors = bool(
                self._noise_model.errors_for(instruction.name, instruction.qubits)
            )
            if not has_errors:
                if suffix.prepend(instruction.name, instruction.qubits):
                    for _ in range(reps - 1):
                        suffix.prepend(instruction.name, instruction.qubits)
                continue
            if instruction.name in ("id", "x", "y", "z"):
                # These gates fix the suffix map, so every repetition shares
                # one insertion spectrum: raise it to the run length
                # pointwise (the stabilizer analogue of ``matrix_power``).
                spectrum = spectrum * insertion_spectrum(instruction) ** reps
            else:
                for _ in range(reps):
                    spectrum = spectrum * insertion_spectrum(instruction)
                    suffix.prepend(instruction.name, instruction.qubits)

        noisy = _walsh_hadamard(_walsh_hadamard(probabilities) * spectrum) / size
        noisy = np.clip(noisy, 0.0, None)
        total = noisy.sum()
        if total <= 0:
            raise SimulationError("Pauli-noise convolution produced an empty distribution")
        return noisy / total

    def _sample_analytic(
        self,
        distribution: _AnalyticDistribution,
        shots: int,
        generator: np.random.Generator,
    ) -> SimulationResult:
        """Sample counts from the exact distribution (dense-identical contract)."""
        if not distribution.measure_map:
            return SimulationResult(
                counts={}, shots=0, metadata=self._metadata("analytic")
            )
        probabilities = distribution.probabilities
        if self._noise_model is not None and self._noise_model.has_readout_error():
            probabilities = self._noise_model.apply_readout_errors(
                probabilities, distribution.measured_qubits
            )
            probabilities = renormalize_readout_probabilities(probabilities)
        samples = generator.multinomial(shots, probabilities)
        counts: dict[str, int] = {}
        width = len(distribution.measured_qubits)
        for index, count in enumerate(samples):
            if count == 0:
                continue
            outcome = format(index, f"0{width}b")
            values = {
                distribution.measure_map[qubit]: int(bit)
                for qubit, bit in zip(distribution.measured_qubits, outcome)
            }
            key = _format_clbits(values, distribution.num_clbits)
            counts[key] = counts.get(key, 0) + int(count)
        return SimulationResult(
            counts=counts, shots=shots, metadata=self._metadata("analytic")
        )

    # -- trajectory path -----------------------------------------------------------------
    def _run_trajectories(
        self, circuit: QuantumCircuit, shots: int, generator: np.random.Generator
    ) -> SimulationResult:
        """Per-shot Monte Carlo on the tableau with sampled Pauli errors.

        One Pauli realisation is drawn per noise application per shot; with a
        readout-error model each measured bit is additionally flipped with
        its assignment probability.  This path is statistically equivalent to
        the analytic one (chi-squared-tested by the conformance suite) but
        consumes RNG per shot, so it makes no bit-parity claims.
        """
        mixtures = self._noise_is_pauli(circuit)
        noise_model = self._noise_model
        counts: dict[str, int] = {}
        has_measurements = circuit.has_measurements()
        for _ in range(shots):
            tableau = CliffordTableau(circuit.num_qubits)
            clbit_values: dict[int, int] = {}
            for instruction in circuit.instructions:
                if instruction.kind == "barrier":
                    continue
                if instruction.kind == "gate":
                    if instruction.repetitions > 1 and mixtures:
                        errors = noise_model.errors_for(
                            instruction.name, instruction.qubits
                        )
                    else:
                        errors = None
                    if errors:
                        for _ in range(instruction.repetitions):
                            tableau.apply_gate(instruction.name, instruction.qubits)
                            self._apply_sampled_errors(
                                tableau, instruction, mixtures, generator
                            )
                    else:
                        tableau.apply_gate(
                            instruction.name,
                            instruction.qubits,
                            instruction.repetitions,
                        )
                        if mixtures:
                            self._apply_sampled_errors(
                                tableau, instruction, mixtures, generator
                            )
                elif instruction.kind == "reset":
                    tableau.reset(instruction.qubits[0], generator)
                elif instruction.kind == "measure":
                    for qubit, clbit in zip(instruction.qubits, instruction.clbits):
                        bit = tableau.measure(qubit, generator)
                        if noise_model is not None:
                            readout = noise_model.readout_error_for(qubit)
                            if readout is not None:
                                flip = (
                                    readout.prob_1_given_0
                                    if bit == 0
                                    else readout.prob_0_given_1
                                )
                                if flip > 0 and generator.random() < flip:
                                    bit ^= 1
                        clbit_values[clbit] = bit
            if has_measurements:
                key = _format_clbits(clbit_values, circuit.num_clbits)
                counts[key] = counts.get(key, 0) + 1
        if not has_measurements:
            return SimulationResult(
                counts={}, shots=0, metadata=self._metadata("trajectory")
            )
        return SimulationResult(
            counts=counts, shots=shots, metadata=self._metadata("trajectory")
        )

    def _apply_sampled_errors(
        self, tableau: CliffordTableau, instruction, mixtures: dict, generator
    ) -> None:
        """Draw one Pauli realisation from each attached error and apply it."""
        for error in self._noise_model.errors_for(
            instruction.name, instruction.qubits
        ):
            labels, probs = mixtures[id(error)]
            if error.num_qubits == len(instruction.qubits):
                applications = [list(instruction.qubits)]
            else:
                applications = [[qubit] for qubit in instruction.qubits]
            for qubits in applications:
                draw = generator.random()
                cumulative = 0.0
                chosen = labels[-1]
                for label, prob in zip(labels, probs):
                    cumulative += prob
                    if draw < cumulative:
                        chosen = label
                        break
                tableau.apply_pauli(chosen, qubits)

    def _metadata(self, mode: str) -> dict:
        return {
            "method": "stabilizer",
            "stabilizer_mode": mode,
            "noise_model": None if self._noise_model is None else self._noise_model.name,
        }
