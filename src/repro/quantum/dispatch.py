"""Static circuit/noise analysis and simulator-backend dispatch.

One question decides whether a workload may take the stabilizer fast path
(:mod:`repro.quantum.stabilizer`) or must pay for dense simulation: *is the
circuit Clifford and is every noise process a Pauli channel?*  This module
answers it statically — before anything is simulated — and routes
accordingly:

* :func:`circuit_is_clifford` / :func:`pauli_mixture` /
  :func:`noise_model_is_pauli` — the individual eligibility predicates.
  ``pauli_mixture`` recognises any :class:`~repro.quantum.channels.KrausChannel`
  whose operators are all proportional to Pauli strings (depolarizing,
  bit/phase flip, general Pauli channels …) and returns the underlying
  probability mixture; channels with coherent or damping components
  (e.g. thermal relaxation) return ``None`` and force the dense path.
* :func:`select_backend` — the routing decision for a batch of circuits
  under a requested backend (``"auto"``, ``"dense"`` or ``"stabilizer"``).
  ``auto`` never changes semantics: it picks the tableau only when the
  result is provably distribution-identical to the dense simulators.
  Requesting ``"stabilizer"`` outright raises on ineligible input instead
  of silently degrading.
* :func:`pauli_twirl_channel` / :func:`pauli_twirl_noise_model` — explicit,
  opt-in Pauli-twirling approximation: projects a channel onto its
  Pauli-diagonal part (the standard PTA), making non-Pauli device models
  stabilizer-eligible at documented accuracy cost.  ``auto`` never applies
  this implicitly.
* :func:`protocol_eligibility` — the session-level analysis used by
  :class:`~repro.protocol.config.ProtocolConfig` when a user forces
  ``simulator_backend="stabilizer"``: every channel touched by a protocol
  session (transmission, distribution, memory decoherence, source
  preparation noise) must be Pauli-diagonal.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.channels import KrausChannel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise_model import NoiseModel, QuantumError
from repro.quantum.operators import I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX, kron_all
from repro.telemetry import runtime as telemetry
from repro.utils.logging import get_logger

__all__ = [
    "BACKEND_CHOICES",
    "CLIFFORD_GATE_NAMES",
    "DispatchDecision",
    "ProtocolEligibility",
    "circuit_is_clifford",
    "channel_is_pauli",
    "noise_model_is_pauli",
    "pauli_mixture",
    "pauli_twirl_channel",
    "pauli_twirl_noise_model",
    "protocol_eligibility",
    "select_backend",
]

#: The backend names every ``simulator_backend`` knob accepts.
BACKEND_CHOICES = ("auto", "dense", "stabilizer", "stabilizer_batched")

#: The two stabilizer-engine flavours (serial CHP and vectorized batch).
_STABILIZER_BACKENDS = ("stabilizer", "stabilizer_batched")

#: Gate names the stabilizer tableau implements (single source of truth is
#: the engine; re-exported here because eligibility analysis is this
#: module's job).
from repro.quantum.stabilizer import CLIFFORD_GATE_NAMES  # noqa: E402

_PAULI_1Q = {"I": I_MATRIX, "X": X_MATRIX, "Y": Y_MATRIX, "Z": Z_MATRIX}

_ATOL = 1e-9

_log = get_logger("quantum.dispatch")


def _decide(requested: str, backend: str, reason: str) -> DispatchDecision:
    """Build a decision, counting it and logging auto->dense fallbacks."""
    telemetry.counter_inc("dispatch.decisions", requested=requested, backend=backend)
    if requested == "auto" and backend == "dense":
        _log.debug(
            "dispatch fallback to dense (trace_id=%s): %s",
            telemetry.current_trace_id(),
            reason,
        )
    return DispatchDecision(backend, reason)


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of a backend-selection analysis.

    Attributes
    ----------
    backend:
        ``"stabilizer"``, ``"stabilizer_batched"`` or ``"dense"`` — the
        resolved execution backend.
    reason:
        Human-readable explanation (surfaced in result/job metadata so a
        user can see *why* a workload did or did not take the fast path).
    """

    backend: str
    reason: str

    @property
    def use_stabilizer(self) -> bool:
        """True when a tableau backend (serial or batched) was selected."""
        return self.backend in _STABILIZER_BACKENDS


def _pauli_strings(num_qubits: int) -> Iterable[tuple[str, np.ndarray]]:
    """All Pauli strings on *num_qubits* qubits as (label, matrix) pairs."""
    for chars in itertools.product("IXYZ", repeat=num_qubits):
        label = "".join(chars)
        yield label, kron_all([_PAULI_1Q[ch] for ch in chars])


def pauli_mixture(
    channel: KrausChannel, atol: float = _ATOL
) -> dict[str, float] | None:
    """The Pauli probability mixture of *channel*, or ``None`` if it has none.

    A channel is a (stochastic) Pauli channel exactly when every Kraus
    operator is proportional to a Pauli string; the squared magnitudes of
    the proportionality constants are then the mixture probabilities.
    Returns a ``label -> probability`` dict over ``channel.num_qubits``-char
    Pauli labels (zero-probability components dropped, duplicates merged),
    or ``None`` for channels with coherent or non-unital components —
    amplitude damping, thermal relaxation, arbitrary unitaries — which the
    stabilizer backend cannot execute.

    Channels on more than three qubits are conservatively reported as
    non-Pauli (the recognition scan is exponential in qubit count and no
    workload in this repository attaches wider errors).
    """
    if channel.num_qubits > 3:
        return None
    dim = channel.dim
    mixture: dict[str, float] = {}
    total = 0.0
    paulis = list(_pauli_strings(channel.num_qubits))
    for kraus in channel.kraus_operators:
        matched = False
        for label, pauli in paulis:
            coefficient = np.trace(pauli.conj().T @ kraus) / dim
            if abs(coefficient) <= atol:
                continue
            if np.allclose(kraus, coefficient * pauli, atol=atol):
                probability = float(abs(coefficient) ** 2)
                mixture[label] = mixture.get(label, 0.0) + probability
                total += probability
                matched = True
            break
        if not matched:
            if np.allclose(kraus, 0.0, atol=atol):
                continue
            return None
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        return None
    return mixture


def channel_is_pauli(channel: KrausChannel, atol: float = _ATOL) -> bool:
    """True if *channel* is a stochastic Pauli channel (see :func:`pauli_mixture`)."""
    return pauli_mixture(channel, atol=atol) is not None


def circuit_is_clifford(circuit: QuantumCircuit) -> bool:
    """True if every gate of *circuit* is in the tableau's Clifford set.

    The check is by gate name: rotation gates at Clifford angles and
    anonymous ``unitary`` matrices that happen to be Clifford are *not*
    recognised — they run on the dense path (a conservative, never-wrong
    answer).
    """
    return all(
        instruction.kind != "gate" or instruction.name in CLIFFORD_GATE_NAMES
        for instruction in circuit.instructions
    )


def noise_model_is_pauli(
    noise_model: NoiseModel | None, circuit: QuantumCircuit | None = None
) -> bool:
    """True if every relevant gate error of *noise_model* is a Pauli mixture.

    With a *circuit*, only errors that can actually fire on its instructions
    are checked (a model may carry non-Pauli errors on gates the circuit
    never uses); without one, every attached error must be Pauli.  Readout
    errors never disqualify — they are classical assignment flips the
    stabilizer backend applies exactly as the dense path does.
    """
    if noise_model is None:
        return True
    if circuit is None:
        return all(
            pauli_mixture(error.channel) is not None
            for _, _, error in noise_model.iter_errors()
        )
    checked: set[int] = set()
    for instruction in circuit.instructions:
        if instruction.kind != "gate":
            continue
        for error in noise_model.errors_for(instruction.name, instruction.qubits):
            if id(error) in checked:
                continue
            checked.add(id(error))
            if pauli_mixture(error.channel) is None:
                return False
    return True


def select_backend(
    requested: str,
    circuits: "QuantumCircuit | Sequence[QuantumCircuit]",
    noise_model: NoiseModel | None = None,
    batch: bool = False,
) -> DispatchDecision:
    """Resolve a requested backend for a (circuit batch, noise model) pair.

    ``"dense"`` is always honoured.  ``"auto"`` picks a stabilizer backend
    exactly when every circuit is Clifford and every noise error that can
    fire on them is a Pauli mixture — the class on which the tableau is
    provably distribution-identical to the dense simulators — and falls
    back to dense otherwise; with ``batch=True`` (a whole-batch submission,
    i.e. a ``run_batch`` call) the vectorized ``"stabilizer_batched"``
    engine is chosen over the serial one, since both are exact on this
    class and the batched engine amortises per-circuit work.
    ``"stabilizer"`` / ``"stabilizer_batched"`` raise
    :class:`~repro.exceptions.SimulationError` on ineligible input so that
    misconfiguration fails loudly rather than silently approximating.
    """
    if requested not in BACKEND_CHOICES:
        raise SimulationError(
            f"unknown simulator backend {requested!r}; choose from {BACKEND_CHOICES}"
        )
    if requested == "dense":
        return _decide(requested, "dense", "dense backend requested")
    if isinstance(circuits, QuantumCircuit):
        circuits = [circuits]
    forced_stabilizer = requested in _STABILIZER_BACKENDS

    non_clifford = next(
        (circuit for circuit in circuits if not circuit_is_clifford(circuit)), None
    )
    if non_clifford is not None:
        reason = f"circuit {non_clifford.name!r} contains non-Clifford gates"
        if forced_stabilizer:
            raise SimulationError(
                f"simulator_backend={requested!r} was forced but {reason}"
            )
        return _decide(requested, "dense", reason)

    non_pauli = next(
        (
            circuit
            for circuit in circuits
            if not noise_model_is_pauli(noise_model, circuit)
        ),
        None,
    )
    if non_pauli is not None:
        reason = (
            f"noise model {getattr(noise_model, 'name', 'noise_model')!r} attaches "
            f"non-Pauli errors to circuit {non_pauli.name!r}"
        )
        if forced_stabilizer:
            raise SimulationError(
                f"simulator_backend={requested!r} was forced but {reason}; "
                "consider pauli_twirl_noise_model() for an explicit approximation"
            )
        return _decide(requested, "dense", reason)

    if requested == "stabilizer_batched" or (requested == "auto" and batch):
        return _decide(
            requested,
            "stabilizer_batched",
            "Clifford circuits with Pauli-diagonal noise (vectorized batch)",
        )
    return _decide(
        requested, "stabilizer", "Clifford circuits with Pauli-diagonal noise"
    )


# -- Pauli twirling (explicit approximation) ----------------------------------------------
def pauli_twirl_channel(channel: KrausChannel) -> KrausChannel:
    """Project *channel* onto its Pauli-diagonal part (Pauli twirling).

    The twirled channel applies Pauli string ``P`` with probability
    ``p_P = sum_k |tr(P† K_k)|² / d²`` — the standard Pauli-twirling
    approximation (PTA).  It is exact for channels that already are Pauli
    mixtures and an approximation otherwise (coherent and damping
    components are discarded; the diagonal of the chi matrix is kept).
    This is an *opt-in* accuracy trade: ``auto`` dispatch never twirls.
    """
    if channel.num_qubits > 3:
        raise SimulationError("pauli_twirl_channel supports at most three qubits")
    dim = channel.dim
    kraus: list[np.ndarray] = []
    for label, pauli in _pauli_strings(channel.num_qubits):
        probability = sum(
            float(abs(np.trace(pauli.conj().T @ k) / dim) ** 2)
            for k in channel.kraus_operators
        )
        if probability > 0:
            kraus.append(math.sqrt(probability) * pauli)
    twirled = KrausChannel(kraus, name=f"pauli_twirl({channel.name})", validate=False)
    return twirled


def pauli_twirl_noise_model(noise_model: NoiseModel) -> NoiseModel:
    """A copy of *noise_model* with every gate error Pauli-twirled.

    Readout errors are preserved unchanged (they are already classical).
    The result always satisfies :func:`noise_model_is_pauli`, so workloads
    under it take the stabilizer fast path — at the documented accuracy
    cost of discarding each channel's off-diagonal (coherent/damping)
    action.
    """
    twirled = NoiseModel(name=f"pauli_twirl({noise_model.name})")
    for gate_name, qubits, error in noise_model.iter_errors():
        replacement = QuantumError(
            pauli_twirl_channel(error.channel), name=f"pauli_twirl({error.name})"
        )
        if qubits is None:
            twirled.add_all_qubit_error(replacement, gate_name)
        else:
            twirled.add_qubit_error(replacement, gate_name, qubits)
    for qubit, readout in noise_model.iter_readout_errors():
        twirled.add_readout_error(readout, qubit)
    return twirled


# -- protocol-session eligibility ----------------------------------------------------------
@dataclass(frozen=True)
class ProtocolEligibility:
    """Stabilizer-structure eligibility of one protocol configuration.

    Attributes
    ----------
    eligible:
        True when every quantum process of a session is Pauli-diagonal on
        Bell-pair states — transmission channel, distribution channel,
        memory decoherence and source preparation noise.
    reason:
        The first disqualifying process, or a confirmation string.
    """

    eligible: bool
    reason: str


def protocol_eligibility(config) -> ProtocolEligibility:
    """Analyse a :class:`~repro.protocol.config.ProtocolConfig` statically.

    Used when a session forces ``simulator_backend="stabilizer"``: the
    session's pair states then remain Bell-diagonal throughout, which is the
    structure the protocol fast paths exploit.  ``auto`` does not need this
    check (its memoised engines are exact for arbitrary channels); the
    analysis exists so that a forced ``stabilizer`` request fails loudly on
    non-Pauli physics instead of implying a guarantee it cannot keep.
    """
    source = config.source
    if getattr(source, "override", None) is not None:
        return ProtocolEligibility(False, "source emission is attacker-controlled")
    preparation = getattr(source, "preparation_noise", None)
    if preparation is not None and not channel_is_pauli(preparation):
        return ProtocolEligibility(
            False, f"source preparation noise {preparation.name!r} is not Pauli"
        )
    for attribute in ("channel", "distribution_channel"):
        channel = getattr(config, attribute)
        if channel is None:
            continue
        try:
            single_use = channel.single_use_channel()
        except NotImplementedError:
            return ProtocolEligibility(
                False, f"{attribute} {channel.name!r} exposes no single-use map"
            )
        if not channel_is_pauli(single_use):
            return ProtocolEligibility(
                False, f"{attribute} {channel.name!r} is not a Pauli channel"
            )
    decoherence = config.memory_decoherence
    if decoherence is not None and not channel_is_pauli(decoherence):
        return ProtocolEligibility(
            False, f"memory decoherence {decoherence.name!r} is not Pauli"
        )
    return ProtocolEligibility(True, "all session processes are Pauli-diagonal")
