"""Bell states, Bell-basis utilities and the CHSH polynomial.

The device-independent security of the UA-DI-QSDC protocol rests on the CHSH
inequality: honest executions on ``|Φ+⟩`` pairs achieve
``S = 2*sqrt(2) - eps > 2`` while any eavesdropping strategy that breaks the
entanglement (intercept-and-resend, man-in-the-middle, entangle-and-measure)
pushes ``S`` to or below the classical bound of 2.  This module provides the
Bell states themselves, the CHSH observable for arbitrary equatorial
measurement angles, and analytic CHSH values used as ground truth by the
sampled estimates in :mod:`repro.protocol.chsh`.
"""

from __future__ import annotations

import math
from enum import Enum

import numpy as np

from repro.exceptions import DimensionError
from repro.quantum.density import DensityMatrix
from repro.quantum.operators import Operator, X_MATRIX, Y_MATRIX
from repro.quantum.states import Statevector

__all__ = [
    "BellState",
    "bell_state",
    "bell_states",
    "bell_projector",
    "equatorial_observable_matrix",
    "correlation",
    "chsh_operator",
    "chsh_value",
    "CLASSICAL_CHSH_BOUND",
    "TSIRELSON_BOUND",
]

#: Local-hidden-variable (classical) bound on the CHSH polynomial.
CLASSICAL_CHSH_BOUND = 2.0

#: Quantum (Tsirelson) bound on the CHSH polynomial.
TSIRELSON_BOUND = 2.0 * math.sqrt(2.0)


class BellState(Enum):
    """The four Bell states (EPR pairs)."""

    PHI_PLUS = "phi_plus"
    PHI_MINUS = "phi_minus"
    PSI_PLUS = "psi_plus"
    PSI_MINUS = "psi_minus"

    @property
    def label(self) -> str:
        """Conventional ket label, e.g. ``"|Φ+⟩"``."""
        return {
            BellState.PHI_PLUS: "|Φ+⟩",
            BellState.PHI_MINUS: "|Φ-⟩",
            BellState.PSI_PLUS: "|Ψ+⟩",
            BellState.PSI_MINUS: "|Ψ-⟩",
        }[self]


_SQRT_HALF = 1.0 / math.sqrt(2.0)

_BELL_VECTORS: dict[BellState, np.ndarray] = {
    BellState.PHI_PLUS: np.array([_SQRT_HALF, 0, 0, _SQRT_HALF], dtype=complex),
    BellState.PHI_MINUS: np.array([_SQRT_HALF, 0, 0, -_SQRT_HALF], dtype=complex),
    BellState.PSI_PLUS: np.array([0, _SQRT_HALF, _SQRT_HALF, 0], dtype=complex),
    BellState.PSI_MINUS: np.array([0, _SQRT_HALF, -_SQRT_HALF, 0], dtype=complex),
}


def bell_state(which: BellState = BellState.PHI_PLUS) -> Statevector:
    """Return the requested Bell state as a two-qubit :class:`Statevector`."""
    if not isinstance(which, BellState):
        raise DimensionError(f"expected a BellState, got {which!r}")
    return Statevector(_BELL_VECTORS[which].copy(), validate=False)


def bell_states() -> dict[BellState, Statevector]:
    """All four Bell states, keyed by :class:`BellState`."""
    return {which: bell_state(which) for which in BellState}


def bell_projector(which: BellState) -> Operator:
    """Rank-one projector onto the requested Bell state."""
    vector = _BELL_VECTORS[which]
    return Operator(np.outer(vector, vector.conj()))


def equatorial_observable_matrix(theta: float, conjugate: bool = False) -> np.ndarray:
    """Observable ``cos(theta)·X ± sin(theta)·Y`` measured in the paper's DI check.

    The paper writes both parties' bases as ``|0⟩ ± e^{i·theta}|1⟩``; with the
    ``+`` phase convention the observable is ``cos(theta)·X + sin(theta)·Y``.
    Passing ``conjugate=True`` flips the sign of the Y component, which is the
    convention under which the paper's angle choices achieve ``S = 2*sqrt(2)``
    on ``|Φ+⟩`` (see DESIGN.md, "Phase convention").
    """
    sign = -1.0 if conjugate else 1.0
    return math.cos(theta) * X_MATRIX + sign * math.sin(theta) * Y_MATRIX


def correlation(
    state: "Statevector | DensityMatrix",
    alice_angle: float,
    bob_angle: float,
    conjugate_bob: bool = True,
) -> float:
    """Analytic correlation ``E(a, b) = <A(a) ⊗ B(b)>`` on a two-qubit state."""
    observable = Operator(
        np.kron(
            equatorial_observable_matrix(alice_angle),
            equatorial_observable_matrix(bob_angle, conjugate=conjugate_bob),
        )
    )
    if isinstance(state, DensityMatrix):
        return float(np.real(state.expectation_value(observable)))
    return float(np.real(Statevector(state).expectation_value(observable)))


def chsh_operator(
    alice_angles: tuple[float, float],
    bob_angles: tuple[float, float],
    conjugate_bob: bool = True,
) -> Operator:
    """The CHSH observable ``A1⊗B1 + A1⊗B2 + A2⊗B1 − A2⊗B2``.

    ``alice_angles`` and ``bob_angles`` are the equatorial measurement angles
    of settings (1, 2) for each party.
    """
    a1, a2 = alice_angles
    b1, b2 = bob_angles
    alice_1 = equatorial_observable_matrix(a1)
    alice_2 = equatorial_observable_matrix(a2)
    bob_1 = equatorial_observable_matrix(b1, conjugate=conjugate_bob)
    bob_2 = equatorial_observable_matrix(b2, conjugate=conjugate_bob)
    matrix = (
        np.kron(alice_1, bob_1)
        + np.kron(alice_1, bob_2)
        + np.kron(alice_2, bob_1)
        - np.kron(alice_2, bob_2)
    )
    return Operator(matrix)


def chsh_value(
    state: "Statevector | DensityMatrix",
    alice_angles: tuple[float, float] = (0.0, math.pi / 2),
    bob_angles: tuple[float, float] = (math.pi / 4, -math.pi / 4),
    conjugate_bob: bool = True,
) -> float:
    """Analytic CHSH value of a two-qubit state for the given settings.

    The defaults are the paper's settings (Alice ``A1=0, A2=π/2``; Bob
    ``B1=π/4, B2=−π/4``) under the convention that yields ``2*sqrt(2)`` on
    ``|Φ+⟩``.
    """
    operator = chsh_operator(alice_angles, bob_angles, conjugate_bob=conjugate_bob)
    if isinstance(state, DensityMatrix):
        value = state.expectation_value(operator)
    else:
        value = Statevector(state).expectation_value(operator)
    return float(np.real(value))
