"""Matrix operators on qubit registers.

:class:`Operator` wraps a complex matrix acting on ``k`` qubits and provides
composition, tensor products, embedding into larger registers, and the
standard checks (unitarity, hermiticity).  The module also exports the Pauli
matrices as ready-made operators, since the UA-DI-QSDC protocol's dense
coding is phrased entirely in terms of ``{I, sigma_z, sigma_x, i*sigma_y}``.

The qubit order convention is big-endian (qubit 0 is the most significant bit
of the basis-state index), matching :mod:`repro.quantum.states`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError, NonUnitaryError

__all__ = [
    "Operator",
    "I_MATRIX",
    "X_MATRIX",
    "Y_MATRIX",
    "Z_MATRIX",
    "H_MATRIX",
    "S_MATRIX",
    "T_MATRIX",
    "PAULI_I",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "PAULI_MATRICES",
    "is_unitary_matrix",
    "is_hermitian_matrix",
    "kron_all",
    "embed_operator",
]

_ATOL = 1e-10

I_MATRIX = np.eye(2, dtype=complex)
X_MATRIX = np.array([[0, 1], [1, 0]], dtype=complex)
Y_MATRIX = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z_MATRIX = np.array([[1, 0], [0, -1]], dtype=complex)
H_MATRIX = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
S_MATRIX = np.array([[1, 0], [0, 1j]], dtype=complex)
T_MATRIX = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)

#: Mapping from single-character Pauli label to its 2x2 matrix.
PAULI_MATRICES: dict[str, np.ndarray] = {
    "I": I_MATRIX,
    "X": X_MATRIX,
    "Y": Y_MATRIX,
    "Z": Z_MATRIX,
}


def is_unitary_matrix(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Return True if *matrix* is unitary within absolute tolerance *atol*."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def is_hermitian_matrix(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Return True if *matrix* equals its own conjugate transpose."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, in the given (big-endian) order."""
    if not matrices:
        return np.eye(1, dtype=complex)
    result = np.asarray(matrices[0], dtype=complex)
    for matrix in matrices[1:]:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def _num_qubits_from_dim(dim: int, what: str = "operator") -> int:
    n = int(round(math.log2(dim)))
    if 2**n != dim:
        raise DimensionError(f"{what} dimension {dim} is not a power of two")
    return n


def embed_operator(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit *matrix* acting on *qubits* into an *num_qubits* register.

    ``qubits[i]`` is the register qubit on which the i-th tensor factor of
    *matrix* acts.  Returns the full ``2**num_qubits`` square matrix.
    """
    matrix = np.asarray(matrix, dtype=complex)
    k = _num_qubits_from_dim(matrix.shape[0])
    if matrix.shape != (2**k, 2**k):
        raise DimensionError(f"operator must be square, got shape {matrix.shape}")
    if len(qubits) != k:
        raise DimensionError(
            f"operator acts on {k} qubits but {len(qubits)} targets were given"
        )
    if len(set(qubits)) != len(qubits):
        raise DimensionError(f"target qubits must be distinct, got {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise DimensionError(
            f"target qubits {qubits} out of range for a {num_qubits}-qubit register"
        )

    # Reshape the full operator as a 2n-index tensor and contract the gate in.
    full = np.eye(2**num_qubits, dtype=complex)
    full = full.reshape([2] * (2 * num_qubits))
    gate = matrix.reshape([2] * (2 * k))
    # Indices: output indices 0..n-1, input indices n..2n-1.
    # Applying the gate to the *output* side of the identity yields the
    # embedded matrix.
    out_axes = [int(q) for q in qubits]
    gate_in_axes = list(range(k, 2 * k))
    contracted = np.tensordot(gate, full, axes=(gate_in_axes, out_axes))
    # tensordot puts the gate's output axes first; move them back into place.
    contracted = np.moveaxis(contracted, range(k), out_axes)
    return contracted.reshape(2**num_qubits, 2**num_qubits)


class Operator:
    """A linear operator on an n-qubit register.

    Parameters
    ----------
    data:
        A square complex matrix of dimension ``2**n`` for some integer n, or
        another :class:`Operator` to copy.
    """

    __slots__ = ("_matrix", "_num_qubits")

    def __init__(self, data: "np.ndarray | Operator | Sequence[Sequence[complex]]"):
        if isinstance(data, Operator):
            matrix = data._matrix.copy()
        else:
            matrix = np.array(data, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise DimensionError(f"operator must be a square matrix, got {matrix.shape}")
        self._num_qubits = _num_qubits_from_dim(matrix.shape[0])
        self._matrix = matrix

    # -- basic accessors ---------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The underlying complex matrix (a copy is *not* made)."""
        return self._matrix

    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return self._matrix.shape[0]

    # -- predicates --------------------------------------------------------
    def is_unitary(self, atol: float = _ATOL) -> bool:
        """True if the operator is unitary within tolerance."""
        return is_unitary_matrix(self._matrix, atol=atol)

    def is_hermitian(self, atol: float = _ATOL) -> bool:
        """True if the operator is Hermitian within tolerance."""
        return is_hermitian_matrix(self._matrix, atol=atol)

    def require_unitary(self, atol: float = _ATOL) -> "Operator":
        """Return self, raising :class:`NonUnitaryError` if not unitary."""
        if not self.is_unitary(atol=atol):
            raise NonUnitaryError("operator is not unitary within tolerance")
        return self

    # -- algebra -----------------------------------------------------------
    def adjoint(self) -> "Operator":
        """Conjugate transpose."""
        return Operator(self._matrix.conj().T)

    def compose(self, other: "Operator") -> "Operator":
        """Return ``other @ self`` — i.e. apply *self* first, then *other*."""
        other = Operator(other)
        if other.dim != self.dim:
            raise DimensionError(
                f"cannot compose operators of dimensions {self.dim} and {other.dim}"
            )
        return Operator(other._matrix @ self._matrix)

    def tensor(self, other: "Operator") -> "Operator":
        """Kronecker product ``self (x) other`` (self on the higher-order qubits)."""
        other = Operator(other)
        return Operator(np.kron(self._matrix, other._matrix))

    def power(self, exponent: int) -> "Operator":
        """Integer matrix power."""
        return Operator(np.linalg.matrix_power(self._matrix, int(exponent)))

    def scale(self, scalar: complex) -> "Operator":
        """Multiply by a complex scalar (e.g. the ``i`` in ``i*sigma_y``)."""
        return Operator(self._matrix * scalar)

    def expand(self, qubits: Sequence[int], num_qubits: int) -> "Operator":
        """Embed into a larger register; see :func:`embed_operator`."""
        return Operator(embed_operator(self._matrix, qubits, num_qubits))

    def expectation(self, state: np.ndarray) -> complex:
        """``<psi| O |psi>`` for a statevector given as a 1-D array."""
        vec = np.asarray(state, dtype=complex).reshape(-1)
        if vec.shape[0] != self.dim:
            raise DimensionError(
                f"state of dimension {vec.shape[0]} does not match operator dim {self.dim}"
            )
        return complex(vec.conj() @ (self._matrix @ vec))

    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the operator (Hermitian operators get real values)."""
        if self.is_hermitian():
            return np.linalg.eigvalsh(self._matrix)
        return np.linalg.eigvals(self._matrix)

    # -- comparisons and dunder helpers --------------------------------------
    def equiv(self, other: "Operator", up_to_phase: bool = False, atol: float = 1e-8) -> bool:
        """Check (optionally phase-insensitive) equality with another operator."""
        other = Operator(other)
        if other.dim != self.dim:
            return False
        if not up_to_phase:
            return bool(np.allclose(self._matrix, other._matrix, atol=atol))
        # Find the first element with significant magnitude and align phases.
        flat_self = self._matrix.reshape(-1)
        flat_other = other._matrix.reshape(-1)
        idx = int(np.argmax(np.abs(flat_self)))
        if abs(flat_self[idx]) < atol or abs(flat_other[idx]) < atol:
            return bool(np.allclose(self._matrix, other._matrix, atol=atol))
        phase = flat_other[idx] / flat_self[idx]
        phase = phase / abs(phase)
        return bool(np.allclose(self._matrix * phase, other._matrix, atol=atol))

    def __matmul__(self, other: "Operator") -> "Operator":
        """Matrix product ``self @ other`` (apply *other* first)."""
        other = Operator(other)
        if other.dim != self.dim:
            raise DimensionError(
                f"cannot multiply operators of dimensions {self.dim} and {other.dim}"
            )
        return Operator(self._matrix @ other._matrix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operator):
            return NotImplemented
        return self.equiv(other)

    def __hash__(self) -> int:  # Operators are mutable via .matrix; hash by identity.
        return id(self)

    def __repr__(self) -> str:
        return f"Operator(num_qubits={self.num_qubits})"


PAULI_I = Operator(I_MATRIX)
PAULI_X = Operator(X_MATRIX)
PAULI_Y = Operator(Y_MATRIX)
PAULI_Z = Operator(Z_MATRIX)
