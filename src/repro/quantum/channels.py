"""Quantum noise channels in the Kraus (operator-sum) representation.

The NISQ device model and the η-identity-gate quantum channel of the paper
are built from the standard single-qubit channels implemented here:
depolarizing, bit/phase flip, amplitude damping, phase damping and thermal
relaxation (combined T1/T2 decay over a gate duration).  Each factory returns
a :class:`KrausChannel`, which validates the completeness relation
``sum_k K_k† K_k = I`` and knows how to apply itself to density matrices,
compose sequentially and take tensor products.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError, NoiseModelError
from repro.quantum.density import DensityMatrix
from repro.quantum.operators import (
    I_MATRIX,
    X_MATRIX,
    Y_MATRIX,
    Z_MATRIX,
    kron_all,
)

__all__ = [
    "KrausChannel",
    "identity_channel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "bit_phase_flip_channel",
    "pauli_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_channel",
]

_ATOL = 1e-8


class KrausChannel:
    """A completely-positive trace-preserving map given by Kraus operators.

    Parameters
    ----------
    kraus_operators:
        Sequence of equally-shaped square matrices ``K_k`` satisfying
        ``sum_k K_k† K_k = I``.
    name:
        Optional human-readable name used in reprs and noise-model summaries.
    validate:
        If True (default), check the completeness relation.
    """

    __slots__ = ("_kraus", "_num_qubits", "name")

    def __init__(
        self,
        kraus_operators: Sequence[np.ndarray],
        name: str = "kraus",
        validate: bool = True,
    ):
        if not kraus_operators:
            raise NoiseModelError("a channel needs at least one Kraus operator")
        kraus = [np.array(k, dtype=complex) for k in kraus_operators]
        dim = kraus[0].shape[0]
        for k in kraus:
            if k.ndim != 2 or k.shape != (dim, dim):
                raise DimensionError(
                    f"all Kraus operators must be square matrices of dimension {dim}"
                )
        num_qubits = int(round(math.log2(dim)))
        if 2**num_qubits != dim:
            raise DimensionError(f"Kraus dimension {dim} is not a power of two")
        if validate:
            total = sum(k.conj().T @ k for k in kraus)
            if not np.allclose(total, np.eye(dim), atol=1e-6):
                raise NoiseModelError(
                    "Kraus operators do not satisfy the completeness relation"
                )
        self._kraus = kraus
        self._num_qubits = num_qubits
        self.name = name

    # -- accessors -------------------------------------------------------------
    @property
    def kraus_operators(self) -> list[np.ndarray]:
        """The list of Kraus matrices (not copied)."""
        return self._kraus

    @property
    def num_qubits(self) -> int:
        """Number of qubits the channel acts on."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension of the channel input/output."""
        return self._kraus[0].shape[0]

    def is_unital(self, atol: float = _ATOL) -> bool:
        """True if the channel maps the identity to the identity."""
        total = sum(k @ k.conj().T for k in self._kraus)
        return bool(np.allclose(total, np.eye(self.dim), atol=atol))

    # -- algebra ------------------------------------------------------------------
    def apply(
        self, state: DensityMatrix, qubits: Sequence[int] | None = None
    ) -> DensityMatrix:
        """Apply the channel to *state* (optionally on a subset of its qubits)."""
        return state.apply_kraus(self._kraus, qubits)

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """Sequential composition: apply *self* first, then *other*."""
        if other.dim != self.dim:
            raise DimensionError("cannot compose channels of different dimensions")
        kraus = [b @ a for a in self._kraus for b in other._kraus]
        return KrausChannel(kraus, name=f"{other.name}∘{self.name}", validate=False)

    def tensor(self, other: "KrausChannel") -> "KrausChannel":
        """Parallel composition ``self (x) other``."""
        kraus = [np.kron(a, b) for a in self._kraus for b in other._kraus]
        return KrausChannel(kraus, name=f"{self.name}⊗{other.name}", validate=False)

    def expand_to(self, num_qubits: int, qubits: Sequence[int]) -> "KrausChannel":
        """Embed the channel into a larger register acting on *qubits*."""
        from repro.quantum.operators import embed_operator

        kraus = [embed_operator(k, list(qubits), num_qubits) for k in self._kraus]
        return KrausChannel(kraus, name=self.name, validate=False)

    def choi_matrix(self) -> np.ndarray:
        """Return the Choi matrix ``sum_k (I (x) K_k) |Omega><Omega| (I (x) K_k)†``."""
        dim = self.dim
        omega = np.zeros((dim * dim,), dtype=complex)
        for i in range(dim):
            omega[i * dim + i] = 1.0
        omega_proj = np.outer(omega, omega.conj())
        choi = np.zeros((dim * dim, dim * dim), dtype=complex)
        for k in self._kraus:
            lifted = np.kron(np.eye(dim), k)
            choi += lifted @ omega_proj @ lifted.conj().T
        return choi

    def average_gate_fidelity(self) -> float:
        """Average gate fidelity of the channel with respect to the identity.

        Uses ``F_avg = (d * F_pro + 1) / (d + 1)`` where ``F_pro`` is the
        process (entanglement) fidelity ``sum_k |Tr K_k|^2 / d^2``.
        """
        dim = self.dim
        process_fidelity = sum(abs(np.trace(k)) ** 2 for k in self._kraus) / dim**2
        return float((dim * process_fidelity + 1) / (dim + 1))

    def __repr__(self) -> str:
        return (
            f"KrausChannel(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_kraus={len(self._kraus)})"
        )


def _check_probability(p: float, name: str, upper: float = 1.0) -> float:
    p = float(p)
    if not 0.0 <= p <= upper + 1e-12:
        raise NoiseModelError(f"{name} must lie in [0, {upper}], got {p}")
    return min(p, upper)


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    """The trivial (noiseless) channel on *num_qubits* qubits."""
    return KrausChannel([np.eye(2**num_qubits, dtype=complex)], name="identity")


def depolarizing_channel(probability: float, num_qubits: int = 1) -> KrausChannel:
    """Depolarizing channel: with probability *p* replace the state by the maximally mixed state.

    ``rho -> (1 - p) rho + p I / 2**n``.  Implemented with the uniform Pauli
    Kraus decomposition, which is exact for any number of qubits.
    """
    p = _check_probability(probability, "depolarizing probability")
    n = int(num_qubits)
    if n < 1:
        raise NoiseModelError("depolarizing channel needs at least one qubit")
    paulis = [I_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX]
    dim = 4**n
    kraus = []
    for index in range(dim):
        digits = []
        rest = index
        for _ in range(n):
            digits.append(rest % 4)
            rest //= 4
        matrix = kron_all([paulis[d] for d in reversed(digits)])
        if index == 0:
            weight = math.sqrt(1 - p + p / dim)
        else:
            weight = math.sqrt(p / dim)
        if weight > 0:
            kraus.append(weight * matrix)
    return KrausChannel(kraus, name=f"depolarizing(p={p:.4g})")


def bit_flip_channel(probability: float) -> KrausChannel:
    """Bit-flip channel: apply X with probability *p*."""
    p = _check_probability(probability, "bit-flip probability")
    return KrausChannel(
        [math.sqrt(1 - p) * I_MATRIX, math.sqrt(p) * X_MATRIX],
        name=f"bit_flip(p={p:.4g})",
    )


def phase_flip_channel(probability: float) -> KrausChannel:
    """Phase-flip channel: apply Z with probability *p*."""
    p = _check_probability(probability, "phase-flip probability")
    return KrausChannel(
        [math.sqrt(1 - p) * I_MATRIX, math.sqrt(p) * Z_MATRIX],
        name=f"phase_flip(p={p:.4g})",
    )


def bit_phase_flip_channel(probability: float) -> KrausChannel:
    """Bit-phase-flip channel: apply Y with probability *p*."""
    p = _check_probability(probability, "bit-phase-flip probability")
    return KrausChannel(
        [math.sqrt(1 - p) * I_MATRIX, math.sqrt(p) * Y_MATRIX],
        name=f"bit_phase_flip(p={p:.4g})",
    )


def pauli_channel(p_x: float, p_y: float, p_z: float) -> KrausChannel:
    """General single-qubit Pauli channel with the given error probabilities."""
    p_x = _check_probability(p_x, "p_x")
    p_y = _check_probability(p_y, "p_y")
    p_z = _check_probability(p_z, "p_z")
    p_total = p_x + p_y + p_z
    if p_total > 1 + 1e-12:
        raise NoiseModelError(f"Pauli error probabilities sum to {p_total} > 1")
    kraus = [math.sqrt(max(1 - p_total, 0.0)) * I_MATRIX]
    for p, matrix in ((p_x, X_MATRIX), (p_y, Y_MATRIX), (p_z, Z_MATRIX)):
        if p > 0:
            kraus.append(math.sqrt(p) * matrix)
    return KrausChannel(kraus, name="pauli_channel")


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Amplitude damping (T1 decay) with decay probability *gamma*."""
    g = _check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - g)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(g)], [0, 0]], dtype=complex)
    return KrausChannel([k0, k1], name=f"amplitude_damping(gamma={g:.4g})")


def phase_damping_channel(lambda_pd: float) -> KrausChannel:
    """Phase damping (pure dephasing) with parameter *lambda_pd*."""
    lam = _check_probability(lambda_pd, "lambda")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel([k0, k1], name=f"phase_damping(lambda={lam:.4g})")


def thermal_relaxation_channel(
    t1: float, t2: float, gate_time: float, excited_state_population: float = 0.0
) -> KrausChannel:
    """Combined T1/T2 relaxation over a *gate_time* evolution.

    Modelled as amplitude damping with ``gamma = 1 - exp(-t/T1)`` followed by
    pure dephasing chosen so the total off-diagonal decay equals
    ``exp(-t/T2)``.  Requires ``T2 <= 2*T1`` (physical constraint).  A nonzero
    *excited_state_population* mixes in the inverted amplitude-damping channel
    to model a finite-temperature environment.
    """
    if t1 <= 0 or t2 <= 0:
        raise NoiseModelError("T1 and T2 must be positive")
    if gate_time < 0:
        raise NoiseModelError("gate_time must be non-negative")
    if t2 > 2 * t1 + 1e-12:
        raise NoiseModelError(f"unphysical relaxation times: T2={t2} > 2*T1={2 * t1}")
    p_excited = _check_probability(excited_state_population, "excited_state_population")

    gamma = 1.0 - math.exp(-gate_time / t1)
    # Off-diagonal decay from amplitude damping alone is exp(-t / (2 T1)); the
    # remaining dephasing must supply exp(-t/T2) / exp(-t/(2 T1)).
    residual = math.exp(-gate_time / t2) / math.exp(-gate_time / (2 * t1))
    residual = min(max(residual, 0.0), 1.0)
    lambda_pd = 1.0 - residual**2

    damping_down = amplitude_damping_channel(gamma)
    dephasing = phase_damping_channel(lambda_pd)
    channel = damping_down.compose(dephasing)

    if p_excited > 0:
        # Inverted amplitude damping (relaxation towards |1>).
        k0 = np.array([[math.sqrt(1 - gamma), 0], [0, 1]], dtype=complex)
        k1 = np.array([[0, 0], [math.sqrt(gamma), 0]], dtype=complex)
        damping_up = KrausChannel([k0, k1], name="amplitude_damping_up")
        up = damping_up.compose(dephasing)
        kraus = [math.sqrt(1 - p_excited) * k for k in channel.kraus_operators]
        kraus += [math.sqrt(p_excited) * k for k in up.kraus_operators]
        channel = KrausChannel(kraus, name="thermal_relaxation", validate=False)

    channel.name = (
        f"thermal_relaxation(t1={t1:.3g}, t2={t2:.3g}, time={gate_time:.3g})"
    )
    return channel
