"""Batched circuit execution: structure keys, compiled propagators, results.

The per-shot and per-instruction loops of :mod:`repro.quantum.simulator` are
exact but slow on the paper's workloads, which re-run *structurally similar*
circuits thousands of times (the Fig. 3 sweep alone executes sixty circuits
whose bulk is an identical η-long identity-gate chain).  This module provides
the machinery that makes those workloads cheap:

* :func:`circuit_structure_key` — a hashable fingerprint of a circuit's
  instruction sequence, used to key compilation caches;
* :class:`CompiledUnitary` / :class:`CompiledChannel` — a circuit folded into
  a single matrix (the composed unitary for pure-state simulation, the
  composed superoperator — including per-gate Kraus noise — for mixed-state
  simulation).  Runs of repeated instructions are collapsed with
  ``np.linalg.matrix_power``, so an η-identity-gate channel costs
  ``O(log η)`` small matrix products instead of ``O(η)`` channel
  applications;
* :class:`PropagatorCache` — a bounded cache of compiled propagators keyed by
  circuit structure, shared by every run a simulator performs;
* :class:`BatchResult` — the aggregate returned by the simulators'
  ``run_batch`` methods: one :class:`~repro.quantum.simulator.SimulationResult`
  per submitted circuit, each sampled with a single multinomial draw.

Superoperators use the **row-stacking** convention: ``vec(rho)`` is
``rho.reshape(-1)`` and a map ``rho -> A rho B`` becomes
``(A ⊗ B^T) vec(rho)``, so a unitary contributes ``U ⊗ conj(U)`` and a Kraus
set contributes ``sum_k K_k ⊗ conj(K_k)``.

See ``docs/performance.md`` for the performance model and the guarantees the
compiled path makes relative to the sequential reference implementation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.operators import embed_operator

__all__ = [
    "BatchResult",
    "CompiledChannel",
    "CompiledUnitary",
    "PropagatorCache",
    "RESET_KRAUS",
    "circuit_structure_key",
    "instruction_signature",
    "measurements_are_terminal",
    "superoperator_of_kraus",
    "superoperator_of_unitary",
]

#: Largest register (in qubits) for which the density path builds full
#: superoperators.  A compiled superoperator is ``4**n x 4**n``; beyond this
#: size composing it costs more than the sequential reference path saves.
MAX_SUPEROP_QUBITS = 4

#: Largest register for which the statevector path folds the circuit into a
#: single ``2**n x 2**n`` unitary.
MAX_UNITARY_QUBITS = 10

RESET_KRAUS = (
    np.array([[1, 0], [0, 0]], dtype=complex),
    np.array([[0, 1], [0, 0]], dtype=complex),
)


# -- structure keys -------------------------------------------------------------------
def instruction_signature(instruction: Instruction) -> tuple:
    """Hashable fingerprint of one instruction.

    Two instructions with equal signatures act identically on the state: gate
    signatures include the gate name, parameters, the acted-on qubits and the
    raw matrix bytes (so anonymous ``unitary`` gates with equal labels but
    different matrices never collide).
    """
    if instruction.kind == "gate" and instruction.gate is not None:
        gate = instruction.gate
        return (
            "gate",
            gate.name,
            gate.params,
            instruction.qubits,
            gate.matrix.tobytes(),
        )
    return (instruction.kind, instruction.qubits, instruction.clbits)


def circuit_structure_key(circuit: QuantumCircuit) -> tuple:
    """Hashable fingerprint of a circuit's full instruction sequence.

    Circuits with equal keys produce identical propagators, so the key indexes
    the compilation caches.  Barriers are skipped (they never affect the
    simulated state).
    """
    return (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (instruction_signature(instruction), instruction.repetitions)
            for instruction in circuit.instructions
            if instruction.kind != "barrier"
        ),
    )


def measurements_are_terminal(circuit: QuantumCircuit) -> bool:
    """True if no gate or reset acts on a qubit after it has been measured.

    Compiled propagators collapse the circuit into one map applied before a
    single sampling step, which is only equivalent to sequential execution
    when every measurement is terminal.
    """
    measured: set[int] = set()
    for instruction in circuit.instructions:
        if instruction.kind == "measure":
            measured.update(instruction.qubits)
        elif instruction.kind in ("gate", "reset"):
            if measured.intersection(instruction.qubits):
                return False
    return True


# -- superoperator algebra -------------------------------------------------------------
def superoperator_of_unitary(matrix: np.ndarray) -> np.ndarray:
    """Row-stacking superoperator of a unitary: ``U ⊗ conj(U)``."""
    matrix = np.asarray(matrix, dtype=complex)
    return np.kron(matrix, matrix.conj())


def superoperator_of_kraus(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """Row-stacking superoperator of a Kraus set: ``sum_k K_k ⊗ conj(K_k)``."""
    if not kraus_operators:
        raise SimulationError("a channel needs at least one Kraus operator")
    total: np.ndarray | None = None
    for kraus in kraus_operators:
        kraus = np.asarray(kraus, dtype=complex)
        term = np.kron(kraus, kraus.conj())
        total = term if total is None else total + term
    return total


# -- compiled propagators -------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledUnitary:
    """A measurement-stripped circuit folded into one unitary matrix.

    Attributes
    ----------
    matrix:
        The composed ``2**n x 2**n`` circuit unitary.
    measure_map:
        Mapping ``qubit -> clbit`` collected from the (terminal) measurement
        instructions; empty for measurement-free circuits.
    num_qubits, num_clbits:
        Register sizes of the source circuit.
    """

    matrix: np.ndarray
    measure_map: dict[int, int]
    num_qubits: int
    num_clbits: int


@dataclass(frozen=True)
class CompiledChannel:
    """A circuit (gates + attached noise + resets) folded into one superoperator.

    Attributes
    ----------
    superoperator:
        The composed ``4**n x 4**n`` row-stacking superoperator, including
        every noise-model error attached to the circuit's gates.
    measure_map:
        Mapping ``qubit -> clbit`` from the (terminal) measurements.
    num_qubits, num_clbits:
        Register sizes of the source circuit.
    """

    superoperator: np.ndarray
    measure_map: dict[int, int]
    num_qubits: int
    num_clbits: int

    def propagate(self, density: np.ndarray) -> np.ndarray:
        """Apply the compiled map to a density matrix (returns a new matrix)."""
        vec = np.asarray(density, dtype=complex).reshape(-1)
        dim = density.shape[0]
        return (self.superoperator @ vec).reshape(dim, dim)


class PropagatorCache:
    """A bounded LRU cache of compiled propagators keyed by circuit structure.

    One cache instance is owned by each simulator, so repeated runs of
    structurally identical circuits (protocol sessions, sweep points sharing a
    channel chain) compile exactly once.  Step propagators (one per distinct
    instruction signature and register size) and run-length powers are cached
    separately from whole circuits, so circuits that merely *share segments* —
    e.g. the four Fig. 2 message circuits, which differ only in Alice's
    encoding Pauli — still reuse each other's work.

    Parameters
    ----------
    max_entries:
        Cap on the number of whole-circuit entries.  Step and power entries
        are LRU-bounded at four times this cap (a power entry exists per
        distinct repeated-run length, e.g. one per swept η).
    max_bytes:
        Cap on the approximate total matrix bytes held across all three
        stores.  Entry counts alone would admit multi-GB caches at the large
        end of the register limits (a 10-qubit compiled unitary is 16 MB),
        so eviction also triggers on byte pressure, least recently used
        first.

    Thread safety: all accessors take an internal re-entrant lock, so one
    cache may be shared by concurrent sessions (threaded sweeps, the
    delivery runtime's worker pool).  Builds on a miss run *outside* the
    lock — two threads missing the same key may both compile, but the
    compilation is deterministic and last-write-wins, so the race costs
    duplicate work, never wrong results.
    """

    def __init__(self, max_entries: int = 256, max_bytes: int = 256 * 2**20):
        if max_entries < 1:
            raise SimulationError("the propagator cache needs at least one slot")
        if max_bytes < 1:
            raise SimulationError("the propagator cache needs a positive byte budget")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._circuits: OrderedDict[tuple, object] = OrderedDict()
        self._steps: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._powers: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Telemetry reads these counters at snapshot time (never per access),
        # so registration is the cache's only telemetry cost.
        from repro.telemetry.runtime import register_propagator_cache

        register_propagator_cache(self)

    @property
    def bytes_in_use(self) -> int:
        """Approximate matrix bytes currently held across all three stores."""
        return self._bytes

    @staticmethod
    def _entry_bytes(entry) -> int:
        """Approximate resident size of a cached matrix or compiled circuit."""
        matrix = getattr(entry, "matrix", None)
        if matrix is None:
            matrix = getattr(entry, "superoperator", None)
        if matrix is None:
            matrix = entry
        return int(getattr(matrix, "nbytes", 0))

    def _evict_for_bytes(self) -> None:
        """Drop least-recently-used entries until under the byte budget.

        Stores are drained cheapest-to-rebuild first — run-length powers,
        then step propagators, then whole circuits — since a power or step
        is one ``matrix_power``/embedding away while a whole circuit costs a
        full recompile.
        """
        while self._bytes > self.max_bytes:
            for store in (self._powers, self._steps, self._circuits):
                if store:
                    _, evicted = store.popitem(last=False)
                    self._bytes -= self._entry_bytes(evicted)
                    self.evictions += 1
                    break
            else:
                break

    # -- whole-circuit entries ---------------------------------------------------------
    def get(self, key: tuple):
        """Return the compiled propagator for *key*, or ``None`` on a miss."""
        with self._lock:
            entry = self._circuits.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._circuits.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, compiled) -> None:
        """Insert a compiled propagator, evicting the least recently used entry."""
        with self._lock:
            if key not in self._circuits:
                self._bytes += self._entry_bytes(compiled)
            self._circuits[key] = compiled
            self._circuits.move_to_end(key)
            while len(self._circuits) > self.max_entries:
                _, evicted = self._circuits.popitem(last=False)
                self._bytes -= self._entry_bytes(evicted)
                self.evictions += 1
            self._evict_for_bytes()

    # -- step and run-length entries -----------------------------------------------------
    def step(self, key: tuple, build) -> np.ndarray:
        """Return the cached step propagator for *key*, building on miss.

        *key* must uniquely determine the built matrix: the compiler keys on
        (scope, register size, instruction signature), since the same
        signature embedded into different register sizes — or compiled under
        different noise models — yields different matrices.
        """
        with self._lock:
            matrix = self._steps.get(key)
            if matrix is not None:
                self._steps.move_to_end(key)
                return matrix
        built = build()  # outside the lock: deterministic, so a duplicate
        with self._lock:  # build under a race is wasted work, not corruption
            matrix = self._steps.get(key)
            if matrix is not None:
                self._steps.move_to_end(key)
                return matrix
            self._steps[key] = built
            self._bytes += self._entry_bytes(built)
            while len(self._steps) > 4 * self.max_entries:
                _, evicted = self._steps.popitem(last=False)
                self._bytes -= self._entry_bytes(evicted)
                self.evictions += 1
            self._evict_for_bytes()
        return built

    def power(self, key: tuple, count: int, matrix: np.ndarray) -> np.ndarray:
        """Return ``matrix ** count`` for a repeated instruction run, cached.

        Run-length compression is what makes η-identity-gate chains cheap:
        ``matrix_power`` evaluates the product with ``O(log count)``
        multiplications, and the result is reused by every circuit sharing
        the same step key and run length.
        """
        if count == 1:
            return matrix
        power_key = (key, count)
        with self._lock:
            result = self._powers.get(power_key)
            if result is not None:
                self._powers.move_to_end(power_key)
                return result
        built = np.linalg.matrix_power(matrix, count)
        with self._lock:
            result = self._powers.get(power_key)
            if result is not None:
                self._powers.move_to_end(power_key)
                return result
            self._powers[power_key] = built
            self._bytes += self._entry_bytes(built)
            while len(self._powers) > 4 * self.max_entries:
                _, evicted = self._powers.popitem(last=False)
                self._bytes -= self._entry_bytes(evicted)
                self.evictions += 1
            self._evict_for_bytes()
        return built

    def clear(self) -> None:
        """Drop every cached entry (used when a noise model is swapped out)."""
        with self._lock:
            self._circuits.clear()
            self._steps.clear()
            self._powers.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._circuits)


def _run_length_segments(
    instructions: Sequence[Instruction],
) -> Iterator[tuple[Instruction, tuple, int]]:
    """Group consecutive instructions with equal signatures into (head, sig, count).

    An instruction's own ``repetitions`` field contributes to the count, so a
    run-length-encoded η-identity chain and η separate ``id`` instructions
    collapse to the same segment.
    """
    pending: Instruction | None = None
    pending_sig: tuple | None = None
    count = 0
    for instruction in instructions:
        sig = instruction_signature(instruction)
        if pending is not None and sig == pending_sig:
            count += instruction.repetitions
            continue
        if pending is not None:
            yield pending, pending_sig, count
        pending, pending_sig, count = instruction, sig, instruction.repetitions
    if pending is not None:
        yield pending, pending_sig, count


def _compile(
    circuit: QuantumCircuit,
    cache: PropagatorCache | None,
    scope: tuple,
    step_builder,
    identity_dim: int,
    wrap,
):
    """Shared compilation loop for both propagator flavors.

    *scope* namespaces every cache key (whole-circuit, step and power), so a
    shared :class:`PropagatorCache` never confuses unitary entries with
    superoperator entries, or superoperators compiled under different noise
    models.  *step_builder* maps one non-measure instruction to its
    full-register step matrix; *wrap* packages ``(matrix, measure_map)`` into
    the caller's compiled dataclass.
    """
    if not measurements_are_terminal(circuit):
        raise SimulationError(
            "compiled propagators require terminal measurements; "
            f"circuit {circuit.name!r} operates on a qubit after measuring it"
        )
    key = (scope, circuit_structure_key(circuit))
    if cache is not None:
        compiled = cache.get(key)
        if compiled is not None:
            return compiled

    n = circuit.num_qubits
    matrix = np.eye(identity_dim, dtype=complex)
    measure_map: dict[int, int] = {}
    active = [
        instruction
        for instruction in circuit.instructions
        if instruction.kind != "barrier"
    ]
    for instruction, signature, count in _run_length_segments(active):
        if instruction.kind == "measure":
            for qubit, clbit in zip(instruction.qubits, instruction.clbits):
                measure_map[qubit] = clbit
            continue
        step_key = (scope, n, signature)
        step = (
            cache.step(step_key, lambda i=instruction: step_builder(i))
            if cache is not None
            else step_builder(instruction)
        )
        if count > 1:
            step = (
                cache.power(step_key, count, step)
                if cache is not None
                else np.linalg.matrix_power(step, count)
            )
        matrix = step @ matrix

    compiled = wrap(matrix, measure_map)
    if cache is not None:
        cache.put(key, compiled)
    return compiled


def _noise_token(noise_model) -> tuple | None:
    """Cache-key token identifying a noise model instance *and* its contents.

    ``NoiseModel.cache_token`` is process-unique (never reused, unlike
    ``id()``), and the ``version`` counter (bumped by every ``add_*`` call)
    makes in-place mutation invalidate previously compiled superoperators.
    Returns ``None`` for foreign noise-model objects that merely duck-type
    ``errors_for`` — callers must then bypass caching, since no token can
    prove such a model unchanged.
    """
    if noise_model is None:
        return None
    token = getattr(noise_model, "cache_token", None)
    if token is None or not hasattr(noise_model, "version"):
        return None
    return (token, noise_model.version)


def compile_unitary(
    circuit: QuantumCircuit, cache: PropagatorCache | None = None
) -> CompiledUnitary:
    """Fold a terminal-measurement, reset-free circuit into one unitary.

    Raises :class:`SimulationError` if the circuit contains resets or
    non-terminal measurements (callers gate on those before compiling).
    """
    num_qubits = circuit.num_qubits

    def build_step(instruction: Instruction) -> np.ndarray:
        if instruction.kind != "gate" or instruction.gate is None:
            raise SimulationError(
                f"cannot compile instruction {instruction.kind!r} into a unitary"
            )
        return embed_operator(
            instruction.gate.matrix, list(instruction.qubits), num_qubits
        )

    return _compile(
        circuit,
        cache,
        scope=("unitary",),
        step_builder=build_step,
        identity_dim=2**num_qubits,
        wrap=lambda matrix, measure_map: CompiledUnitary(
            matrix=matrix,
            measure_map=measure_map,
            num_qubits=num_qubits,
            num_clbits=circuit.num_clbits,
        ),
    )


def compile_channel(
    circuit: QuantumCircuit,
    noise_model=None,
    cache: PropagatorCache | None = None,
) -> CompiledChannel:
    """Fold a terminal-measurement circuit (gates + noise + resets) into one superoperator.

    Every :class:`~repro.quantum.noise_model.QuantumError` the noise model
    attaches to a gate is composed into that gate's step superoperator, so the
    compiled map is exactly the channel the sequential simulator applies
    instruction by instruction.
    """
    num_qubits = circuit.num_qubits
    if noise_model is None:
        scope = ("channel", None)
    else:
        token = _noise_token(noise_model)
        if token is None:
            # A foreign noise object offers no mutation-proof identity, so a
            # cached propagator could silently go stale; compile fresh.
            cache = None
            scope = ("channel", "uncacheable")
        else:
            scope = ("channel", token)
    return _compile(
        circuit,
        cache,
        scope=scope,
        step_builder=lambda instruction: _step_superoperator(
            instruction, num_qubits, noise_model
        ),
        identity_dim=4**num_qubits,
        wrap=lambda matrix, measure_map: CompiledChannel(
            superoperator=matrix,
            measure_map=measure_map,
            num_qubits=num_qubits,
            num_clbits=circuit.num_clbits,
        ),
    )


def _step_superoperator(
    instruction: Instruction, num_qubits: int, noise_model
) -> np.ndarray:
    """Full-register superoperator of one instruction plus its attached noise."""
    if instruction.kind == "reset":
        embedded = [
            embed_operator(k, list(instruction.qubits), num_qubits)
            for k in RESET_KRAUS
        ]
        return superoperator_of_kraus(embedded)
    if instruction.kind != "gate" or instruction.gate is None:
        raise SimulationError(
            f"cannot compile instruction {instruction.kind!r} into a superoperator"
        )
    step = superoperator_of_unitary(
        embed_operator(instruction.gate.matrix, list(instruction.qubits), num_qubits)
    )
    if noise_model is None:
        return step
    for error in noise_model.errors_for(instruction.name, instruction.qubits):
        step = _error_superoperator(error, instruction.qubits, num_qubits) @ step
    return step


def _error_superoperator(
    error, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Superoperator of a noise-model error, matching the sequential semantics.

    A k-qubit error on a k-qubit instruction applies once on the
    instruction's qubits; a 1-qubit error on a multi-qubit instruction applies
    independently to each qubit (the same broadcast the sequential
    ``DensityMatrixSimulator._apply_error`` performs).
    """
    if error.num_qubits == len(qubits):
        embedded = [
            embed_operator(k, list(qubits), num_qubits)
            for k in error.channel.kraus_operators
        ]
        return superoperator_of_kraus(embedded)
    if error.num_qubits == 1:
        total = np.eye(4**num_qubits, dtype=complex)
        for qubit in qubits:
            embedded = [
                embed_operator(k, [qubit], num_qubits)
                for k in error.channel.kraus_operators
            ]
            total = superoperator_of_kraus(embedded) @ total
        return total
    raise SimulationError(
        f"error on {error.num_qubits} qubits cannot be applied to a "
        f"{len(qubits)}-qubit instruction"
    )


# -- batch results -------------------------------------------------------------------------
@dataclass
class BatchResult:
    """Aggregate result of executing a sequence of circuits in one call.

    Attributes
    ----------
    results:
        One :class:`~repro.quantum.simulator.SimulationResult` per submitted
        circuit, in submission order.
    shots:
        Shots sampled per circuit.
    metadata:
        Batch-level extras (method, cache statistics).
    """

    results: list = field(default_factory=list)
    shots: int = 0
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int):
        return self.results[index]

    @property
    def counts(self) -> list[dict[str, int]]:
        """The counts histogram of every circuit, in submission order."""
        return [result.counts for result in self.results]

    def probabilities(self) -> list[dict[str, float]]:
        """Normalised count frequencies of every circuit, in submission order."""
        return [result.probabilities() for result in self.results]
