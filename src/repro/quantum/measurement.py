"""Measurement helpers: projective, observable and Bell-state measurements.

Three measurement primitives drive the protocol:

* computational-basis **projective measurement** (delegated to the state
  classes, re-exported here for a uniform API);
* **observable measurement** of ``±1``-valued equatorial observables
  ``cos(theta)·X ± sin(theta)·Y`` used by the two DI security-check rounds;
* **Bell-state measurement** (BSM) used by Bob to decode dense-coded message
  and identity bits, and during the authentication step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError, NonPhysicalStateError
from repro.quantum.bell import BellState, equatorial_observable_matrix
from repro.quantum.density import DensityMatrix
from repro.quantum.operators import Operator
from repro.quantum.states import Statevector
from repro.utils.rng import as_rng

__all__ = [
    "BellMeasurementResult",
    "equatorial_observable",
    "projective_measurement",
    "measure_observable",
    "observable_branches",
    "observable_probability",
    "bell_measurement",
    "bell_measurement_probabilities",
    "bell_basis_probability_vector",
    "sample_bell_outcome",
    "bell_measurement_counts",
    "BELL_BITS_TO_STATE",
    "BELL_STATE_TO_BITS",
    "BELL_OUTCOME_ORDER",
]

#: Outcome bits of the (CNOT, H) disentangling circuit mapped to Bell states.
#: The first bit is the H-measured (phase) qubit, the second the parity qubit.
BELL_BITS_TO_STATE: dict[str, BellState] = {
    "00": BellState.PHI_PLUS,
    "10": BellState.PHI_MINUS,
    "01": BellState.PSI_PLUS,
    "11": BellState.PSI_MINUS,
}

#: Inverse of :data:`BELL_BITS_TO_STATE`.
BELL_STATE_TO_BITS: dict[BellState, str] = {
    state: bits for bits, state in BELL_BITS_TO_STATE.items()
}


@dataclass(frozen=True)
class BellMeasurementResult:
    """Outcome of a single Bell-state measurement.

    Attributes
    ----------
    bell_state:
        Which Bell state was observed.
    bits:
        The two raw measurement bits of the disentangling circuit
        (phase bit, parity bit).
    """

    bell_state: BellState
    bits: str


def equatorial_observable(theta: float, conjugate: bool = False) -> Operator:
    """Equatorial ``±1`` observable ``cos(theta)·X ± sin(theta)·Y`` as an Operator."""
    return Operator(equatorial_observable_matrix(theta, conjugate=conjugate))


def projective_measurement(
    state: "Statevector | DensityMatrix",
    qubits: Sequence[int] | None = None,
    rng=None,
) -> tuple[str, "Statevector | DensityMatrix"]:
    """Measure the listed qubits in the computational basis.

    For a :class:`Statevector` this returns the collapsed pure state; for a
    :class:`DensityMatrix` it returns the normalised projected mixed state.
    """
    generator = as_rng(rng)
    if isinstance(state, Statevector):
        return state.measure(qubits, rng=generator)
    if isinstance(state, DensityMatrix):
        targets = list(range(state.num_qubits)) if qubits is None else [int(q) for q in qubits]
        probs = state.probabilities(targets)
        index = int(generator.choice(len(probs), p=probs))
        outcome = format(index, f"0{len(targets)}b")
        projector = _computational_projector(outcome, targets, state.num_qubits)
        projected = projector @ state.matrix @ projector
        norm = float(np.real(np.trace(projected)))
        if norm <= 0:
            raise NonPhysicalStateError("projective measurement hit a zero-probability outcome")
        return outcome, DensityMatrix(projected / norm, validate=False)
    raise DimensionError(f"cannot measure object of type {type(state).__name__}")


def _computational_projector(
    outcome: str, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Full-register projector onto *outcome* of the listed qubits."""
    ket0 = np.array([[1, 0], [0, 0]], dtype=complex)
    ket1 = np.array([[0, 0], [0, 1]], dtype=complex)
    from repro.quantum.operators import embed_operator, kron_all

    locals_ = [ket0 if bit == "0" else ket1 for bit in outcome]
    return embed_operator(kron_all(locals_), list(qubits), num_qubits)


#: Bounded memo of ±1-observable eigenprojectors keyed by matrix bytes.  The
#: protocol measures the same five CHSH observables thousands of times per
#: session; hermiticity checks and ``eigh`` need to run once per observable,
#: not once per pair.  Determinism is unaffected: equal input bytes produce
#: the identical projector arrays the uncached code would recompute.
_PROJECTOR_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_PROJECTOR_CACHE_MAX = 256

#: Bounded memo of full-register embeddings of those projectors, keyed by
#: (observable bytes, qubits, register size).
_EMBEDDED_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_EMBEDDED_CACHE_MAX = 1024


def _observable_projectors(op: Operator) -> tuple[np.ndarray, np.ndarray]:
    """Local (+1, −1) eigenprojectors of a ±1-valued observable, memoised."""
    key = (op.dim, op.matrix.tobytes())
    cached = _PROJECTOR_CACHE.get(key)
    if cached is not None:
        return cached
    if not op.is_hermitian():
        raise DimensionError("observables must be Hermitian")
    eigenvalues, eigenvectors = np.linalg.eigh(op.matrix)
    if not np.allclose(np.abs(eigenvalues), 1.0, atol=1e-8):
        raise DimensionError("measure_observable supports only ±1-valued observables")
    plus_vectors = eigenvectors[:, eigenvalues > 0]
    projector_plus = plus_vectors @ plus_vectors.conj().T
    projector_minus = np.eye(op.dim) - projector_plus
    if len(_PROJECTOR_CACHE) >= _PROJECTOR_CACHE_MAX:
        _PROJECTOR_CACHE.clear()
    _PROJECTOR_CACHE[key] = (projector_plus, projector_minus)
    return projector_plus, projector_minus


def _embedded_projectors(
    op: Operator, qubits: tuple[int, ...], num_qubits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Full-register embeddings of an observable's eigenprojectors, memoised."""
    key = (op.dim, op.matrix.tobytes(), qubits, num_qubits)
    cached = _EMBEDDED_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.quantum.operators import embed_operator

    plus_local, minus_local = _observable_projectors(op)
    embedded = (
        embed_operator(plus_local, list(qubits), num_qubits),
        embed_operator(minus_local, list(qubits), num_qubits),
    )
    if len(_EMBEDDED_CACHE) >= _EMBEDDED_CACHE_MAX:
        _EMBEDDED_CACHE.clear()
    _EMBEDDED_CACHE[key] = embedded
    return embedded


def observable_branches(
    state: "Statevector | DensityMatrix",
    observable: "Operator | np.ndarray",
    qubits: Sequence[int],
) -> tuple[float, "Statevector | DensityMatrix | None", "Statevector | DensityMatrix | None"]:
    """Both branches of a ±1-observable measurement, without sampling.

    Returns ``(prob_plus, post_plus, post_minus)``; a zero-probability
    branch's post state is ``None``.  :func:`measure_observable` is exactly
    this followed by one uniform draw, and the CHSH fast path caches these
    branch statistics per distinct pair state — both paths therefore consume
    identical floats and identical RNG draws, which is what keeps memoised
    and reference sessions bit-identical.
    """
    op = observable if isinstance(observable, Operator) else Operator(observable)
    projector_plus, projector_minus = _embedded_projectors(
        op, tuple(int(q) for q in qubits), state.num_qubits
    )

    if isinstance(state, Statevector):
        vec = state.vector
        prob_plus = float(np.real(vec.conj() @ (projector_plus @ vec)))
        prob_plus = min(max(prob_plus, 0.0), 1.0)
        posts: list[Statevector | None] = []
        for projector in (projector_plus, projector_minus):
            post = projector @ vec
            norm = np.linalg.norm(post)
            posts.append(
                None if norm <= 1e-12 else Statevector(post / norm, validate=False)
            )
        return prob_plus, posts[0], posts[1]

    if isinstance(state, DensityMatrix):
        rho = state.matrix
        prob_plus = float(np.real(np.trace(projector_plus @ rho)))
        prob_plus = min(max(prob_plus, 0.0), 1.0)
        posts_dm: list[DensityMatrix | None] = []
        for projector in (projector_plus, projector_minus):
            projected = projector @ rho @ projector
            norm = float(np.real(np.trace(projected)))
            posts_dm.append(
                None
                if norm <= 1e-12
                else DensityMatrix(projected / norm, validate=False)
            )
        return prob_plus, posts_dm[0], posts_dm[1]

    raise DimensionError(f"cannot measure object of type {type(state).__name__}")


def observable_probability(
    state: "Statevector | DensityMatrix",
    observable: "Operator | np.ndarray",
    qubits: Sequence[int],
) -> float:
    """Probability of the ``+1`` outcome of a ±1-valued observable.

    The same float :func:`observable_branches` and :func:`measure_observable`
    compute, without materialising either post-measurement state — for
    callers (e.g. the CHSH memoisation) that only need the statistic.
    """
    op = observable if isinstance(observable, Operator) else Operator(observable)
    projector_plus, _ = _embedded_projectors(
        op, tuple(int(q) for q in qubits), state.num_qubits
    )
    if isinstance(state, Statevector):
        vec = state.vector
        prob_plus = float(np.real(vec.conj() @ (projector_plus @ vec)))
    elif isinstance(state, DensityMatrix):
        prob_plus = float(np.real(np.trace(projector_plus @ state.matrix)))
    else:
        raise DimensionError(f"cannot measure object of type {type(state).__name__}")
    return min(max(prob_plus, 0.0), 1.0)


def measure_observable(
    state: "Statevector | DensityMatrix",
    observable: "Operator | np.ndarray",
    qubits: Sequence[int],
    rng=None,
) -> tuple[int, "Statevector | DensityMatrix"]:
    """Measure a ``±1``-valued observable on the listed qubits.

    The observable must have only ``+1``/``−1`` eigenvalues (all equatorial
    observables and Pauli operators qualify).  Returns the observed eigenvalue
    and the post-measurement state.  One uniform draw is consumed from *rng*
    per call; only the drawn branch's post state is computed.
    """
    op = observable if isinstance(observable, Operator) else Operator(observable)
    projector_plus, projector_minus = _embedded_projectors(
        op, tuple(int(q) for q in qubits), state.num_qubits
    )
    generator = as_rng(rng)

    if isinstance(state, Statevector):
        vec = state.vector
        prob_plus = float(np.real(vec.conj() @ (projector_plus @ vec)))
        prob_plus = min(max(prob_plus, 0.0), 1.0)
        outcome = 1 if generator.random() < prob_plus else -1
        projector = projector_plus if outcome == 1 else projector_minus
        post = projector @ vec
        norm = np.linalg.norm(post)
        if norm <= 1e-12:
            raise NonPhysicalStateError(
                "observable measurement hit a zero-probability outcome"
            )
        return outcome, Statevector(post / norm, validate=False)

    if isinstance(state, DensityMatrix):
        rho = state.matrix
        prob_plus = float(np.real(np.trace(projector_plus @ rho)))
        prob_plus = min(max(prob_plus, 0.0), 1.0)
        outcome = 1 if generator.random() < prob_plus else -1
        projector = projector_plus if outcome == 1 else projector_minus
        projected = projector @ rho @ projector
        norm = float(np.real(np.trace(projected)))
        if norm <= 1e-12:
            raise NonPhysicalStateError(
                "observable measurement hit a zero-probability outcome"
            )
        return outcome, DensityMatrix(projected / norm, validate=False)

    raise DimensionError(f"cannot measure object of type {type(state).__name__}")


#: The canonical Bell-outcome ordering used by every sampling helper below.
BELL_OUTCOME_ORDER = (
    BellState.PHI_PLUS,
    BellState.PHI_MINUS,
    BellState.PSI_PLUS,
    BellState.PSI_MINUS,
)


def _bell_basis_probabilities(
    state: "Statevector | DensityMatrix", qubit_pair: Sequence[int]
) -> np.ndarray:
    """Probabilities of the four Bell outcomes (ordered Φ+, Φ−, Ψ+, Ψ−)."""
    from repro.quantum.bell import bell_projector

    probs = []
    for which in BELL_OUTCOME_ORDER:
        projector = bell_projector(which)
        value = state.expectation_value(projector, qubit_pair)
        probs.append(max(float(np.real(value)), 0.0))
    probs = np.array(probs)
    total = probs.sum()
    if total <= 0:
        raise NonPhysicalStateError("state has no support on the Bell basis")
    return probs / total


def bell_basis_probability_vector(
    state: "Statevector | DensityMatrix", qubit_pair: Sequence[int]
) -> np.ndarray:
    """The four Bell-outcome probabilities, ordered as :data:`BELL_OUTCOME_ORDER`.

    Public variant of the internal helper so callers (e.g. Bob's memoised
    Bell-measurement loop) can compute the vector once per distinct pair
    state and sample many outcomes from it via :func:`sample_bell_outcome`.
    """
    return _bell_basis_probabilities(state, qubit_pair)


def sample_bell_outcome(
    probabilities: np.ndarray, rng=None
) -> BellMeasurementResult:
    """Draw one Bell outcome from a precomputed probability vector.

    Consumes exactly one ``Generator.choice`` draw — the same consumption as
    :func:`bell_measurement`, so sampling from a cached vector is
    bit-identical to measuring the state afresh.
    """
    generator = as_rng(rng)
    index = int(generator.choice(4, p=probabilities))
    which = BELL_OUTCOME_ORDER[index]
    return BellMeasurementResult(bell_state=which, bits=BELL_STATE_TO_BITS[which])


def bell_measurement_probabilities(
    state: "Statevector | DensityMatrix", qubit_pair: Sequence[int]
) -> dict[BellState, float]:
    """Probability of each Bell outcome when measuring *qubit_pair* in the Bell basis."""
    probs = _bell_basis_probabilities(state, qubit_pair)
    return {which: float(p) for which, p in zip(BELL_OUTCOME_ORDER, probs)}


def bell_measurement(
    state: "Statevector | DensityMatrix",
    qubit_pair: Sequence[int],
    rng=None,
) -> BellMeasurementResult:
    """Sample one Bell-state measurement outcome on the given qubit pair.

    Equivalent to running the (CNOT, H) disentangling circuit and measuring
    both qubits in the computational basis; only the Bell outcome is returned
    because the protocol never uses the post-measurement state of measured
    pairs (they are discarded).
    """
    if len(qubit_pair) != 2:
        raise DimensionError("Bell-state measurement requires exactly two qubits")
    probs = _bell_basis_probabilities(state, qubit_pair)
    return sample_bell_outcome(probs, rng=rng)


def bell_measurement_counts(
    state: "Statevector | DensityMatrix",
    qubit_pair: Sequence[int],
    shots: int,
    rng=None,
) -> dict[BellState, int]:
    """Sample *shots* Bell-state measurements and histogram the outcomes."""
    if shots < 0:
        raise ValueError(f"shots must be non-negative, got {shots}")
    generator = as_rng(rng)
    probs = _bell_basis_probabilities(state, qubit_pair)
    samples = generator.multinomial(shots, probs)
    return {
        which: int(count)
        for which, count in zip(BELL_OUTCOME_ORDER, samples)
        if count > 0
    }
