"""Quantum circuit representation.

:class:`QuantumCircuit` records a sequence of :class:`Instruction` objects —
gate applications, measurements, resets and barriers — over a fixed number of
qubits and classical bits.  It is intentionally small: enough to express the
UA-DI-QSDC protocol circuits (EPR preparation, Pauli encodings, identity-gate
channels, Bell-state measurement) and the attack circuits, while remaining
fully introspectable by the noise model (errors attach by gate name).

The circuit layer never simulates anything itself; see
:mod:`repro.quantum.simulator`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.gates import Gate, make_gate
from repro.quantum.operators import Operator

__all__ = ["Instruction", "QuantumCircuit"]


@dataclass(frozen=True)
class Instruction:
    """A single circuit operation.

    ``kind`` is one of ``"gate"``, ``"measure"``, ``"reset"`` or ``"barrier"``.
    For gates, :attr:`gate` holds the :class:`~repro.quantum.gates.Gate`; for
    measurements, :attr:`clbits` lists the classical bits receiving the
    outcomes (same length as :attr:`qubits`).

    ``repetitions`` run-length-encodes a gate applied ``k`` times in a row on
    the same qubits (the paper's η-identity-gate channel is one instruction
    with ``repetitions=η`` rather than η separate instructions).  Semantics
    are identical to appending the instruction ``repetitions`` times;
    consumers that walk the instruction list must honour it.
    """

    kind: str
    qubits: tuple[int, ...]
    clbits: tuple[int, ...] = ()
    gate: Gate | None = None
    label: str | None = None
    repetitions: int = 1

    def __post_init__(self):
        if self.repetitions < 1:
            raise CircuitError(
                f"repetitions must be at least 1, got {self.repetitions}"
            )
        if self.repetitions > 1 and self.kind != "gate":
            raise CircuitError("only gate instructions can carry repetitions")

    @property
    def name(self) -> str:
        """Gate name for gate instructions, otherwise the instruction kind."""
        if self.kind == "gate" and self.gate is not None:
            return self.gate.name
        return self.kind


class QuantumCircuit:
    """An ordered list of instructions over qubits and classical bits.

    Parameters
    ----------
    num_qubits:
        Number of qubits in the register.
    num_clbits:
        Number of classical bits; defaults to ``num_qubits`` so that
        :meth:`measure_all` always has space.
    name:
        Optional circuit name used in logs and reprs.
    """

    def __init__(self, num_qubits: int, num_clbits: int | None = None, name: str = "circuit"):
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits) if num_clbits is not None else int(num_qubits)
        if self.num_clbits < 0:
            raise CircuitError("num_clbits must be non-negative")
        self.name = name
        self._instructions: list[Instruction] = []

    # -- bookkeeping -----------------------------------------------------------
    @property
    def instructions(self) -> list[Instruction]:
        """The instruction list (mutable; treat as read-only outside the library)."""
        return self._instructions

    def _check_qubits(self, qubits: Sequence[int], expected: int | None = None) -> tuple[int, ...]:
        out = tuple(int(q) for q in qubits)
        if expected is not None and len(out) != expected:
            raise CircuitError(f"expected {expected} qubit(s), got {len(out)}")
        if len(set(out)) != len(out):
            raise CircuitError(f"qubit arguments must be distinct, got {out}")
        for q in out:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for a {self.num_qubits}-qubit circuit"
                )
        return out

    def _check_clbits(self, clbits: Sequence[int]) -> tuple[int, ...]:
        out = tuple(int(c) for c in clbits)
        for c in out:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(
                    f"classical bit {c} out of range for {self.num_clbits} clbits"
                )
        return out

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built instruction (used by compose and the protocol layer)."""
        self._check_qubits(instruction.qubits)
        if instruction.clbits:
            self._check_clbits(instruction.clbits)
        self._instructions.append(instruction)
        return self

    def _append_gate(self, gate: Gate, qubits: Sequence[int], label: str | None = None) -> "QuantumCircuit":
        targets = self._check_qubits(qubits, expected=gate.num_qubits)
        self._instructions.append(Instruction("gate", targets, gate=gate, label=label))
        return self

    def repeat(self, name: str, qubits: Sequence[int] | int, count: int, *params) -> "QuantumCircuit":
        """Append the named gate *count* times as one run-length-encoded instruction.

        Equivalent to calling the gate method *count* times, but stores a
        single :class:`Instruction` with ``repetitions=count``, so an
        η-identity-gate channel costs O(1) to build and to fingerprint
        instead of O(η).  ``count=0`` is a no-op.
        """
        if count < 0:
            raise CircuitError(f"repeat count must be non-negative, got {count}")
        if count == 0:
            return self
        gate = make_gate(name, *params)
        if isinstance(qubits, (int, np.integer)):
            qubits = [int(qubits)]
        targets = self._check_qubits(qubits, expected=gate.num_qubits)
        self._instructions.append(
            Instruction("gate", targets, gate=gate, repetitions=count)
        )
        return self

    # -- standard gates ----------------------------------------------------------
    def id(self, qubit: int) -> "QuantumCircuit":
        """Identity gate (used to model channel delay in the paper's emulation)."""
        return self._append_gate(make_gate("id"), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self._append_gate(make_gate("x"), [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self._append_gate(make_gate("y"), [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self._append_gate(make_gate("z"), [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard."""
        return self._append_gate(make_gate("h"), [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self._append_gate(make_gate("s"), [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse phase gate S†."""
        return self._append_gate(make_gate("sdg"), [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self._append_gate(make_gate("t"), [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse T gate."""
        return self._append_gate(make_gate("tdg"), [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Rotation about X by *theta*."""
        return self._append_gate(make_gate("rx", theta), [qubit])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Rotation about Y by *theta*."""
        return self._append_gate(make_gate("ry", theta), [qubit])

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Rotation about Z by *theta*."""
        return self._append_gate(make_gate("rz", theta), [qubit])

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate diag(1, e^{i*lam})."""
        return self._append_gate(make_gate("p", lam), [qubit])

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """General single-qubit rotation."""
        return self._append_gate(make_gate("u3", theta, phi, lam), [qubit])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-NOT."""
        return self._append_gate(make_gate("cx"), [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self._append_gate(make_gate("cz"), [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Y."""
        return self._append_gate(make_gate("cy"), [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Hadamard."""
        return self._append_gate(make_gate("ch"), [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP two qubits."""
        return self._append_gate(make_gate("swap"), [qubit_a, qubit_b])

    def unitary(
        self, matrix: "np.ndarray | Operator", qubits: Sequence[int], label: str = "unitary"
    ) -> "QuantumCircuit":
        """Apply an arbitrary unitary matrix to the listed qubits."""
        op = matrix if isinstance(matrix, Operator) else Operator(matrix)
        op.require_unitary()
        gate = Gate(label, op.num_qubits, op.matrix)
        return self._append_gate(gate, qubits, label=label)

    def pauli(self, label: str, qubits: Sequence[int]) -> "QuantumCircuit":
        """Apply a Pauli string such as ``"XZ"`` (one character per listed qubit)."""
        targets = self._check_qubits(qubits, expected=len(label))
        for ch, qubit in zip(label.lower(), targets):
            if ch == "i":
                self.id(qubit)
            elif ch in ("x", "y", "z"):
                self._append_gate(make_gate(ch), [qubit])
            else:
                raise CircuitError(f"unknown Pauli character {ch!r}")
        return self

    # -- non-gate instructions -----------------------------------------------------
    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Insert a barrier (no effect on simulation; documents circuit phases)."""
        targets = self._check_qubits(qubits or range(self.num_qubits))
        self._instructions.append(Instruction("barrier", targets))
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        """Reset a qubit to ``|0>``."""
        targets = self._check_qubits([qubit])
        self._instructions.append(Instruction("reset", targets))
        return self

    def measure(self, qubits: Sequence[int], clbits: Sequence[int]) -> "QuantumCircuit":
        """Measure the listed qubits into the listed classical bits."""
        targets = self._check_qubits(qubits)
        cbits = self._check_clbits(clbits)
        if len(targets) != len(cbits):
            raise CircuitError(
                f"measure needs one classical bit per qubit ({len(targets)} vs {len(cbits)})"
            )
        self._instructions.append(Instruction("measure", targets, clbits=cbits))
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit with the same index."""
        if self.num_clbits < self.num_qubits:
            raise CircuitError("not enough classical bits to measure every qubit")
        return self.measure(range(self.num_qubits), range(self.num_qubits))

    # -- circuit-level helpers --------------------------------------------------------
    def compose(self, other: "QuantumCircuit", qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        """Append another circuit's instructions onto this circuit (in place).

        *qubits* maps the other circuit's qubit ``i`` onto ``qubits[i]`` of
        this circuit; by default qubits map by index.  Classical bits map by
        index.  Returns ``self`` for chaining.
        """
        mapping = list(range(other.num_qubits)) if qubits is None else [int(q) for q in qubits]
        if len(mapping) != other.num_qubits:
            raise CircuitError(
                f"qubit mapping has {len(mapping)} entries for a "
                f"{other.num_qubits}-qubit circuit"
            )
        self._check_qubits(mapping)
        if other.num_clbits > self.num_clbits:
            raise CircuitError("composed circuit has more classical bits than the target")
        for instruction in other.instructions:
            mapped = tuple(mapping[q] for q in instruction.qubits)
            self.append(
                Instruction(
                    kind=instruction.kind,
                    qubits=mapped,
                    clbits=instruction.clbits,
                    gate=instruction.gate,
                    label=instruction.label,
                    repetitions=instruction.repetitions,
                )
            )
        return self

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Return a shallow copy (instructions are immutable, so sharing is safe)."""
        new = QuantumCircuit(self.num_qubits, self.num_clbits, name=name or self.name)
        new._instructions = list(self._instructions)
        return new

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (gates reversed and inverted).

        Only valid for measurement- and reset-free circuits.
        """
        new = QuantumCircuit(self.num_qubits, self.num_clbits, name=f"{self.name}_dg")
        for instruction in reversed(self._instructions):
            if instruction.kind == "barrier":
                new._instructions.append(instruction)
                continue
            if instruction.kind != "gate" or instruction.gate is None:
                raise CircuitError("cannot invert a circuit containing measurements or resets")
            new._instructions.append(
                Instruction(
                    "gate",
                    instruction.qubits,
                    gate=instruction.gate.inverse(),
                    repetitions=instruction.repetitions,
                )
            )
        return new

    def depth(self) -> int:
        """Number of layers of gates/measurements (barriers excluded)."""
        levels = [0] * self.num_qubits
        for instruction in self._instructions:
            if instruction.kind == "barrier":
                continue
            level = max(levels[q] for q in instruction.qubits) + instruction.repetitions
            for q in instruction.qubits:
                levels[q] = level
        return max(levels) if levels else 0

    def count_ops(self) -> dict[str, int]:
        """Histogram of instruction names (run-length-encoded gates count fully)."""
        counter: Counter[str] = Counter()
        for instruction in self._instructions:
            counter[instruction.name] += instruction.repetitions
        return dict(counter)

    def num_gates(self) -> int:
        """Total number of gate applications (repetitions included)."""
        return sum(
            instruction.repetitions
            for instruction in self._instructions
            if instruction.kind == "gate"
        )

    def has_measurements(self) -> bool:
        """True if the circuit contains at least one measurement."""
        return any(instruction.kind == "measure" for instruction in self._instructions)

    def measured_qubits(self) -> tuple[int, ...]:
        """Qubits that appear in at least one measurement instruction."""
        qubits: list[int] = []
        for instruction in self._instructions:
            if instruction.kind == "measure":
                qubits.extend(instruction.qubits)
        return tuple(dict.fromkeys(qubits))

    def to_operator(self) -> Operator:
        """Build the full circuit unitary (measurement-free circuits only)."""
        matrix = np.eye(2**self.num_qubits, dtype=complex)
        for instruction in self._instructions:
            if instruction.kind == "barrier":
                continue
            if instruction.kind != "gate" or instruction.gate is None:
                raise CircuitError(
                    "cannot build a unitary for a circuit containing measurements or resets"
                )
            embedded = Operator(instruction.gate.matrix).expand(
                instruction.qubits, self.num_qubits
            )
            step = embedded.matrix
            if instruction.repetitions > 1:
                step = np.linalg.matrix_power(step, instruction.repetitions)
            matrix = step @ matrix
        return Operator(matrix)

    # -- dunder helpers ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterable[Instruction]:
        return iter(self._instructions)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_instructions={len(self._instructions)})"
        )
