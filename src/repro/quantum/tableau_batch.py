"""Vectorized batch-of-tableaus execution for Clifford circuits (bit-packed).

The serial :class:`~repro.quantum.stabilizer.StabilizerSimulator` made a
single session cheap; a 10k-session sweep still pays the Python interpreter
once per session.  This module amortises that cost by advancing **N
identical-structure sessions as one program**:

* :class:`BatchedCliffordTableau` — a batch of ``B`` Aaronson–Gottesman CHP
  tableaus evolving under one common instruction stream.  The symplectic
  X/Z bits are bit-packed into ``uint64`` words (``ceil(n/64)`` words per
  row) and the whole Clifford gate set, measurement and Pauli-frame noise
  injection are whole-batch array ops: XOR/AND on packed words plus
  popcounts through :func:`numpy.bitwise_count` (with a portable SWAR
  fallback for numpy builds without it).

  The layout exploits a structural theorem of the Clifford+Pauli class:
  under a *common* gate stream, per-element randomness (sampled Pauli
  errors, random measurement outcomes, conditional reset corrections) only
  ever flips generator **signs** — the symplectic X/Z part stays identical
  across the batch.  The batch therefore shares one ``(2n, W)`` X/Z block
  while the sign exponents ``r`` carry the batch axis ``(B, 2n)``, so one
  fused update per instruction advances every element at once.

* :class:`BatchedStabilizerSimulator` — the batch front-end the dispatch
  layer routes ``simulator_backend="stabilizer_batched"`` to.  For each
  distinct circuit structure in a submitted batch it resolves the exact
  analytic outcome distribution **once** (sharing the serial simulator's
  symbolic-tableau machinery and cache), pre-renders the outcome keys, and
  then finishes every circuit with the single ``multinomial`` draw of the
  serial contract — in submission order, so counts are **bit-identical** to
  the serial stabilizer and the dense simulators under a fixed seed.
  Circuits outside the analytic envelope fall back to the serial
  per-circuit path (keeping bit-parity unconditional); ``method=
  "trajectory"`` instead runs the vectorized Monte Carlo above with the
  shot axis as the batch axis — statistically equivalent (chi-squared
  tested by the conformance suite), orders of magnitude faster than the
  per-shot Python loop, but with no bit-parity claim.

Eligibility (Clifford gates, Pauli-diagonal noise) is decided by
:mod:`repro.quantum.dispatch`; a forced ``stabilizer_batched`` request on
ineligible input raises there rather than silently degrading.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.batch import BatchResult
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import (
    SimulationResult,
    _format_clbits,
    renormalize_readout_probabilities,
)
from repro.quantum.stabilizer import (
    ANALYTIC_MAX_MEASURED_QUBITS,
    ANALYTIC_MAX_SYMBOLS,
    CLIFFORD_GATE_NAMES,
    _GATE_ORDER,
    StabilizerSimulator,
)
from repro.telemetry import runtime as telemetry
from repro.utils.rng import as_rng

__all__ = [
    "BatchedCliffordTableau",
    "BatchedStabilizerSimulator",
    "popcount",
]

_ONE = np.uint64(1)
_ZERO = np.uint64(0)

#: Bits per packed word of the symplectic bit matrix.
WORD_BITS = 64


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Portable SWAR popcount for ``uint64`` arrays (no ``bitwise_count``)."""
        v = words.copy()
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        v -= (v >> _ONE) & m1
        v = (v & m2) + ((v >> np.uint64(2)) & m2)
        v = (v + (v >> np.uint64(4))) & m4
        return (v * h01) >> np.uint64(56)


class BatchedCliffordTableau:
    """``B`` CHP tableaus sharing one symplectic block, batched over signs.

    Rows ``0..n-1`` are destabilizer generators and rows ``n..2n-1``
    stabilizer generators, exactly as in the serial
    :class:`~repro.quantum.stabilizer.CliffordTableau`; the X/Z symplectic
    bits are packed into ``uint64`` words of shape ``(2n, W)`` with
    ``W = ceil(n / 64)`` (qubit ``q`` lives in bit ``q % 64`` of word
    ``q // 64``), shared by the whole batch, while the sign exponents ``r``
    carry the batch axis as a ``(B, 2n)`` ``uint8`` array.

    The sharing is valid because every batched operation this class exposes
    keeps the symplectic part common: Clifford gates act identically on all
    elements, Pauli frames (:meth:`apply_pauli_masked`) flip only signs,
    measurements of a common instruction stream are random/deterministic for
    *all* elements simultaneously (randomness enters only through ``r``),
    and reset corrections are sign conditionals.  Feeding elements through
    *different* gate streams would violate the invariant — the batch is a
    batch of sessions running one circuit, not a pool of arbitrary states.
    """

    __slots__ = ("n", "batch_size", "words", "x", "z", "r", "_word", "_shift")

    def __init__(self, num_qubits: int, batch_size: int):
        if num_qubits < 1:
            raise SimulationError("a tableau needs at least one qubit")
        if batch_size < 1:
            raise SimulationError("a batched tableau needs at least one element")
        n = int(num_qubits)
        self.n = n
        self.batch_size = int(batch_size)
        self.words = (n + WORD_BITS - 1) // WORD_BITS
        self.x = np.zeros((2 * n, self.words), dtype=np.uint64)
        self.z = np.zeros((2 * n, self.words), dtype=np.uint64)
        self.r = np.zeros((self.batch_size, 2 * n), dtype=np.uint8)
        qubits = np.arange(n)
        self._word = qubits // WORD_BITS
        self._shift = (qubits % WORD_BITS).astype(np.uint64)
        # Destabilizer row q starts as X_q, stabilizer row n+q as Z_q.
        self.x[qubits, self._word] = _ONE << self._shift
        self.z[n + qubits, self._word] = _ONE << self._shift

    # -- packed-bit access ------------------------------------------------------------
    def _col(self, words: np.ndarray, q: int) -> np.ndarray:
        """The 0/1 bit column of qubit *q* across all rows, as ``uint64``."""
        return (words[:, self._word[q]] >> self._shift[q]) & _ONE

    def _flip_rows(self, label: str, qubits: Sequence[int]) -> np.ndarray:
        """Rows anticommuting with a Pauli string (the sign-flip vector)."""
        flip = np.zeros(2 * self.n, dtype=np.uint8)
        for ch, qubit in zip(label.lower(), qubits):
            if ch == "i":
                continue
            if ch in ("x", "y"):
                flip ^= self._col(self.z, qubit).astype(np.uint8)
            if ch in ("z", "y"):
                flip ^= self._col(self.x, qubit).astype(np.uint8)
            if ch not in ("x", "y", "z"):
                raise SimulationError(f"unknown Pauli character {ch!r}")
        return flip

    # -- gates ------------------------------------------------------------------------
    def h(self, q: int) -> None:
        w, s = self._word[q], self._shift[q]
        xq = (self.x[:, w] >> s) & _ONE
        zq = (self.z[:, w] >> s) & _ONE
        self.r ^= (xq & zq).astype(np.uint8)
        diff = (xq ^ zq) << s
        self.x[:, w] ^= diff
        self.z[:, w] ^= diff

    def s(self, q: int) -> None:
        w, s = self._word[q], self._shift[q]
        xq = (self.x[:, w] >> s) & _ONE
        zq = (self.z[:, w] >> s) & _ONE
        self.r ^= (xq & zq).astype(np.uint8)
        self.z[:, w] ^= xq << s

    def sdg(self, q: int) -> None:
        self.z_gate(q)
        self.s(q)

    def x_gate(self, q: int) -> None:
        self.r ^= self._col(self.z, q).astype(np.uint8)

    def y_gate(self, q: int) -> None:
        self.r ^= (self._col(self.x, q) ^ self._col(self.z, q)).astype(np.uint8)

    def z_gate(self, q: int) -> None:
        self.r ^= self._col(self.x, q).astype(np.uint8)

    def cx(self, control: int, target: int) -> None:
        wc, sc = self._word[control], self._shift[control]
        wt, st = self._word[target], self._shift[target]
        xc = (self.x[:, wc] >> sc) & _ONE
        zc = (self.z[:, wc] >> sc) & _ONE
        xt = (self.x[:, wt] >> st) & _ONE
        zt = (self.z[:, wt] >> st) & _ONE
        self.r ^= (xc & zt & (xt ^ zc ^ _ONE)).astype(np.uint8)
        self.x[:, wt] ^= xc << st
        self.z[:, wc] ^= zt << sc

    def cz(self, control: int, target: int) -> None:
        self.h(target)
        self.cx(control, target)
        self.h(target)

    def cy(self, control: int, target: int) -> None:
        self.sdg(target)
        self.cx(control, target)
        self.s(target)

    def swap(self, a: int, b: int) -> None:
        wa, sa = self._word[a], self._shift[a]
        wb, sb = self._word[b], self._shift[b]
        for words in (self.x, self.z):
            ca = (words[:, wa] >> sa) & _ONE
            cb = (words[:, wb] >> sb) & _ONE
            diff = ca ^ cb
            words[:, wa] ^= diff << sa
            words[:, wb] ^= diff << sb

    def apply_gate(self, name: str, qubits: Sequence[int], repetitions: int = 1) -> None:
        """Apply a named Clifford gate ``repetitions`` times (reduced mod its order)."""
        order = _GATE_ORDER.get(name)
        if order is None:
            raise SimulationError(
                f"gate {name!r} is not Clifford; the stabilizer backend supports "
                f"{sorted(CLIFFORD_GATE_NAMES)}"
            )
        for _ in range(repetitions % order if order > 1 else 0):
            if name == "h":
                self.h(qubits[0])
            elif name == "s":
                self.s(qubits[0])
            elif name == "sdg":
                self.sdg(qubits[0])
            elif name == "x":
                self.x_gate(qubits[0])
            elif name == "y":
                self.y_gate(qubits[0])
            elif name == "z":
                self.z_gate(qubits[0])
            elif name == "cx":
                self.cx(qubits[0], qubits[1])
            elif name == "cz":
                self.cz(qubits[0], qubits[1])
            elif name == "cy":
                self.cy(qubits[0], qubits[1])
            elif name == "swap":
                self.swap(qubits[0], qubits[1])

    # -- Pauli frames (noise injection) ---------------------------------------------------
    def apply_pauli(self, label: str, qubits: Sequence[int]) -> None:
        """Apply a Pauli string as a unitary to every batch element."""
        self.r ^= self._flip_rows(label, qubits)[None, :]

    def apply_pauli_masked(
        self, label: str, qubits: Sequence[int], element_mask: np.ndarray
    ) -> None:
        """Apply a Pauli string only to the batch elements selected by *element_mask*.

        This is the vectorized trajectory-noise primitive: one sampled Pauli
        realisation per element becomes one masked sign-flip per distinct
        label, instead of ``B`` per-shot tableau updates.
        """
        flip = self._flip_rows(label, qubits)
        self.r ^= element_mask.astype(np.uint8)[:, None] & flip[None, :]

    # -- row algebra ----------------------------------------------------------------------
    def _phase_exponents(self, p: int, rows: np.ndarray) -> np.ndarray:
        """Per-row mod-4 phase exponent of multiplying row *p* into *rows*.

        The serial ``_phase_exponent`` g-sum, recast on packed words: per
        qubit the contribution is +1 on the ``P`` bit pattern and −1 on
        ``M``, so the sum is ``popcount(P) − popcount(M)``.
        """
        x1 = self.x[p][None, :]
        z1 = self.z[p][None, :]
        x2 = self.x[rows]
        z2 = self.z[rows]
        plus = (x1 & z1 & ~x2 & z2) | (x1 & ~z1 & x2 & z2) | (~x1 & z1 & x2 & ~z2)
        minus = (x1 & z1 & x2 & ~z2) | (x1 & ~z1 & ~x2 & z2) | (~x1 & z1 & x2 & z2)
        return (
            popcount(plus).sum(axis=-1).astype(np.int64)
            - popcount(minus).sum(axis=-1).astype(np.int64)
        )

    # -- measurement ----------------------------------------------------------------------
    def measure(self, q: int, rng: np.random.Generator) -> np.ndarray:
        """Measure qubit *q* on every element; returns a ``(B,)`` outcome array.

        Because the symplectic block is shared, the measurement is random for
        all elements or deterministic for all elements; only the outcome
        values differ across the batch.
        """
        column = self._col(self.x, q)
        if column[self.n :].any():
            # Random outcome: one common CHP collapse, batched sign rowsums.
            p = self.n + int(np.argmax(column[self.n :]))
            rows = np.flatnonzero(column.astype(bool))
            rows = rows[rows != p]
            if rows.size:
                g = self._phase_exponents(p, rows)
                rh = self.r[:, rows].astype(np.int64)
                rp = self.r[:, p].astype(np.int64)[:, None]
                self.r[:, rows] = (
                    ((2 * rh + 2 * rp + g[None, :]) % 4) // 2
                ).astype(np.uint8)
                self.x[rows] ^= self.x[p]
                self.z[rows] ^= self.z[p]
            d = p - self.n
            self.x[d] = self.x[p]
            self.z[d] = self.z[p]
            self.r[:, d] = self.r[:, p]
            self.x[p] = _ZERO
            self.z[p] = _ZERO
            self.z[p, self._word[q]] = _ONE << self._shift[q]
            outcomes = rng.integers(0, 2, size=self.batch_size).astype(np.uint8)
            self.r[:, p] = outcomes
            return outcomes
        # Deterministic outcome: common scratch accumulation, per-element signs.
        stab_rows = self.n + np.flatnonzero(column[: self.n].astype(bool))
        scratch_x = np.zeros(self.words, dtype=np.uint64)
        scratch_z = np.zeros(self.words, dtype=np.uint64)
        g_total = 0
        for row in stab_rows:
            x1, z1 = self.x[row], self.z[row]
            x2, z2 = scratch_x, scratch_z
            plus = (x1 & z1 & ~x2 & z2) | (x1 & ~z1 & x2 & z2) | (~x1 & z1 & x2 & ~z2)
            minus = (x1 & z1 & x2 & ~z2) | (x1 & ~z1 & ~x2 & z2) | (~x1 & z1 & x2 & z2)
            g_total += int(popcount(plus).sum()) - int(popcount(minus).sum())
            scratch_x = scratch_x ^ x1
            scratch_z = scratch_z ^ z1
        r_sum = self.r[:, stab_rows].sum(axis=1, dtype=np.int64)
        return (((2 * r_sum + g_total) % 4) // 2).astype(np.uint8)

    def reset(self, q: int, rng: np.random.Generator) -> np.ndarray:
        """Reset qubit *q* to ``|0>`` on every element; returns the pre-reset bits."""
        outcomes = self.measure(q, rng)
        rows = np.flatnonzero(self._col(self.z, q).astype(bool))
        if rows.size:
            # X-correction on elements that measured 1 (sign flips only).
            self.r[:, rows] ^= outcomes[:, None]
        return outcomes

    # -- introspection ----------------------------------------------------------------------
    def stabilizer_strings(self, element: int = 0) -> list[str]:
        """One element's stabilizer generators as signed Pauli strings."""
        out = []
        for row in range(self.n, 2 * self.n):
            sign = "-" if self.r[element, row] else "+"
            chars = []
            for q in range(self.n):
                xb = bool((self.x[row, self._word[q]] >> self._shift[q]) & _ONE)
                zb = bool((self.z[row, self._word[q]] >> self._shift[q]) & _ONE)
                chars.append("Y" if xb and zb else "X" if xb else "Z" if zb else "I")
            out.append(sign + "".join(chars))
        return out


class _SamplingPlan:
    """One distinct structure's precomputed per-circuit sampling work.

    Everything the serial ``_sample_analytic`` recomputes per call —
    readout-error folding, clip→renormalize, and the outcome-key strings —
    is a pure function of the distribution, so the batched path hoists it
    here and leaves one ``multinomial`` plus a dict build per circuit.
    """

    __slots__ = ("probabilities", "keys", "empty")

    def __init__(self, distribution, noise_model):
        self.empty = not distribution.measure_map
        if self.empty:
            self.probabilities = None
            self.keys = ()
            return
        probabilities = distribution.probabilities
        if noise_model is not None and noise_model.has_readout_error():
            probabilities = noise_model.apply_readout_errors(
                probabilities, distribution.measured_qubits
            )
            probabilities = renormalize_readout_probabilities(probabilities)
        self.probabilities = probabilities
        width = len(distribution.measured_qubits)
        keys = []
        for index in range(len(probabilities)):
            outcome = format(index, f"0{width}b")
            values = {
                distribution.measure_map[qubit]: int(bit)
                for qubit, bit in zip(distribution.measured_qubits, outcome)
            }
            keys.append(_format_clbits(values, distribution.num_clbits))
        self.keys = tuple(keys)


class BatchedStabilizerSimulator:
    """Batch-of-sessions front-end over the stabilizer engine.

    ``run_batch`` is the contract surface: one :class:`SimulationResult` per
    circuit in submission order, with the analytic path drawing exactly one
    ``multinomial`` per circuit from the same exact distribution the serial
    simulator computes — hence bit-identical counts to
    :class:`~repro.quantum.stabilizer.StabilizerSimulator` (and, on the
    noiseless/Pauli class, to the dense simulators) under a fixed seed.

    Parameters
    ----------
    noise_model:
        Optional Pauli-diagonal noise model (validated per circuit).
    seed:
        Seed or generator for all sampling this instance performs.
    serial:
        Optional serial :class:`StabilizerSimulator` to share analytic
        machinery (and its distribution cache) with; a private one is
        created otherwise.
    """

    def __init__(self, noise_model=None, seed=None, serial: StabilizerSimulator | None = None):
        if serial is None:
            serial = StabilizerSimulator(noise_model=noise_model)
        elif noise_model is not None and serial.noise_model is not noise_model:
            raise SimulationError(
                "pass either a noise model or a serial simulator, not conflicting both"
            )
        self._serial = serial
        self._rng = as_rng(seed)
        # Sampling plans keyed by id() of the serial simulator's cached
        # distribution objects; holding the distribution alongside keeps the
        # id stable for the plan's lifetime.
        self._plans: OrderedDict[int, tuple] = OrderedDict()
        self._plans_max = 256

    @property
    def noise_model(self):
        """The attached noise model (delegated to the serial engine)."""
        return self._serial.noise_model

    @property
    def serial(self) -> StabilizerSimulator:
        """The serial engine whose analytic cache this front-end shares."""
        return self._serial

    # -- public API ------------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        initial_state=None,
        rng=None,
        method: str = "auto",
    ) -> SimulationResult:
        """Execute one circuit (a batch of one; see :meth:`run_batch`)."""
        batch = self.run_batch(
            [circuit], shots=shots, initial_state=initial_state, rng=rng, method=method
        )
        return batch.results[0]

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: int = 1024,
        initial_state=None,
        rng=None,
        method: str = "auto",
    ) -> BatchResult:
        """Execute a batch of circuits, amortising per-structure work.

        ``method`` selects the strategy: ``"auto"`` resolves each distinct
        structure's exact analytic distribution once and samples one
        ``multinomial`` per circuit (bit-identical to the serial stabilizer;
        out-of-envelope circuits fall back to the serial per-circuit path so
        the parity claim stays unconditional), ``"analytic"`` forces the
        analytic path (raises on out-of-envelope circuits), and
        ``"trajectory"`` runs the vectorized Monte Carlo with the shot axis
        as the batch axis (statistically equivalent, no bit-parity claim).
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        if initial_state is not None:
            raise SimulationError(
                "the stabilizer backend always starts from |0...0>; "
                "route circuits with explicit initial states to a dense simulator"
            )
        if method not in ("auto", "analytic", "trajectory"):
            raise SimulationError(f"unknown batched stabilizer method {method!r}")
        generator = as_rng(rng) if rng is not None else self._rng
        serial = self._serial
        hits_before, misses_before = serial.cache_hits, serial.cache_misses
        mark = telemetry.clock_mark()

        # Resolve each circuit's execution plan, keyed by object identity so
        # a repeated circuit object pays its structure analysis exactly once;
        # distinct objects with equal structure still share one distribution
        # through the serial simulator's structure-keyed cache.
        resolved: dict[int, tuple] = {}
        structures = 0
        fallbacks = 0
        results: list[SimulationResult] = []
        for circuit in circuits:
            plan = resolved.get(id(circuit))
            if plan is None:
                plan = self._resolve(circuit, method)
                resolved[id(circuit)] = plan
                if plan[0] == "analytic":
                    structures += 1
                elif plan[0] == "serial":
                    fallbacks += 1
            kind, payload = plan
            if kind == "analytic":
                results.append(self._sample_plan(payload, shots, generator))
            elif kind == "serial":
                results.append(serial.run(circuit, shots=shots, rng=generator))
            else:
                results.append(
                    self._run_trajectories_batched(circuit, shots, generator)
                )
        telemetry.record_span(
            "sim.run_batch",
            "sim",
            start=mark,
            attributes={
                "method": "stabilizer_batched",
                "circuits": len(results),
                "structures": structures,
                "serial_fallbacks": fallbacks,
                "cache_hits": serial.cache_hits - hits_before,
                "cache_misses": serial.cache_misses - misses_before,
            },
        )
        return BatchResult(
            results=results,
            shots=shots,
            metadata={
                "method": "stabilizer_batched",
                "noise_model": None if self.noise_model is None else self.noise_model.name,
                "structures": structures,
                "serial_fallbacks": fallbacks,
                "cache_hits": serial.cache_hits - hits_before,
                "cache_misses": serial.cache_misses - misses_before,
            },
        )

    # -- internals --------------------------------------------------------------------------
    def _resolve(self, circuit: QuantumCircuit, method: str) -> tuple:
        """Eligibility checks plus the (RNG-free) per-structure plan."""
        serial = self._serial
        serial._require_clifford(circuit)
        serial._noise_is_pauli(circuit)
        if method == "trajectory":
            return ("trajectory", circuit)
        analytic = serial._analytic(circuit, allow_fail=(method == "auto"))
        if analytic is None:
            if method == "analytic":
                raise SimulationError(
                    "circuit exceeds the analytic envelope "
                    f"(measured qubits ≤ {ANALYTIC_MAX_MEASURED_QUBITS}, "
                    f"random outcomes ≤ {ANALYTIC_MAX_SYMBOLS})"
                )
            return ("serial", circuit)
        cached = self._plans.get(id(analytic))
        if cached is not None and cached[0] is analytic:
            self._plans.move_to_end(id(analytic))
            return ("analytic", cached[1])
        plan = _SamplingPlan(analytic, self.noise_model)
        self._plans[id(analytic)] = (analytic, plan)
        while len(self._plans) > self._plans_max:
            self._plans.popitem(last=False)
        return ("analytic", plan)

    def _sample_plan(
        self, plan: _SamplingPlan, shots: int, generator: np.random.Generator
    ) -> SimulationResult:
        """One multinomial + dict build (the serial per-call tail, hoisted)."""
        metadata = self._metadata("analytic")
        if plan.empty:
            return SimulationResult(counts={}, shots=0, metadata=metadata)
        samples = generator.multinomial(shots, plan.probabilities)
        counts: dict[str, int] = {}
        keys = plan.keys
        for index in np.flatnonzero(samples):
            key = keys[index]
            counts[key] = counts.get(key, 0) + int(samples[index])
        return SimulationResult(counts=counts, shots=shots, metadata=metadata)

    def _run_trajectories_batched(
        self, circuit: QuantumCircuit, shots: int, generator: np.random.Generator
    ) -> SimulationResult:
        """Vectorized Monte Carlo: the shot axis becomes the tableau batch axis.

        One batched tableau update per instruction replaces the serial
        per-shot Python loop; sampled Pauli errors apply as masked sign
        flips and readout errors as vectorized bit flips.  Statistically
        equivalent to the serial trajectory path (chi-squared-tested), but
        the RNG consumption pattern differs, so no bit-parity claim.
        """
        serial = self._serial
        mixtures = serial._noise_is_pauli(circuit)
        noise_model = serial.noise_model
        metadata = self._metadata("trajectory")
        has_measurements = circuit.has_measurements()
        if not has_measurements or shots == 0:
            return SimulationResult(counts={}, shots=0, metadata=metadata)

        tableau = BatchedCliffordTableau(circuit.num_qubits, shots)
        num_clbits = circuit.num_clbits
        clbit_bits = np.zeros((shots, num_clbits), dtype=np.uint8)
        for instruction in circuit.instructions:
            if instruction.kind == "barrier":
                continue
            if instruction.kind == "gate":
                errors = (
                    noise_model.errors_for(instruction.name, instruction.qubits)
                    if mixtures
                    else ()
                )
                if errors and instruction.repetitions > 1:
                    for _ in range(instruction.repetitions):
                        tableau.apply_gate(instruction.name, instruction.qubits)
                        self._apply_sampled_errors(
                            tableau, instruction, mixtures, generator
                        )
                else:
                    tableau.apply_gate(
                        instruction.name, instruction.qubits, instruction.repetitions
                    )
                    if errors:
                        self._apply_sampled_errors(
                            tableau, instruction, mixtures, generator
                        )
            elif instruction.kind == "reset":
                tableau.reset(instruction.qubits[0], generator)
            elif instruction.kind == "measure":
                for qubit, clbit in zip(instruction.qubits, instruction.clbits):
                    bits = tableau.measure(qubit, generator)
                    if noise_model is not None:
                        readout = noise_model.readout_error_for(qubit)
                        if readout is not None:
                            flip_probability = np.where(
                                bits == 0,
                                readout.prob_1_given_0,
                                readout.prob_0_given_1,
                            )
                            flips = generator.random(shots) < flip_probability
                            bits = bits ^ flips.astype(np.uint8)
                    clbit_bits[:, clbit] = bits

        counts: dict[str, int] = {}
        if num_clbits <= 62:
            # Pack each shot's clbit row into one integer (clbit 0 is the
            # most significant character of the formatted key).
            weights = (1 << np.arange(num_clbits - 1, -1, -1)).astype(np.int64)
            codes = clbit_bits.astype(np.int64) @ weights
            unique, tallies = np.unique(codes, return_counts=True)
            for code, tally in zip(unique, tallies):
                counts[format(int(code), f"0{num_clbits}b")] = int(tally)
        else:  # pragma: no cover - no repository circuit carries 63+ clbits
            for row in clbit_bits:
                key = "".join("1" if bit else "0" for bit in row)
                counts[key] = counts.get(key, 0) + 1
        return SimulationResult(counts=counts, shots=shots, metadata=metadata)

    def _apply_sampled_errors(
        self,
        tableau: BatchedCliffordTableau,
        instruction,
        mixtures: dict,
        generator: np.random.Generator,
    ) -> None:
        """Draw one Pauli realisation per element from each error and apply it."""
        noise_model = self._serial.noise_model
        for error in noise_model.errors_for(instruction.name, instruction.qubits):
            labels, probs = mixtures[id(error)]
            if error.num_qubits == len(instruction.qubits):
                applications = [list(instruction.qubits)]
            else:
                applications = [[qubit] for qubit in instruction.qubits]
            cumulative = np.cumsum(probs)
            for qubits in applications:
                draws = generator.random(tableau.batch_size)
                indices = np.searchsorted(cumulative, draws, side="right")
                np.clip(indices, 0, len(labels) - 1, out=indices)
                for position, label in enumerate(labels):
                    if set(label.lower()) <= {"i"}:
                        continue
                    mask = indices == position
                    if mask.any():
                        tableau.apply_pauli_masked(label, qubits, mask)

    def _metadata(self, mode: str) -> dict:
        return {
            "method": "stabilizer_batched",
            "stabilizer_mode": mode,
            "noise_model": None if self.noise_model is None else self.noise_model.name,
        }
