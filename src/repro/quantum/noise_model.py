"""Noise models attaching quantum errors to circuit instructions.

A :class:`NoiseModel` maps gate names (optionally restricted to specific
qubits) to :class:`QuantumError` channels that the density-matrix simulator
applies after each matching instruction, plus per-qubit
:class:`ReadoutError` matrices applied to measurement outcomes.  This mirrors
the structure of hardware noise models exposed by cloud NISQ providers, which
is what the paper's ``ibm_brisbane`` emulation relies on.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import NoiseModelError
from repro.quantum.channels import KrausChannel

__all__ = ["QuantumError", "ReadoutError", "NoiseModel"]


class QuantumError:
    """A noise process expressed as a CPTP channel attached to a gate.

    Thin wrapper around :class:`~repro.quantum.channels.KrausChannel` that
    records a name for reporting.
    """

    __slots__ = ("channel", "name")

    def __init__(self, channel: KrausChannel, name: str | None = None):
        if not isinstance(channel, KrausChannel):
            raise NoiseModelError("QuantumError requires a KrausChannel")
        self.channel = channel
        self.name = name or channel.name

    @property
    def num_qubits(self) -> int:
        """Number of qubits the error acts on."""
        return self.channel.num_qubits

    def __repr__(self) -> str:
        return f"QuantumError({self.name!r}, num_qubits={self.num_qubits})"


@dataclass(frozen=True)
class ReadoutError:
    """Classical readout (assignment) error for a single qubit.

    ``prob_1_given_0`` is the probability of reading 1 when the qubit is in
    ``|0>``; ``prob_0_given_1`` is the probability of reading 0 when the qubit
    is in ``|1>``.
    """

    prob_1_given_0: float
    prob_0_given_1: float

    def __post_init__(self):
        for name in ("prob_1_given_0", "prob_0_given_1"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise NoiseModelError(f"{name} must lie in [0, 1], got {value}")

    @property
    def assignment_matrix(self) -> np.ndarray:
        """2x2 matrix ``A[measured, true]`` of assignment probabilities."""
        return np.array(
            [
                [1 - self.prob_1_given_0, self.prob_0_given_1],
                [self.prob_1_given_0, 1 - self.prob_0_given_1],
            ]
        )

    @classmethod
    def symmetric(cls, probability: float) -> "ReadoutError":
        """Readout error with the same flip probability in both directions."""
        return cls(probability, probability)


class NoiseModel:
    """Collection of gate errors and readout errors.

    Gate errors are looked up first by ``(gate_name, qubits)`` and then by
    ``gate_name`` alone (the "all qubits" default), so device models can give
    every qubit its own calibration while simple models attach one error per
    gate name.
    """

    #: Process-wide counter handing every model a unique cache token
    #: (``id()`` would be reusable after garbage collection).
    _token_counter = itertools.count()

    def __init__(self, name: str = "noise_model"):
        self.name = name
        self._default_errors: dict[str, list[QuantumError]] = {}
        self._local_errors: dict[tuple[str, tuple[int, ...]], list[QuantumError]] = {}
        self._readout_errors: dict[int, ReadoutError] = {}
        self._default_readout: ReadoutError | None = None
        self._version = 0
        self._cache_token = next(NoiseModel._token_counter)

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every ``add_*`` call.

        Compiled-propagator caches key on ``(cache_token, version)`` so that
        in-place additions invalidate previously compiled circuits.
        """
        return self._version

    @property
    def cache_token(self) -> int:
        """Process-unique identity token for compiled-propagator cache keys.

        Unlike ``id()``, tokens are never reused, so a cache outliving this
        model can never serve its compiled superoperators for another model.
        Copies and unpickled instances re-issue a fresh token (see
        :meth:`__setstate__`), so they never alias their source either.
        """
        return self._cache_token

    def __setstate__(self, state: dict) -> None:
        # Runs for unpickling and for copy/deepcopy (via __reduce_ex__): a
        # restored model must not share its source's cache token, or two
        # models that diverge after the copy would alias each other's
        # compiled superoperators in a shared cache.  The error containers
        # are unshared too — under copy.copy the state dict holds the
        # *source's* dicts, and mutating them through the copy would stale
        # the source's compiled propagators without bumping its version.
        self.__dict__.update(state)
        self._default_errors = {
            name: list(errors) for name, errors in self._default_errors.items()
        }
        self._local_errors = {
            key: list(errors) for key, errors in self._local_errors.items()
        }
        self._readout_errors = dict(self._readout_errors)
        self._cache_token = next(NoiseModel._token_counter)

    # -- construction ------------------------------------------------------------
    def add_all_qubit_error(
        self, error: "QuantumError | KrausChannel", gate_names: Sequence[str] | str
    ) -> "NoiseModel":
        """Attach *error* to every occurrence of the named gates."""
        error = error if isinstance(error, QuantumError) else QuantumError(error)
        names = [gate_names] if isinstance(gate_names, str) else list(gate_names)
        for name in names:
            self._default_errors.setdefault(name.lower(), []).append(error)
        self._version += 1
        return self

    def add_qubit_error(
        self,
        error: "QuantumError | KrausChannel",
        gate_names: Sequence[str] | str,
        qubits: Sequence[int],
    ) -> "NoiseModel":
        """Attach *error* to the named gates only when they act on *qubits*."""
        error = error if isinstance(error, QuantumError) else QuantumError(error)
        names = [gate_names] if isinstance(gate_names, str) else list(gate_names)
        key_qubits = tuple(int(q) for q in qubits)
        for name in names:
            self._local_errors.setdefault((name.lower(), key_qubits), []).append(error)
        self._version += 1
        return self

    def add_readout_error(
        self, error: ReadoutError, qubit: int | None = None
    ) -> "NoiseModel":
        """Attach a readout error to one qubit, or to all qubits if *qubit* is None."""
        if qubit is None:
            self._default_readout = error
        else:
            self._readout_errors[int(qubit)] = error
        self._version += 1
        return self

    # -- queries ---------------------------------------------------------------------
    def errors_for(self, gate_name: str, qubits: Sequence[int]) -> list[QuantumError]:
        """All errors that apply to an instruction with this name and qubits."""
        key = (gate_name.lower(), tuple(int(q) for q in qubits))
        errors = list(self._local_errors.get(key, ()))
        errors.extend(self._default_errors.get(gate_name.lower(), ()))
        return errors

    def readout_error_for(self, qubit: int) -> ReadoutError | None:
        """The readout error for *qubit*, falling back to the all-qubit default."""
        return self._readout_errors.get(int(qubit), self._default_readout)

    def has_readout_error(self) -> bool:
        """True if any readout error is configured."""
        return bool(self._readout_errors) or self._default_readout is not None

    def iter_errors(self):
        """Yield every attached gate error as ``(gate_name, qubits, error)``.

        ``qubits`` is ``None`` for all-qubit (default) errors and the
        restricting qubit tuple for local errors.  Used by the dispatch
        layer's static Pauli-eligibility analysis and by
        :func:`repro.quantum.dispatch.pauli_twirl_noise_model`.
        """
        for gate_name, errors in self._default_errors.items():
            for error in errors:
                yield gate_name, None, error
        for (gate_name, qubits), errors in self._local_errors.items():
            for error in errors:
                yield gate_name, qubits, error

    def iter_readout_errors(self):
        """Yield every readout error as ``(qubit, error)`` (``None`` = default)."""
        if self._default_readout is not None:
            yield None, self._default_readout
        for qubit, error in self._readout_errors.items():
            yield qubit, error

    @property
    def noisy_gate_names(self) -> set[str]:
        """Names of gates that have at least one attached error."""
        names = set(self._default_errors)
        names.update(name for name, _ in self._local_errors)
        return names

    def is_ideal(self) -> bool:
        """True if the model contains no gate or readout errors."""
        return not (self._default_errors or self._local_errors or self.has_readout_error())

    def apply_readout_errors(
        self, probabilities: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        """Transform outcome probabilities over *qubits* through the assignment matrices.

        *probabilities* is indexed by the big-endian bitstring over *qubits*
        (qubit ``qubits[0]`` is the most significant bit).
        """
        probs = np.asarray(probabilities, dtype=float)
        num = len(qubits)
        if probs.shape[0] != 2**num:
            raise NoiseModelError(
                f"probability vector of length {probs.shape[0]} does not match "
                f"{num} measured qubits"
            )
        tensor = probs.reshape([2] * num) if num else probs
        for axis, qubit in enumerate(qubits):
            error = self.readout_error_for(qubit)
            if error is None:
                continue
            matrix = error.assignment_matrix
            tensor = np.moveaxis(
                np.tensordot(matrix, tensor, axes=([1], [axis])), 0, axis
            )
        return tensor.reshape(-1)

    def __repr__(self) -> str:
        return (
            f"NoiseModel(name={self.name!r}, gates={sorted(self.noisy_gate_names)}, "
            f"readout={self.has_readout_error()})"
        )
