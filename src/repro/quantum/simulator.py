"""Circuit simulators: ideal statevector and noise-aware density matrix.

:class:`StatevectorSimulator` executes measurement-bearing circuits exactly
and samples shot counts from the final distribution; it is the "ideal
simulation" reference the paper compares hardware results against.

:class:`DensityMatrixSimulator` additionally applies a
:class:`~repro.quantum.noise_model.NoiseModel` — per-gate Kraus channels and
readout assignment errors — which is how the repository reproduces the
``ibm_brisbane`` executions of the paper's evaluation section without access
to the hardware.

Both simulators expose two execution paths:

* :meth:`~StatevectorSimulator.run` — the sequential reference path, applying
  one instruction at a time;
* :meth:`~StatevectorSimulator.run_batch` — the batched path, which folds each
  circuit into a cached propagator (see :mod:`repro.quantum.batch`) and
  samples every circuit's counts with a single multinomial draw.  The batched
  path computes the same final distribution as the sequential path up to
  floating-point rounding; parity is asserted by
  ``tests/quantum/test_batch.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.batch import (
    BatchResult,
    MAX_SUPEROP_QUBITS,
    MAX_UNITARY_QUBITS,
    PropagatorCache,
    RESET_KRAUS,
    compile_channel,
    compile_unitary,
    measurements_are_terminal,
)
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.density import DensityMatrix
from repro.quantum.noise_model import NoiseModel
from repro.quantum.operators import Operator
from repro.quantum.states import Statevector
from repro.telemetry import runtime as telemetry
from repro.utils.rng import as_rng

__all__ = [
    "BatchResult",
    "SimulationResult",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "renormalize_readout_probabilities",
]


def renormalize_readout_probabilities(probabilities: np.ndarray) -> np.ndarray:
    """Clip and renormalize a readout-folded outcome distribution.

    Confusion-matrix folding (:meth:`NoiseModel.apply_readout_errors`) can
    leave tiny negative entries from floating-point cancellation; every
    backend that samples from a folded distribution must repair it the same
    way — clip to zero, then divide by the sum — or fixed-seed multinomial
    draws diverge between backends.  This helper is that single byte-exact
    sequence, shared by the dense, stabilizer and batched-stabilizer
    samplers (parity asserted by the cross-backend conformance suite).
    """
    probabilities = np.clip(probabilities, 0.0, None)
    total = probabilities.sum()
    if total <= 0.0:
        raise SimulationError(
            "readout-error folding produced an empty distribution; "
            "check the confusion matrix for invalid entries"
        )
    return probabilities / total


@dataclass
class SimulationResult:
    """Outcome of running a circuit on a simulator.

    Attributes
    ----------
    counts:
        Histogram of classical-register values, keyed by big-endian bitstring
        over the circuit's classical bits (clbit 0 is the leftmost character).
        Empty when the circuit has no measurements.
    shots:
        Number of sampled shots.
    statevector:
        Final pure state (statevector simulator, measurement-free circuits).
    density_matrix:
        Final mixed state (density-matrix simulator).
    metadata:
        Simulator-specific extras (e.g. whether noise was applied).
    """

    counts: dict[str, int]
    shots: int
    statevector: Statevector | None = None
    density_matrix: DensityMatrix | None = None
    metadata: dict = field(default_factory=dict)

    def probabilities(self) -> dict[str, float]:
        """Counts normalised to relative frequencies."""
        total = sum(self.counts.values())
        if total == 0:
            return {}
        return {key: value / total for key, value in self.counts.items()}

    def most_frequent(self) -> str:
        """The most frequently observed classical outcome.

        Ties are broken deterministically towards the lexicographically
        smallest bitstring, independent of dict insertion order — so the
        answer is stable across simulator backends, Python versions and
        platforms (asserted by ``tests/quantum/test_simulation_result.py``).
        """
        if not self.counts:
            raise SimulationError("result contains no counts")
        return min(self.counts.items(), key=lambda item: (-item[1], item[0]))[0]


def _format_clbits(values: dict[int, int], num_clbits: int) -> str:
    """Render a clbit->value mapping as a big-endian bitstring over all clbits."""
    bits = ["0"] * num_clbits
    for clbit, value in values.items():
        bits[clbit] = "1" if value else "0"
    return "".join(bits)


class StatevectorSimulator:
    """Exact, noise-free circuit execution on statevectors.

    Parameters
    ----------
    seed:
        Optional seed (or :class:`numpy.random.Generator`) used for all
        measurement sampling performed by this simulator instance.
    cache:
        Optional externally owned :class:`~repro.quantum.batch.PropagatorCache`
        shared with other simulators (serial execution only).
    """

    def __init__(self, seed=None, cache: PropagatorCache | None = None):
        self._rng = as_rng(seed)
        self._cache = cache if cache is not None else PropagatorCache()

    # -- public API -------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        initial_state: Statevector | None = None,
        rng=None,
    ) -> SimulationResult:
        """Execute *circuit* and sample *shots* measurement outcomes.

        Circuits whose measurements are all terminal (no gate touches a
        measured qubit afterwards) are simulated once and sampled
        analytically; circuits with mid-circuit measurement or reset fall back
        to per-shot Monte Carlo execution.
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        generator = as_rng(rng) if rng is not None else self._rng
        state = self._initial_state(circuit, initial_state)

        if not circuit.has_measurements() and not self._has_nonunitary(circuit):
            final = self._apply_gates(circuit, state)
            return SimulationResult(counts={}, shots=0, statevector=final)

        if self._measurements_are_terminal(circuit) and not self._has_nonunitary(circuit):
            return self._run_terminal(circuit, state, shots, generator)
        return self._run_per_shot(circuit, state, shots, generator)

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: int = 1024,
        initial_state: Statevector | None = None,
        rng=None,
    ) -> BatchResult:
        """Execute a sequence of circuits through the batched (compiled) path.

        Each eligible circuit — terminal measurements, no resets, at most
        :data:`~repro.quantum.batch.MAX_UNITARY_QUBITS` qubits — is folded
        into a single cached unitary and its counts are sampled with one
        multinomial draw; ineligible circuits fall back to :meth:`run`.

        Parameters
        ----------
        circuits:
            The circuits to execute, in order.
        shots:
            Shots sampled per circuit.
        initial_state:
            Optional common initial state (defaults to ``|0...0>``).
        rng:
            Seed or generator for all sampling in this batch; defaults to the
            simulator's own generator.

        Returns
        -------
        BatchResult
            One :class:`SimulationResult` per circuit, in submission order.
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        generator = as_rng(rng) if rng is not None else self._rng
        hits_before, misses_before = self._cache.hits, self._cache.misses
        mark = telemetry.clock_mark()
        results = []
        for circuit in circuits:
            if (
                circuit.num_qubits > MAX_UNITARY_QUBITS
                or self._has_nonunitary(circuit)
                or not self._measurements_are_terminal(circuit)
            ):
                results.append(
                    self.run(circuit, shots=shots, initial_state=initial_state, rng=generator)
                )
                continue
            compiled = compile_unitary(circuit, self._cache)
            state = self._initial_state(circuit, initial_state)
            final = Statevector(compiled.matrix @ state.vector)
            results.append(
                self._sample_terminal(
                    final,
                    compiled.measure_map,
                    circuit.num_clbits,
                    shots,
                    generator,
                )
            )
        telemetry.record_span(
            "sim.run_batch",
            "sim",
            start=mark,
            attributes={
                "method": "statevector_batch",
                "circuits": len(results),
                "cache_hits": self._cache.hits - hits_before,
                "cache_misses": self._cache.misses - misses_before,
            },
        )
        return BatchResult(
            results=results,
            shots=shots,
            metadata={
                "method": "statevector_batch",
                "cache_hits": self._cache.hits - hits_before,
                "cache_misses": self._cache.misses - misses_before,
            },
        )

    def final_statevector(
        self, circuit: QuantumCircuit, initial_state: Statevector | None = None
    ) -> Statevector:
        """Final statevector of a measurement-free circuit."""
        if circuit.has_measurements() or self._has_nonunitary(circuit):
            raise SimulationError(
                "final_statevector requires a measurement- and reset-free circuit"
            )
        return self._apply_gates(circuit, self._initial_state(circuit, initial_state))

    # -- internals -------------------------------------------------------------------
    @staticmethod
    def _initial_state(
        circuit: QuantumCircuit, initial_state: Statevector | None
    ) -> Statevector:
        if initial_state is None:
            return Statevector.zero_state(circuit.num_qubits)
        state = Statevector(initial_state)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has "
                f"{circuit.num_qubits}"
            )
        return state

    @staticmethod
    def _has_nonunitary(circuit: QuantumCircuit) -> bool:
        return any(instruction.kind == "reset" for instruction in circuit.instructions)

    @staticmethod
    def _measurements_are_terminal(circuit: QuantumCircuit) -> bool:
        """True if no gate or reset acts on a qubit after it has been measured."""
        return measurements_are_terminal(circuit)

    @staticmethod
    def _apply_gates(circuit: QuantumCircuit, state: Statevector) -> Statevector:
        for instruction in circuit.instructions:
            if instruction.kind == "gate" and instruction.gate is not None:
                operator = Operator(instruction.gate.matrix)
                for _ in range(instruction.repetitions):
                    state = state.apply_operator(operator, instruction.qubits)
            elif instruction.kind in ("barrier", "measure"):
                continue
            else:
                raise SimulationError(
                    f"unexpected instruction {instruction.kind!r} in unitary-only path"
                )
        return state

    def _run_terminal(
        self,
        circuit: QuantumCircuit,
        state: Statevector,
        shots: int,
        generator: np.random.Generator,
    ) -> SimulationResult:
        # Apply every gate, ignoring the (terminal) measurements, then sample.
        final = state
        measure_map: dict[int, int] = {}
        for instruction in circuit.instructions:
            if instruction.kind == "gate" and instruction.gate is not None:
                operator = Operator(instruction.gate.matrix)
                for _ in range(instruction.repetitions):
                    final = final.apply_operator(operator, instruction.qubits)
            elif instruction.kind == "measure":
                for qubit, clbit in zip(instruction.qubits, instruction.clbits):
                    measure_map[qubit] = clbit

        return self._sample_terminal(
            final, measure_map, circuit.num_clbits, shots, generator
        )

    @staticmethod
    def _sample_terminal(
        final: Statevector,
        measure_map: dict[int, int],
        num_clbits: int,
        shots: int,
        generator: np.random.Generator,
    ) -> SimulationResult:
        """Sample counts from a final state under a terminal measurement map."""
        if not measure_map:
            return SimulationResult(counts={}, shots=0, statevector=final)
        measured_qubits = sorted(measure_map)
        qubit_counts = final.sample_counts(shots, qubits=measured_qubits, rng=generator)
        counts: dict[str, int] = {}
        for outcome, count in qubit_counts.items():
            values = {
                measure_map[qubit]: int(bit)
                for qubit, bit in zip(measured_qubits, outcome)
            }
            key = _format_clbits(values, num_clbits)
            counts[key] = counts.get(key, 0) + count
        return SimulationResult(
            counts=counts, shots=shots, statevector=final,
            metadata={"method": "statevector", "terminal_sampling": True},
        )

    def _run_per_shot(
        self,
        circuit: QuantumCircuit,
        state: Statevector,
        shots: int,
        generator: np.random.Generator,
    ) -> SimulationResult:
        counts: dict[str, int] = {}
        for _ in range(shots):
            current = state
            clbit_values: dict[int, int] = {}
            for instruction in circuit.instructions:
                if instruction.kind == "gate" and instruction.gate is not None:
                    operator = Operator(instruction.gate.matrix)
                    for _ in range(instruction.repetitions):
                        current = current.apply_operator(operator, instruction.qubits)
                elif instruction.kind == "measure":
                    outcome, current = current.measure(instruction.qubits, rng=generator)
                    for bit_char, clbit in zip(outcome, instruction.clbits):
                        clbit_values[clbit] = int(bit_char)
                elif instruction.kind == "reset":
                    outcome, current = current.measure(instruction.qubits, rng=generator)
                    if outcome == "1":
                        current = current.apply_pauli("X", instruction.qubits)
                elif instruction.kind == "barrier":
                    continue
            key = _format_clbits(clbit_values, circuit.num_clbits)
            counts[key] = counts.get(key, 0) + 1
        return SimulationResult(
            counts=counts, shots=shots,
            metadata={"method": "statevector", "terminal_sampling": False},
        )


class DensityMatrixSimulator:
    """Noise-aware circuit execution on density matrices.

    Parameters
    ----------
    noise_model:
        Optional :class:`~repro.quantum.noise_model.NoiseModel`; omit for an
        ideal (but still mixed-state) simulation.
    seed:
        Seed or generator for measurement sampling.
    cache:
        Optional externally owned :class:`~repro.quantum.batch.PropagatorCache`
        shared with other simulators (serial execution only; compiled
        superoperators stay correct across owners because cache keys embed
        the noise model's identity token).
    """

    def __init__(
        self,
        noise_model: NoiseModel | None = None,
        seed=None,
        cache: PropagatorCache | None = None,
    ):
        self._noise_model = noise_model
        self._rng = as_rng(seed)
        self._cache = cache if cache is not None else PropagatorCache()

    @property
    def noise_model(self) -> NoiseModel | None:
        """The noise model applied to every gate (settable)."""
        return self._noise_model

    @noise_model.setter
    def noise_model(self, noise_model: NoiseModel | None) -> None:
        # Compiled superoperators bake the noise channels in, so swapping the
        # model invalidates every cached propagator.
        if noise_model is not self._noise_model:
            self._cache.clear()
        self._noise_model = noise_model

    # -- public API --------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        initial_state: "DensityMatrix | Statevector | None" = None,
        rng=None,
    ) -> SimulationResult:
        """Execute *circuit* under the configured noise model and sample counts.

        Measurements must be terminal (the protocol circuits satisfy this);
        mid-circuit measurement raises :class:`SimulationError`.
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        generator = as_rng(rng) if rng is not None else self._rng
        state = self._initial_state(circuit, initial_state)

        if not StatevectorSimulator._measurements_are_terminal(circuit):
            raise SimulationError(
                "DensityMatrixSimulator supports only terminal measurements"
            )

        measure_map: dict[int, int] = {}
        for instruction in circuit.instructions:
            if instruction.kind == "gate" and instruction.gate is not None:
                for _ in range(instruction.repetitions):
                    state = self._apply_gate(state, instruction)
            elif instruction.kind == "reset":
                state = self._apply_reset(state, instruction.qubits[0])
            elif instruction.kind == "measure":
                for qubit, clbit in zip(instruction.qubits, instruction.clbits):
                    measure_map[qubit] = clbit
            elif instruction.kind == "barrier":
                continue

        return self._sample_measurements(
            state, measure_map, circuit.num_clbits, shots, generator
        )

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: int = 1024,
        initial_state: "DensityMatrix | Statevector | None" = None,
        rng=None,
    ) -> BatchResult:
        """Execute a sequence of circuits through the batched (compiled) path.

        Each eligible circuit — terminal measurements, at most
        :data:`~repro.quantum.batch.MAX_SUPEROP_QUBITS` qubits — is folded
        into a single cached superoperator (gates, attached noise-model
        errors and resets included) and its counts are sampled with one
        multinomial draw.  Runs of repeated instructions, such as the η
        identity gates of the paper's channel emulation, are collapsed with
        ``matrix_power``, so cost grows logarithmically rather than linearly
        with η.  Circuits too large for a superoperator fall back to
        :meth:`run`.

        Parameters
        ----------
        circuits:
            The circuits to execute, in order.
        shots:
            Shots sampled per circuit.
        initial_state:
            Optional common initial state (defaults to ``|0...0>``).
        rng:
            Seed or generator for all sampling in this batch; defaults to the
            simulator's own generator.

        Returns
        -------
        BatchResult
            One :class:`SimulationResult` per circuit, in submission order.
        """
        if shots < 0:
            raise SimulationError(f"shots must be non-negative, got {shots}")
        generator = as_rng(rng) if rng is not None else self._rng
        hits_before, misses_before = self._cache.hits, self._cache.misses
        mark = telemetry.clock_mark()
        results = []
        for circuit in circuits:
            if not StatevectorSimulator._measurements_are_terminal(circuit):
                raise SimulationError(
                    "DensityMatrixSimulator supports only terminal measurements"
                )
            if circuit.num_qubits > MAX_SUPEROP_QUBITS:
                results.append(
                    self.run(circuit, shots=shots, initial_state=initial_state, rng=generator)
                )
                continue
            compiled = compile_channel(circuit, self.noise_model, self._cache)
            state = self._initial_state(circuit, initial_state)
            final = DensityMatrix(compiled.propagate(state.matrix), validate=False)
            results.append(
                self._sample_measurements(
                    final,
                    compiled.measure_map,
                    circuit.num_clbits,
                    shots,
                    generator,
                )
            )
        telemetry.record_span(
            "sim.run_batch",
            "sim",
            start=mark,
            attributes={
                "method": "density_matrix_batch",
                "circuits": len(results),
                "cache_hits": self._cache.hits - hits_before,
                "cache_misses": self._cache.misses - misses_before,
            },
        )
        return BatchResult(
            results=results,
            shots=shots,
            metadata={
                "method": "density_matrix_batch",
                "noise_model": None if self.noise_model is None else self.noise_model.name,
                "cache_hits": self._cache.hits - hits_before,
                "cache_misses": self._cache.misses - misses_before,
            },
        )

    def _sample_measurements(
        self,
        state: DensityMatrix,
        measure_map: dict[int, int],
        num_clbits: int,
        shots: int,
        generator: np.random.Generator,
    ) -> SimulationResult:
        """Sample counts (readout errors included) from a final mixed state.

        Seed handling: *generator* is always the explicit
        :class:`numpy.random.Generator` resolved by the calling ``run`` /
        ``run_batch`` — the caller's ``rng`` argument when given, else the
        simulator's own seeded stream.  Exactly one ``multinomial`` draw is
        consumed per sampled circuit, so a fixed seed yields bit-identical
        counts across runs, platforms and the sequential/batched/stabilizer
        execution paths (asserted by
        ``tests/quantum/test_simulation_result.py`` and the cross-backend
        conformance suite).
        """
        if not measure_map:
            return SimulationResult(
                counts={}, shots=0, density_matrix=state,
                metadata=self._metadata(),
            )

        measured_qubits = sorted(measure_map)
        probabilities = state.probabilities(measured_qubits)
        if self.noise_model is not None and self.noise_model.has_readout_error():
            probabilities = self.noise_model.apply_readout_errors(
                probabilities, measured_qubits
            )
            probabilities = renormalize_readout_probabilities(probabilities)

        samples = generator.multinomial(shots, probabilities)
        counts: dict[str, int] = {}
        width = len(measured_qubits)
        for index, count in enumerate(samples):
            if count == 0:
                continue
            outcome = format(index, f"0{width}b")
            values = {
                measure_map[qubit]: int(bit)
                for qubit, bit in zip(measured_qubits, outcome)
            }
            key = _format_clbits(values, num_clbits)
            counts[key] = counts.get(key, 0) + int(count)
        return SimulationResult(
            counts=counts, shots=shots, density_matrix=state, metadata=self._metadata(),
        )

    def final_density_matrix(
        self,
        circuit: QuantumCircuit,
        initial_state: "DensityMatrix | Statevector | None" = None,
    ) -> DensityMatrix:
        """Final mixed state of the circuit (measurements ignored)."""
        state = self._initial_state(circuit, initial_state)
        for instruction in circuit.instructions:
            if instruction.kind == "gate" and instruction.gate is not None:
                for _ in range(instruction.repetitions):
                    state = self._apply_gate(state, instruction)
            elif instruction.kind == "reset":
                state = self._apply_reset(state, instruction.qubits[0])
        return state

    # -- internals -----------------------------------------------------------------
    @staticmethod
    def _initial_state(
        circuit: QuantumCircuit, initial_state: "DensityMatrix | Statevector | None"
    ) -> DensityMatrix:
        if initial_state is None:
            return DensityMatrix.zero_state(circuit.num_qubits)
        state = (
            DensityMatrix(initial_state)
            if not isinstance(initial_state, DensityMatrix)
            else initial_state
        )
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has "
                f"{circuit.num_qubits}"
            )
        return state

    def _metadata(self) -> dict:
        return {
            "method": "density_matrix",
            "noise_model": None if self.noise_model is None else self.noise_model.name,
        }

    def _apply_gate(self, state: DensityMatrix, instruction: Instruction) -> DensityMatrix:
        state = state.evolve(Operator(instruction.gate.matrix), instruction.qubits)
        if self.noise_model is None:
            return state
        for error in self.noise_model.errors_for(instruction.name, instruction.qubits):
            state = self._apply_error(state, error, instruction.qubits)
        return state

    @staticmethod
    def _apply_error(state: DensityMatrix, error, qubits: Sequence[int]) -> DensityMatrix:
        if error.num_qubits == len(qubits):
            return error.channel.apply(state, qubits)
        if error.num_qubits == 1:
            for qubit in qubits:
                state = error.channel.apply(state, [qubit])
            return state
        raise SimulationError(
            f"error on {error.num_qubits} qubits cannot be applied to a "
            f"{len(qubits)}-qubit instruction"
        )

    @staticmethod
    def _apply_reset(state: DensityMatrix, qubit: int) -> DensityMatrix:
        return state.apply_kraus(RESET_KRAUS, [qubit])
