"""From-scratch quantum simulation substrate.

This subpackage provides everything the protocol layer needs to simulate the
UA-DI-QSDC paper's quantum operations without external quantum SDKs:

* :class:`~repro.quantum.states.Statevector` and
  :class:`~repro.quantum.density.DensityMatrix` state representations;
* :class:`~repro.quantum.operators.Operator` and the named gate library in
  :mod:`repro.quantum.gates`;
* :class:`~repro.quantum.circuit.QuantumCircuit` with statevector and
  density-matrix simulators in :mod:`repro.quantum.simulator`;
* Kraus noise channels and :class:`~repro.quantum.noise_model.NoiseModel`;
* Bell-state utilities and CHSH estimation in :mod:`repro.quantum.bell`;
* projective and Bell-state measurement helpers in
  :mod:`repro.quantum.measurement`;
* a CHP stabilizer tableau fast path in :mod:`repro.quantum.stabilizer`
  with static Clifford/Pauli eligibility analysis and backend routing in
  :mod:`repro.quantum.dispatch`.

Qubit-ordering convention: **big-endian**.  Qubit 0 is the leftmost character
of a result bitstring and the most significant bit of a basis-state index, so
``Statevector.from_label("01")`` has qubit 0 in ``|0>`` and qubit 1 in ``|1>``.
"""

from repro.quantum.bell import (
    BellState,
    bell_state,
    bell_states,
    chsh_operator,
    chsh_value,
    CLASSICAL_CHSH_BOUND,
    TSIRELSON_BOUND,
)
from repro.quantum.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_channel,
)
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.density import DensityMatrix
from repro.quantum.gates import Gate, standard_gates
from repro.quantum.measurement import (
    BellMeasurementResult,
    bell_measurement,
    equatorial_observable,
    measure_observable,
    projective_measurement,
)
from repro.quantum.noise_model import NoiseModel, QuantumError, ReadoutError
from repro.quantum.operators import Operator, PAULI_I, PAULI_X, PAULI_Y, PAULI_Z
from repro.quantum.random import haar_random_state, haar_random_unitary, random_pauli
from repro.quantum.batch import (
    BatchResult,
    PropagatorCache,
    circuit_structure_key,
)
from repro.quantum.simulator import (
    DensityMatrixSimulator,
    SimulationResult,
    StatevectorSimulator,
)
from repro.quantum.stabilizer import CliffordTableau, StabilizerSimulator
from repro.quantum.dispatch import (
    BACKEND_CHOICES,
    DispatchDecision,
    pauli_mixture,
    pauli_twirl_channel,
    pauli_twirl_noise_model,
    select_backend,
)
from repro.quantum.states import Statevector

__all__ = [
    "BACKEND_CHOICES",
    "CliffordTableau",
    "DispatchDecision",
    "StabilizerSimulator",
    "pauli_mixture",
    "pauli_twirl_channel",
    "pauli_twirl_noise_model",
    "select_backend",
    "BatchResult",
    "PropagatorCache",
    "circuit_structure_key",
    "BellState",
    "bell_state",
    "bell_states",
    "chsh_operator",
    "chsh_value",
    "CLASSICAL_CHSH_BOUND",
    "TSIRELSON_BOUND",
    "KrausChannel",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "depolarizing_channel",
    "identity_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "thermal_relaxation_channel",
    "Instruction",
    "QuantumCircuit",
    "DensityMatrix",
    "Gate",
    "standard_gates",
    "BellMeasurementResult",
    "bell_measurement",
    "equatorial_observable",
    "measure_observable",
    "projective_measurement",
    "NoiseModel",
    "QuantumError",
    "ReadoutError",
    "Operator",
    "PAULI_I",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "haar_random_state",
    "haar_random_unitary",
    "random_pauli",
    "DensityMatrixSimulator",
    "SimulationResult",
    "StatevectorSimulator",
    "Statevector",
]
