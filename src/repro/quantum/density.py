"""Mixed-state (density matrix) representation of qubit registers.

The noisy simulations of the UA-DI-QSDC protocol (NISQ device model, the
η-identity-gate quantum channel, attack models that discard information)
require mixed states.  :class:`DensityMatrix` provides the standard algebra:
unitary evolution, Kraus-channel application, partial trace, purity, fidelity,
von Neumann entropy and computational-basis sampling.

The qubit order convention matches :class:`repro.quantum.states.Statevector`
(big-endian).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError, NonPhysicalStateError
from repro.quantum.operators import Operator, embed_operator
from repro.quantum.states import Statevector
from repro.utils.rng import as_rng

__all__ = ["DensityMatrix"]

_ATOL = 1e-8


class DensityMatrix:
    """An n-qubit mixed quantum state.

    Parameters
    ----------
    data:
        A ``2**n x 2**n`` complex matrix, a :class:`Statevector` (converted to
        the pure-state projector) or another :class:`DensityMatrix`.
    validate:
        If True (default), require Hermiticity and unit trace.  Positivity is
        checked lazily (it is comparatively expensive) via
        :meth:`require_physical`.
    """

    __slots__ = ("_matrix", "_num_qubits")

    def __init__(self, data, validate: bool = True):
        if isinstance(data, DensityMatrix):
            matrix = data._matrix.copy()
        elif isinstance(data, Statevector):
            vec = data.vector
            matrix = np.outer(vec, vec.conj())
        else:
            matrix = np.array(data, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise DimensionError(f"density matrix must be square, got {matrix.shape}")
        num_qubits = int(round(math.log2(matrix.shape[0])))
        if 2**num_qubits != matrix.shape[0]:
            raise DimensionError(
                f"density matrix dimension {matrix.shape[0]} is not a power of two"
            )
        if validate:
            if not np.allclose(matrix, matrix.conj().T, atol=_ATOL):
                raise NonPhysicalStateError("density matrix is not Hermitian")
            trace = complex(np.trace(matrix))
            if not math.isclose(trace.real, 1.0, abs_tol=1e-6) or abs(trace.imag) > 1e-6:
                raise NonPhysicalStateError(
                    f"density matrix trace is {trace:.6g}, expected 1"
                )
        self._matrix = matrix
        self._num_qubits = num_qubits

    # -- constructors ----------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """The all-``|0>`` pure state as a density matrix."""
        return cls(Statevector.zero_state(num_qubits))

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """The maximally mixed state ``I / 2**n``."""
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, validate=False)

    # -- accessors ---------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (not copied)."""
        return self._matrix

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self._matrix.shape[0]

    def trace(self) -> complex:
        """Matrix trace (should be 1 for physical states)."""
        return complex(np.trace(self._matrix))

    def purity(self) -> float:
        """``Tr(rho^2)``; 1 for pure states, ``1/2**n`` for maximally mixed."""
        return float(np.real(np.trace(self._matrix @ self._matrix)))

    def is_pure(self, atol: float = 1e-6) -> bool:
        """True if the state is pure within tolerance."""
        return math.isclose(self.purity(), 1.0, abs_tol=atol)

    def require_physical(self, atol: float = 1e-7) -> "DensityMatrix":
        """Raise unless the state is Hermitian, unit-trace and positive semi-definite."""
        if not np.allclose(self._matrix, self._matrix.conj().T, atol=atol):
            raise NonPhysicalStateError("density matrix is not Hermitian")
        if not math.isclose(self.trace().real, 1.0, abs_tol=1e-6):
            raise NonPhysicalStateError("density matrix trace is not 1")
        eigenvalues = np.linalg.eigvalsh(self._matrix)
        if eigenvalues.min() < -atol:
            raise NonPhysicalStateError(
                f"density matrix has negative eigenvalue {eigenvalues.min():.3g}"
            )
        return self

    def eigenvalues(self) -> np.ndarray:
        """Real eigenvalue spectrum (ascending)."""
        return np.linalg.eigvalsh(self._matrix)

    def von_neumann_entropy(self, base: float = 2.0) -> float:
        """Von Neumann entropy ``-Tr(rho log rho)`` in the given log base."""
        eigenvalues = np.clip(np.real(self.eigenvalues()), 0.0, 1.0)
        nonzero = eigenvalues[eigenvalues > 1e-12]
        return float(-(nonzero * (np.log(nonzero) / np.log(base))).sum())

    # -- composition -------------------------------------------------------------
    def tensor(self, other: "DensityMatrix") -> "DensityMatrix":
        """Kronecker product ``self (x) other``."""
        other = DensityMatrix(other)
        return DensityMatrix(np.kron(self._matrix, other._matrix), validate=False)

    # -- evolution ----------------------------------------------------------------
    def evolve(
        self, operator: "Operator | np.ndarray", qubits: Sequence[int] | None = None
    ) -> "DensityMatrix":
        """Apply a unitary ``U`` (``rho -> U rho U†``) to the given qubits."""
        op = operator if isinstance(operator, Operator) else Operator(operator)
        if qubits is None:
            if op.num_qubits != self._num_qubits:
                raise DimensionError(
                    f"operator acts on {op.num_qubits} qubits, state has {self._num_qubits}"
                )
            full = op.matrix
        else:
            full = embed_operator(op.matrix, list(qubits), self._num_qubits)
        return DensityMatrix(full @ self._matrix @ full.conj().T, validate=False)

    def apply_kraus(
        self, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int] | None = None
    ) -> "DensityMatrix":
        """Apply a quantum channel given by Kraus operators to the listed qubits."""
        if not kraus_operators:
            raise DimensionError("at least one Kraus operator is required")
        result = np.zeros_like(self._matrix)
        for kraus in kraus_operators:
            kraus = np.asarray(kraus, dtype=complex)
            if qubits is None:
                full = kraus
                if full.shape != self._matrix.shape:
                    raise DimensionError(
                        f"Kraus operator shape {full.shape} does not match state"
                    )
            else:
                full = embed_operator(kraus, list(qubits), self._num_qubits)
            result = result + full @ self._matrix @ full.conj().T
        return DensityMatrix(result, validate=False)

    # -- reductions -----------------------------------------------------------------
    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not listed in *keep*.

        The returned density matrix orders its qubits as listed in *keep*.
        """
        keep_list = [int(q) for q in keep]
        if len(set(keep_list)) != len(keep_list):
            raise DimensionError("qubits to keep must be distinct")
        if any(q < 0 or q >= self._num_qubits for q in keep_list):
            raise DimensionError(f"qubits {keep_list} out of range")
        n = self._num_qubits
        traced = [q for q in range(n) if q not in keep_list]
        tensor = self._matrix.reshape([2] * (2 * n))
        # Contract each traced qubit's row index with its column index.
        for offset, qubit in enumerate(sorted(traced)):
            axis_row = qubit - offset
            axis_col = axis_row + (n - offset)
            tensor = np.trace(tensor, axis1=axis_row, axis2=axis_col)
        k = len(keep_list)
        remaining = sorted(keep_list)
        reduced = tensor.reshape(2**k, 2**k)
        if remaining == keep_list:
            return DensityMatrix(reduced, validate=False)
        # Permute the kept qubits into the caller's requested order.
        perm = [remaining.index(q) for q in keep_list]
        tensor_k = reduced.reshape([2] * (2 * k))
        tensor_k = np.transpose(tensor_k, axes=perm + [p + k for p in perm])
        return DensityMatrix(tensor_k.reshape(2**k, 2**k), validate=False)

    # -- probabilities and measurement ------------------------------------------------
    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Computational-basis outcome probabilities over the listed qubits."""
        if qubits is None:
            probs = np.real(np.diag(self._matrix)).copy()
        else:
            reduced = self.partial_trace(qubits)
            probs = np.real(np.diag(reduced.matrix)).copy()
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if total <= 0:
            raise NonPhysicalStateError("density matrix has no positive diagonal weight")
        return probs / total

    def probability_of(self, bitstring: str, qubits: Sequence[int] | None = None) -> float:
        """Probability of observing *bitstring* on the listed qubits."""
        targets = list(range(self._num_qubits)) if qubits is None else list(qubits)
        if len(bitstring) != len(targets):
            raise DimensionError(
                f"bitstring length {len(bitstring)} does not match {len(targets)} qubits"
            )
        probs = self.probabilities(targets)
        return float(probs[int(bitstring, 2)])

    def sample_counts(
        self, shots: int, qubits: Sequence[int] | None = None, rng=None
    ) -> dict[str, int]:
        """Sample computational-basis outcomes; see :meth:`Statevector.sample_counts`."""
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        targets = list(range(self._num_qubits)) if qubits is None else list(qubits)
        probs = self.probabilities(targets)
        generator = as_rng(rng)
        outcomes = generator.multinomial(shots, probs)
        width = len(targets)
        return {
            format(idx, f"0{width}b"): int(count)
            for idx, count in enumerate(outcomes)
            if count > 0
        }

    def expectation_value(
        self, operator: "Operator | np.ndarray", qubits: Sequence[int] | None = None
    ) -> complex:
        """``Tr(rho O)`` where O may act on a subset of qubits."""
        op = operator if isinstance(operator, Operator) else Operator(operator)
        if qubits is None:
            full = op.matrix
        else:
            full = embed_operator(op.matrix, list(qubits), self._num_qubits)
        return complex(np.trace(self._matrix @ full))

    # -- comparisons ---------------------------------------------------------------------
    def fidelity(self, other: "DensityMatrix | Statevector") -> float:
        """Uhlmann fidelity ``(Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2``.

        For a pure *other* this reduces to ``<psi|rho|psi>``.
        """
        if isinstance(other, Statevector):
            vec = other.vector
            return float(np.real(vec.conj() @ (self._matrix @ vec)))
        other = DensityMatrix(other)
        if other.dim != self.dim:
            raise DimensionError("states have different dimensions")
        # Use the eigendecomposition route for numerical stability.
        eigenvalues, eigenvectors = np.linalg.eigh(self._matrix)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        sqrt_rho = (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T
        inner = sqrt_rho @ other._matrix @ sqrt_rho
        inner_eigenvalues = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
        return float(np.sqrt(inner_eigenvalues).sum() ** 2)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DensityMatrix):
            return NotImplemented
        return bool(np.allclose(self._matrix, other._matrix, atol=1e-10))

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"DensityMatrix(num_qubits={self.num_qubits}, purity={self.purity():.4f})"
