"""Pure-state (statevector) representation of qubit registers.

:class:`Statevector` stores the amplitudes of an n-qubit pure state as a
complex vector of length ``2**n`` and provides construction helpers, gate
application, measurement sampling, marginal probabilities, partial traces and
fidelity computations.  It is the workhorse behind the ideal (noise-free)
simulator and the analytic ground truths used in tests.

Convention: big-endian qubit order.  Qubit 0 corresponds to the most
significant bit of a basis-state index, so ``|01>`` (qubit 0 in ``|0>``,
qubit 1 in ``|1>``) is the amplitude at index 1 of a 2-qubit vector.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionError, NonPhysicalStateError
from repro.quantum.operators import Operator, PAULI_MATRICES
from repro.utils.rng import as_rng

__all__ = ["Statevector"]

_ATOL = 1e-10

#: Single-qubit kets addressable by label character.
_LABEL_KETS: dict[str, np.ndarray] = {
    "0": np.array([1, 0], dtype=complex),
    "1": np.array([0, 1], dtype=complex),
    "+": np.array([1, 1], dtype=complex) / math.sqrt(2),
    "-": np.array([1, -1], dtype=complex) / math.sqrt(2),
    "r": np.array([1, 1j], dtype=complex) / math.sqrt(2),
    "l": np.array([1, -1j], dtype=complex) / math.sqrt(2),
}


class Statevector:
    """An n-qubit pure quantum state.

    Parameters
    ----------
    data:
        Amplitude vector of length ``2**n``, another :class:`Statevector`,
        or any nested sequence convertible to such a vector.
    validate:
        If True (default), require the vector to be normalised.
    """

    __slots__ = ("_vector", "_num_qubits")

    def __init__(self, data, validate: bool = True):
        if isinstance(data, Statevector):
            vector = data._vector.copy()
        else:
            vector = np.array(data, dtype=complex).reshape(-1)
        num_qubits = int(round(math.log2(vector.shape[0]))) if vector.shape[0] else 0
        if vector.shape[0] == 0 or 2**num_qubits != vector.shape[0]:
            raise DimensionError(
                f"statevector length {vector.shape[0]} is not a power of two"
            )
        if validate and not math.isclose(
            float(np.linalg.norm(vector)), 1.0, abs_tol=1e-8
        ):
            raise NonPhysicalStateError(
                f"statevector is not normalised (norm={np.linalg.norm(vector):.6g})"
            )
        self._vector = vector
        self._num_qubits = num_qubits

    # -- constructors --------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-``|0>`` state on *num_qubits* qubits."""
        if num_qubits < 1:
            raise DimensionError("a statevector needs at least one qubit")
        vector = np.zeros(2**num_qubits, dtype=complex)
        vector[0] = 1.0
        return cls(vector, validate=False)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a product state from a label such as ``"01"``, ``"+-"`` or ``"0r"``.

        Supported characters: ``0 1 + - r l`` (r/l are the ±i eigenstates of Y).
        """
        if not label:
            raise DimensionError("label must contain at least one character")
        kets = []
        for ch in label:
            if ch not in _LABEL_KETS:
                raise DimensionError(f"unknown state label character {ch!r}")
            kets.append(_LABEL_KETS[ch])
        vector = kets[0]
        for ket in kets[1:]:
            vector = np.kron(vector, ket)
        return cls(vector, validate=False)

    @classmethod
    def from_int(cls, value: int, num_qubits: int) -> "Statevector":
        """The computational-basis state ``|value>`` on *num_qubits* qubits."""
        dim = 2**num_qubits
        if not 0 <= value < dim:
            raise DimensionError(f"basis index {value} out of range for {num_qubits} qubits")
        vector = np.zeros(dim, dtype=complex)
        vector[value] = 1.0
        return cls(vector, validate=False)

    # -- accessors -------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """The amplitude vector (not copied)."""
        return self._vector

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return self._vector.shape[0]

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self._vector))

    def normalized(self) -> "Statevector":
        """Return a normalised copy of the state."""
        norm = self.norm()
        if norm < _ATOL:
            raise NonPhysicalStateError("cannot normalise the zero vector")
        return Statevector(self._vector / norm, validate=False)

    # -- composition -----------------------------------------------------------
    def tensor(self, other: "Statevector") -> "Statevector":
        """Kronecker product ``self (x) other`` (self occupies the leading qubits)."""
        other = Statevector(other)
        return Statevector(np.kron(self._vector, other._vector), validate=False)

    # -- evolution ---------------------------------------------------------------
    def apply_operator(
        self, operator: "Operator | np.ndarray", qubits: Sequence[int] | None = None
    ) -> "Statevector":
        """Apply a k-qubit operator to the given qubits and return the new state.

        If *qubits* is None the operator must act on the full register.
        """
        op = operator if isinstance(operator, Operator) else Operator(operator)
        if qubits is None:
            if op.num_qubits != self._num_qubits:
                raise DimensionError(
                    f"operator acts on {op.num_qubits} qubits, state has {self._num_qubits}"
                )
            return Statevector(op.matrix @ self._vector, validate=False)

        targets = [int(q) for q in qubits]
        if len(targets) != op.num_qubits:
            raise DimensionError(
                f"operator acts on {op.num_qubits} qubits but {len(targets)} targets given"
            )
        if len(set(targets)) != len(targets):
            raise DimensionError(f"target qubits must be distinct, got {targets}")
        if any(q < 0 or q >= self._num_qubits for q in targets):
            raise DimensionError(
                f"target qubits {targets} out of range for {self._num_qubits} qubits"
            )

        k = op.num_qubits
        tensor = self._vector.reshape([2] * self._num_qubits)
        gate = op.matrix.reshape([2] * (2 * k))
        moved = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), targets))
        moved = np.moveaxis(moved, range(k), targets)
        return Statevector(moved.reshape(-1), validate=False)

    def apply_pauli(self, label: str, qubits: Sequence[int]) -> "Statevector":
        """Apply a Pauli string such as ``"XZ"`` to the listed qubits."""
        if len(label) != len(qubits):
            raise DimensionError(
                f"Pauli string of length {len(label)} does not match {len(qubits)} qubits"
            )
        state = self
        for ch, qubit in zip(label.upper(), qubits):
            if ch not in PAULI_MATRICES:
                raise DimensionError(f"unknown Pauli label {ch!r}")
            state = state.apply_operator(PAULI_MATRICES[ch], [qubit])
        return state

    # -- probabilities and measurement ----------------------------------------
    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Outcome probabilities over the listed qubits (all qubits by default).

        The returned array has length ``2**len(qubits)`` indexed by the
        big-endian outcome of the listed qubits in the listed order.
        """
        probs_full = np.abs(self._vector) ** 2
        if qubits is None:
            return probs_full
        targets = [int(q) for q in qubits]
        if len(set(targets)) != len(targets):
            raise DimensionError("qubits must be distinct")
        if any(q < 0 or q >= self._num_qubits for q in targets):
            raise DimensionError(f"qubits {targets} out of range")
        tensor = probs_full.reshape([2] * self._num_qubits)
        other = [q for q in range(self._num_qubits) if q not in targets]
        marginal = tensor.sum(axis=tuple(other)) if other else tensor
        # After summation, axis i of `marginal` corresponds to sorted(targets)[i];
        # permute axes so they follow the caller's requested qubit order.
        sorted_targets = sorted(targets)
        perm = [sorted_targets.index(q) for q in targets]
        marginal = np.transpose(marginal, axes=perm)
        return marginal.reshape(-1)

    def probability_of(self, bitstring: str, qubits: Sequence[int] | None = None) -> float:
        """Probability of observing *bitstring* on the listed qubits."""
        targets = list(range(self._num_qubits)) if qubits is None else list(qubits)
        if len(bitstring) != len(targets):
            raise DimensionError(
                f"bitstring length {len(bitstring)} does not match {len(targets)} qubits"
            )
        probs = self.probabilities(targets)
        index = int(bitstring, 2) if bitstring else 0
        return float(probs[index])

    def sample_counts(
        self, shots: int, qubits: Sequence[int] | None = None, rng=None
    ) -> dict[str, int]:
        """Sample measurement outcomes in the computational basis.

        Returns a mapping from outcome bitstring (big-endian, over the listed
        qubits) to the number of times it occurred in *shots* repetitions.
        """
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        targets = list(range(self._num_qubits)) if qubits is None else list(qubits)
        probs = self.probabilities(targets)
        probs = probs / probs.sum()
        generator = as_rng(rng)
        outcomes = generator.multinomial(shots, probs)
        width = len(targets)
        return {
            format(idx, f"0{width}b"): int(count)
            for idx, count in enumerate(outcomes)
            if count > 0
        }

    def measure(
        self, qubits: Sequence[int] | None = None, rng=None
    ) -> tuple[str, "Statevector"]:
        """Projectively measure the listed qubits in the computational basis.

        Returns ``(outcome_bitstring, post_measurement_state)``; the post
        measurement state keeps all qubits (measured ones collapse).
        """
        targets = list(range(self._num_qubits)) if qubits is None else [int(q) for q in qubits]
        probs = self.probabilities(targets)
        generator = as_rng(rng)
        index = int(generator.choice(len(probs), p=probs / probs.sum()))
        outcome = format(index, f"0{len(targets)}b")

        # Project onto the observed outcome.
        tensor = self._vector.reshape([2] * self._num_qubits)
        slicer: list[slice | int] = [slice(None)] * self._num_qubits
        projected = np.zeros_like(tensor)
        sub_slicer = list(slicer)
        for qubit, bit in zip(targets, outcome):
            sub_slicer[qubit] = int(bit)
        projected[tuple(sub_slicer)] = tensor[tuple(sub_slicer)]
        post = projected.reshape(-1)
        norm = np.linalg.norm(post)
        if norm < _ATOL:
            raise NonPhysicalStateError("measurement projected onto a zero-probability outcome")
        return outcome, Statevector(post / norm, validate=False)

    # -- reductions -----------------------------------------------------------
    def density_matrix(self):
        """Return the pure-state density matrix ``|psi><psi|``.

        Imported lazily to avoid a circular import with
        :mod:`repro.quantum.density`.
        """
        from repro.quantum.density import DensityMatrix

        return DensityMatrix(np.outer(self._vector, self._vector.conj()))

    def partial_trace(self, keep: Sequence[int]):
        """Trace out all qubits not in *keep* and return a density matrix."""
        return self.density_matrix().partial_trace(keep)

    # -- comparisons ------------------------------------------------------------
    def overlap(self, other: "Statevector") -> complex:
        """Inner product ``<other|self>``."""
        other = Statevector(other)
        if other.dim != self.dim:
            raise DimensionError("states have different dimensions")
        return complex(np.vdot(other._vector, self._vector))

    def fidelity(self, other: "Statevector") -> float:
        """``|<other|self>|^2`` — the pure-state fidelity."""
        return float(abs(self.overlap(other)) ** 2)

    def expectation_value(
        self, operator: "Operator | np.ndarray", qubits: Sequence[int] | None = None
    ) -> complex:
        """``<psi| O |psi>`` where O may act on a subset of qubits."""
        op = operator if isinstance(operator, Operator) else Operator(operator)
        if qubits is None:
            return op.expectation(self._vector)
        applied = self.apply_operator(op, qubits)
        return complex(np.vdot(self._vector, applied._vector))

    def equiv(self, other: "Statevector", atol: float = 1e-8) -> bool:
        """Equality up to a global phase."""
        other = Statevector(other)
        if other.dim != self.dim:
            return False
        return math.isclose(self.fidelity(other), 1.0, abs_tol=atol)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statevector):
            return NotImplemented
        return bool(np.allclose(self._vector, other._vector, atol=1e-10))

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Statevector(num_qubits={self.num_qubits})"
