"""Named gate library.

A :class:`Gate` pairs a name and parameter list with its unitary matrix, so
circuits remain introspectable (the noise model attaches errors by gate name)
while the simulators only ever need the matrix.  The :func:`standard_gates`
registry exposes the gates the protocol and device layers use; arbitrary
unitaries can still be added to circuits via
:meth:`repro.quantum.circuit.QuantumCircuit.unitary`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.operators import (
    H_MATRIX,
    I_MATRIX,
    S_MATRIX,
    T_MATRIX,
    X_MATRIX,
    Y_MATRIX,
    Z_MATRIX,
)

__all__ = ["Gate", "standard_gates", "make_gate", "GATE_NUM_QUBITS"]


class Gate:
    """A named unitary gate.

    Parameters
    ----------
    name:
        Lower-case gate name, e.g. ``"cx"``.
    num_qubits:
        Number of qubits the gate acts on.
    matrix:
        The ``2**num_qubits``-dimensional unitary matrix.
    params:
        Optional tuple of real parameters (rotation angles).
    """

    __slots__ = ("name", "num_qubits", "matrix", "params")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        matrix: np.ndarray,
        params: Sequence[float] = (),
    ):
        matrix = np.asarray(matrix, dtype=complex)
        expected = 2**num_qubits
        if matrix.shape != (expected, expected):
            raise CircuitError(
                f"gate {name!r} declared on {num_qubits} qubits but matrix has shape "
                f"{matrix.shape}"
            )
        self.name = name
        self.num_qubits = int(num_qubits)
        self.matrix = matrix
        self.params = tuple(float(p) for p in params)

    def inverse(self) -> "Gate":
        """Return the inverse gate (conjugate-transpose matrix)."""
        return Gate(
            name=f"{self.name}_dg" if not self.name.endswith("_dg") else self.name[:-3],
            num_qubits=self.num_qubits,
            matrix=self.matrix.conj().T,
            params=tuple(-p for p in self.params),
        )

    def __repr__(self) -> str:
        if self.params:
            params = ", ".join(f"{p:.4g}" for p in self.params)
            return f"Gate({self.name}({params}), qubits={self.num_qubits})"
        return f"Gate({self.name}, qubits={self.num_qubits})"


def _rx_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz_matrix(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def _phase_matrix(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def _u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


_CX_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_CY_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, -1j], [0, 0, 1j, 0]], dtype=complex
)
_CH_MATRIX = np.block(
    [[np.eye(2), np.zeros((2, 2))], [np.zeros((2, 2)), H_MATRIX]]
).astype(complex)

#: Number of qubits for each fixed (non-parametric) standard gate.
GATE_NUM_QUBITS: dict[str, int] = {
    "id": 1,
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "cx": 2,
    "cz": 2,
    "cy": 2,
    "ch": 2,
    "swap": 2,
}

_FIXED_GATES: dict[str, np.ndarray] = {
    "id": I_MATRIX,
    "x": X_MATRIX,
    "y": Y_MATRIX,
    "z": Z_MATRIX,
    "h": H_MATRIX,
    "s": S_MATRIX,
    "sdg": S_MATRIX.conj().T,
    "t": T_MATRIX,
    "tdg": T_MATRIX.conj().T,
    "cx": _CX_MATRIX,
    "cz": _CZ_MATRIX,
    "cy": _CY_MATRIX,
    "ch": _CH_MATRIX,
    "swap": _SWAP_MATRIX,
}

_PARAMETRIC_GATES = {
    "rx": (1, 1, _rx_matrix),
    "ry": (1, 1, _ry_matrix),
    "rz": (1, 1, _rz_matrix),
    "p": (1, 1, _phase_matrix),
    "u3": (1, 3, _u3_matrix),
}


def standard_gates() -> dict[str, int]:
    """Return a mapping of all supported gate names to their qubit counts.

    Parametric gates (``rx, ry, rz, p, u3``) are included with their qubit
    count; their matrices depend on parameters and are built by
    :func:`make_gate`.
    """
    names = dict(GATE_NUM_QUBITS)
    for name, (num_qubits, _, _) in _PARAMETRIC_GATES.items():
        names[name] = num_qubits
    return names


def make_gate(name: str, *params: float) -> Gate:
    """Construct a standard gate by name, with parameters where applicable."""
    key = name.lower()
    if key in _FIXED_GATES:
        if params:
            raise CircuitError(f"gate {name!r} takes no parameters")
        return Gate(key, GATE_NUM_QUBITS[key], _FIXED_GATES[key])
    if key in _PARAMETRIC_GATES:
        num_qubits, num_params, factory = _PARAMETRIC_GATES[key]
        if len(params) != num_params:
            raise CircuitError(
                f"gate {name!r} takes {num_params} parameter(s), got {len(params)}"
            )
        return Gate(key, num_qubits, factory(*params), params=params)
    raise CircuitError(f"unknown gate {name!r}")
